//! # e10-faultsim
//!
//! Deterministic, seed-driven fault injection for the E10 simulation.
//!
//! The paper's central robustness claim is that the E10 cache is
//! *persistent*: collective writes land on non-volatile node-local
//! devices, so cached-but-unflushed data survives a node crash and can
//! still reach the global file system. This crate supplies the faults
//! that make the claim testable:
//!
//! * **Node crashes** — a power-loss instant for one compute node. The
//!   crash itself is executed by the harness (kill the node's crash
//!   group, apply torn-write semantics to its local file system); the
//!   plan only declares *when* and *where*.
//! * **SSD stalls** — garbage-collection-style latency spikes on the
//!   node-local device, the behaviour NVM evaluation papers single out
//!   as diverging from DRAM.
//! * **Link faults** — extra delay on fabric messages (a dropped packet
//!   is modelled as one retransmit-timeout of delay; the transport is
//!   reliable, as on InfiniBand).
//! * **PFS RPC failures** — server-side request failures that force the
//!   client retry/backoff path.
//!
//! ## Ambient schedule
//!
//! Like `e10_simcore::trace`, the active [`FaultSchedule`] lives in a
//! thread-local installed for the duration of a run. Device and server
//! models call the query functions ([`ssd_stall`], [`link_fault`],
//! [`rpc_fails`]) at their injection points; with no schedule installed
//! each query is a single branch, so fault-free runs remain bit-identical
//! to builds without any plan. All sampling is driven by dedicated
//! [`SimRng`] streams derived from the plan seed — the same plan and seed
//! reproduce the same faults, byte for byte.

use std::cell::{Cell, RefCell};
use std::ops::Range;

use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::{SimDuration, SimRng, SimTime};

/// One declared fault, active inside its window.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Power-loss crash of compute node `node` at instant `at`.
    ///
    /// Not sampled by the query functions: the crash harness reads it
    /// via [`FaultPlan::crashes`] and executes kill + power-loss itself.
    NodeCrash {
        /// Compute node that loses power.
        node: usize,
        /// Virtual instant of the power cut.
        at: SimTime,
    },
    /// SSD commands on `node` stall for an extra `stall` with
    /// probability `prob` per command while inside `window`.
    SsdStall {
        /// Affected compute node (as set via `Ssd::set_node`).
        node: usize,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-command stall probability in `[0, 1]`.
        prob: f64,
        /// Stall duration added to the command.
        stall: SimDuration,
    },
    /// Fabric messages matching `src`→`dst` (`None` = any endpoint) are
    /// delayed by `delay` with probability `prob` per message.
    LinkFault {
        /// Source node filter.
        src: Option<usize>,
        /// Destination node filter.
        dst: Option<usize>,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-message fault probability in `[0, 1]`.
        prob: f64,
        /// Added delay (one retransmit timeout for a dropped packet).
        delay: SimDuration,
    },
    /// PFS RPCs served by `target` (`None` = any target) fail with
    /// probability `prob`, forcing the client to retry with backoff.
    RpcFail {
        /// Data-target index filter.
        target: Option<usize>,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-RPC failure probability in `[0, 1]`.
        prob: f64,
    },
    /// Silent single-bit corruption in the SSD cache file of `node`:
    /// each write has probability `prob` of landing with one flipped
    /// bit at a sampled offset.
    CacheBitFlip {
        /// Affected compute node.
        node: usize,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-write corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Torn-sector corruption in the SSD cache file of `node`: each
    /// write has probability `prob` of losing one `sector`-aligned run
    /// (it reads back as zeroes).
    CacheTorn {
        /// Affected compute node.
        node: usize,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-write corruption probability in `[0, 1]`.
        prob: f64,
        /// Sector size in bytes (the torn unit).
        sector: u64,
    },
    /// Payload corruption on fabric messages `src`→`dst` (`None` = any
    /// endpoint): each data-carrying transfer has probability `prob` of
    /// delivering one flipped bit.
    LinkCorrupt {
        /// Source node filter.
        src: Option<usize>,
        /// Destination node filter.
        dst: Option<usize>,
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-transfer corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Lazy corruption of PFS objects: each server-side read has
    /// probability `prob` of exposing one flipped bit that has silently
    /// rotted on the target's media.
    PfsCorrupt {
        /// Active window of virtual time.
        window: Range<SimTime>,
        /// Per-read corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Permanent failure of the `class` device on `node` from instant
    /// `at`: every subsequent command on that device returns a typed
    /// I/O error instead of succeeding. Unlike stalls this is not
    /// sampled — it is a deterministic time trigger, so adding the spec
    /// never shifts the draws of probabilistic specs.
    DeviceFail {
        /// Affected compute node.
        node: usize,
        /// Which local device class dies (SSD partition or NVM mount).
        class: DeviceClass,
        /// Virtual instant after which every command fails.
        at: SimTime,
    },
    /// Death of the node-local cache sync thread on `node` at instant
    /// `at`: the thread stops draining staged extents. Deterministic
    /// time trigger, queried by the sync loop itself.
    SyncThreadKill {
        /// Affected compute node.
        node: usize,
        /// Virtual instant of the kill.
        at: SimTime,
    },
}

/// Device class of a node-local mount, as seen by the fault surface.
/// Mirrors `e10-localfs`'s device model without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// The block SSD `/scratch` partition.
    Ssd,
    /// The byte-granular NVM mount.
    Nvm,
}

/// One sampled corruption, relative to the I/O it was drawn for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Flip `mask` into the byte at relative `offset`.
    BitFlip {
        /// Offset within the I/O, bytes.
        offset: u64,
        /// Non-zero bit mask to XOR in.
        mask: u8,
    },
    /// The `len` bytes at relative `offset` read back as zeroes.
    TornSector {
        /// Sector-aligned offset within the I/O, bytes.
        offset: u64,
        /// Torn run length, bytes.
        len: u64,
    },
}

/// A declarative, reproducible set of faults for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the fault sampling streams (independent of the testbed
    /// seed, so fault luck can be varied without moving device jitter).
    pub seed: u64,
    /// The declared faults.
    pub specs: Vec<FaultSpec>,
}

/// Window covering the whole run.
pub fn always() -> Range<SimTime> {
    SimTime::ZERO..SimTime::ZERO + SimDuration::from_secs(u32::MAX as u64)
}

impl FaultPlan {
    /// An empty plan with the given fault seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// True if no faults are declared.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Declare a node crash (builder style).
    pub fn node_crash(mut self, node: usize, at: SimTime) -> Self {
        self.specs.push(FaultSpec::NodeCrash { node, at });
        self
    }

    /// Declare an SSD stall fault (builder style).
    pub fn ssd_stall(
        mut self,
        node: usize,
        window: Range<SimTime>,
        prob: f64,
        stall: SimDuration,
    ) -> Self {
        self.specs.push(FaultSpec::SsdStall {
            node,
            window,
            prob,
            stall,
        });
        self
    }

    /// Declare a link fault (builder style).
    pub fn link_fault(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        window: Range<SimTime>,
        prob: f64,
        delay: SimDuration,
    ) -> Self {
        self.specs.push(FaultSpec::LinkFault {
            src,
            dst,
            window,
            prob,
            delay,
        });
        self
    }

    /// Declare a PFS RPC failure fault (builder style).
    pub fn rpc_fail(mut self, target: Option<usize>, window: Range<SimTime>, prob: f64) -> Self {
        self.specs.push(FaultSpec::RpcFail {
            target,
            window,
            prob,
        });
        self
    }

    /// Declare cache-file bit-flip corruption (builder style).
    pub fn cache_bitflip(mut self, node: usize, window: Range<SimTime>, prob: f64) -> Self {
        self.specs
            .push(FaultSpec::CacheBitFlip { node, window, prob });
        self
    }

    /// Declare cache-file torn-sector corruption (builder style).
    pub fn cache_torn(
        mut self,
        node: usize,
        window: Range<SimTime>,
        prob: f64,
        sector: u64,
    ) -> Self {
        assert!(sector > 0, "torn sector size must be positive");
        self.specs.push(FaultSpec::CacheTorn {
            node,
            window,
            prob,
            sector,
        });
        self
    }

    /// Declare link payload corruption (builder style).
    pub fn link_corrupt(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        window: Range<SimTime>,
        prob: f64,
    ) -> Self {
        self.specs.push(FaultSpec::LinkCorrupt {
            src,
            dst,
            window,
            prob,
        });
        self
    }

    /// Declare lazy PFS object corruption (builder style).
    pub fn pfs_corrupt(mut self, window: Range<SimTime>, prob: f64) -> Self {
        self.specs.push(FaultSpec::PfsCorrupt { window, prob });
        self
    }

    /// Declare a permanent device failure (builder style).
    pub fn device_fail(mut self, node: usize, class: DeviceClass, at: SimTime) -> Self {
        self.specs.push(FaultSpec::DeviceFail { node, class, at });
        self
    }

    /// Declare a sync-thread kill (builder style).
    pub fn sync_thread_kill(mut self, node: usize, at: SimTime) -> Self {
        self.specs.push(FaultSpec::SyncThreadKill { node, at });
        self
    }

    /// The declared node crashes as `(node, at)` pairs, in plan order.
    pub fn crashes(&self) -> Vec<(usize, SimTime)> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::NodeCrash { node, at } => Some((*node, *at)),
                _ => None,
            })
            .collect()
    }

    /// The declared device failures as `(node, class, at)` triples, in
    /// plan order.
    pub fn device_fails(&self) -> Vec<(usize, DeviceClass, SimTime)> {
        self.specs
            .iter()
            .filter_map(|s| match s {
                FaultSpec::DeviceFail { node, class, at } => Some((*node, *class, *at)),
                _ => None,
            })
            .collect()
    }
}

struct Installed {
    plan: FaultPlan,
    /// One sampling stream per spec, so adding a spec never shifts the
    /// draws of the others.
    rngs: Vec<RefCell<SimRng>>,
    injected: Cell<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Installed>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// The runtime side of a [`FaultPlan`]: installs the plan into the
/// thread-local slot consulted by the device and server models.
pub struct FaultSchedule;

/// Uninstalls the schedule on drop.
pub struct FaultGuard {
    _priv: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.borrow_mut().take());
        ENABLED.with(|e| e.set(false));
    }
}

/// Stream-id base for per-spec sampling RNGs (disjoint from the device
/// jitter streams, which live below 100 000 + nodes).
const FAULT_STREAM_BASE: u64 = 900_000;

impl FaultSchedule {
    /// Install `plan` for the current thread until the guard drops.
    ///
    /// Panics if a schedule is already installed (fault runs don't nest).
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let rngs = (0..plan.specs.len())
            .map(|i| RefCell::new(SimRng::stream(plan.seed, FAULT_STREAM_BASE + i as u64)))
            .collect();
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            assert!(slot.is_none(), "a FaultSchedule is already installed");
            *slot = Some(Installed {
                plan,
                rngs,
                injected: Cell::new(0),
            });
        });
        ENABLED.with(|e| e.set(true));
        FaultGuard { _priv: () }
    }
}

/// True if a fault schedule is currently installed.
pub fn active() -> bool {
    ENABLED.with(|e| e.get())
}

/// Number of faults injected so far by the installed schedule.
pub fn injected_count() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |i| i.injected.get()))
}

/// Record an externally-executed fault in the installed schedule's
/// injection count and the trace. The sampling hooks below call
/// [`record`] themselves; this is for faults that need an *owner*
/// outside the hooks — e.g. the crash harnesses, which cut power and
/// kill the task tree themselves and would otherwise leave the
/// schedule's `node_crash` specs invisible to [`injected_count`].
pub fn note_injected(kind: &'static str, node: usize) {
    record(kind, node, 0);
}

fn record(kind: &'static str, node: usize, extra_ns: u64) {
    ACTIVE.with(|a| {
        if let Some(inst) = a.borrow().as_ref() {
            inst.injected.set(inst.injected.get() + 1);
        }
    });
    trace::emit(|| {
        Event::new(Layer::Faultsim, "fault.injected", EventKind::Point)
            .node(node)
            .field("fault", kind)
            .field("extra_ns", extra_ns)
    });
    trace::counter("faultsim.injected", 1);
}

fn in_window(w: &Range<SimTime>) -> bool {
    let t = e10_simcore::now();
    t >= w.start && t < w.end
}

/// Extra service delay for an SSD command on `node`, if a stall fires.
pub fn ssd_stall(node: usize) -> Option<SimDuration> {
    if !active() {
        return None;
    }
    let mut total = SimDuration::ZERO;
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            if let FaultSpec::SsdStall {
                node: n,
                window,
                prob,
                stall,
            } = spec
            {
                if *n == node && in_window(window) && rng.borrow_mut().uniform() < *prob {
                    total += *stall;
                }
            }
        }
    });
    if total > SimDuration::ZERO {
        record("ssd_stall", node, total.as_nanos());
        Some(total)
    } else {
        None
    }
}

/// Extra delivery delay for a fabric message `src → dst`, if a link
/// fault fires.
pub fn link_fault(src: usize, dst: usize) -> Option<SimDuration> {
    if !active() {
        return None;
    }
    let mut total = SimDuration::ZERO;
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            if let FaultSpec::LinkFault {
                src: s,
                dst: d,
                window,
                prob,
                delay,
            } = spec
            {
                let hit = s.is_none_or(|s| s == src) && d.is_none_or(|d| d == dst);
                if hit && in_window(window) && rng.borrow_mut().uniform() < *prob {
                    total += *delay;
                }
            }
        }
    });
    if total > SimDuration::ZERO {
        record("link", src, total.as_nanos());
        Some(total)
    } else {
        None
    }
}

/// Sample a bit flip for an I/O of `len` bytes from `rng`.
fn sample_bitflip(rng: &mut SimRng, len: u64) -> Corruption {
    Corruption::BitFlip {
        offset: rng.below(len),
        mask: 1u8 << rng.below(8),
    }
}

/// Corruptions hitting a `len`-byte write to the cache file on `node`.
///
/// Bit flips land anywhere in the write; torn sectors zero one
/// `sector`-aligned run (clamped to the write). Deterministic per plan
/// seed: each spec draws from its own stream.
pub fn ssd_corruption(node: usize, len: u64) -> Vec<Corruption> {
    if !active() || len == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            match spec {
                FaultSpec::CacheBitFlip {
                    node: n,
                    window,
                    prob,
                } if *n == node && in_window(window) => {
                    let mut rng = rng.borrow_mut();
                    if rng.uniform() < *prob {
                        out.push(sample_bitflip(&mut rng, len));
                    }
                }
                FaultSpec::CacheTorn {
                    node: n,
                    window,
                    prob,
                    sector,
                } if *n == node && in_window(window) => {
                    let mut rng = rng.borrow_mut();
                    if rng.uniform() < *prob {
                        let offset = rng.below(len.div_ceil(*sector)) * *sector;
                        out.push(Corruption::TornSector {
                            offset,
                            len: (*sector).min(len - offset),
                        });
                    }
                }
                _ => {}
            }
        }
    });
    for c in &out {
        let kind = match c {
            Corruption::BitFlip { .. } => "cache_bitflip",
            Corruption::TornSector { .. } => "cache_torn",
        };
        record(kind, node, 0);
    }
    out
}

/// Corruptions hitting a `len`-byte payload on the link `src → dst`.
pub fn link_corrupt(src: usize, dst: usize, len: u64) -> Vec<Corruption> {
    if !active() || len == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            if let FaultSpec::LinkCorrupt {
                src: s,
                dst: d,
                window,
                prob,
            } = spec
            {
                let hit = s.is_none_or(|s| s == src) && d.is_none_or(|d| d == dst);
                if hit && in_window(window) {
                    let mut rng = rng.borrow_mut();
                    if rng.uniform() < *prob {
                        out.push(sample_bitflip(&mut rng, len));
                    }
                }
            }
        }
    });
    for _ in &out {
        record("link_corrupt", src, 0);
    }
    out
}

/// Corruptions exposed by a `len`-byte read of a PFS object (lazy media
/// rot, materialised at read time).
pub fn pfs_corrupt(len: u64) -> Vec<Corruption> {
    if !active() || len == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            if let FaultSpec::PfsCorrupt { window, prob } = spec {
                if in_window(window) {
                    let mut rng = rng.borrow_mut();
                    if rng.uniform() < *prob {
                        out.push(sample_bitflip(&mut rng, len));
                    }
                }
            }
        }
    });
    for _ in &out {
        record("pfs_corrupt", 0, 0);
    }
    out
}

/// True if the `class` device on `node` has permanently failed (a
/// [`FaultSpec::DeviceFail`] whose instant has passed). The caller —
/// the device's command entry points — turns a hit into a typed I/O
/// error. Deterministic: a pure time comparison, no stream draw, so
/// querying it never perturbs the probabilistic specs.
pub fn device_failed(node: usize, class: DeviceClass) -> bool {
    if !active() {
        return false;
    }
    let hit = ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        inst.plan.specs.iter().any(|spec| {
            matches!(spec, FaultSpec::DeviceFail { node: n, class: c, at }
                if *n == node && *c == class && e10_simcore::now() >= *at)
        })
    });
    if hit {
        record("device_fail", node, 0);
        trace::counter("fault.device_fail", 1);
    }
    hit
}

/// True if the cache sync thread on `node` has been killed (a
/// [`FaultSpec::SyncThreadKill`] whose instant has passed). Queried by
/// the sync loop itself; like [`device_failed`] this is a pure time
/// trigger.
pub fn sync_thread_killed(node: usize) -> bool {
    if !active() {
        return false;
    }
    let hit = ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        inst.plan.specs.iter().any(|spec| {
            matches!(spec, FaultSpec::SyncThreadKill { node: n, at }
                if *n == node && e10_simcore::now() >= *at)
        })
    });
    if hit {
        record("sync_thread_kill", node, 0);
        trace::counter("fault.sync_thread_kill", 1);
    }
    hit
}

/// True if the next PFS RPC served by data target `target` must fail.
pub fn rpc_fails(target: usize) -> bool {
    if !active() {
        return false;
    }
    let mut fails = false;
    ACTIVE.with(|a| {
        let guard = a.borrow();
        let inst = guard.as_ref().expect("enabled without schedule");
        for (spec, rng) in inst.plan.specs.iter().zip(&inst.rngs) {
            if let FaultSpec::RpcFail {
                target: t,
                window,
                prob,
            } = spec
            {
                if t.is_none_or(|t| t == target)
                    && in_window(window)
                    && rng.borrow_mut().uniform() < *prob
                {
                    fails = true;
                }
            }
        }
    });
    if fails {
        record("rpc", target, 0);
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::run;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn no_schedule_means_no_faults() {
        run(async {
            assert!(!active());
            assert!(ssd_stall(0).is_none());
            assert!(link_fault(0, 1).is_none());
            assert!(!rpc_fails(0));
        });
    }

    #[test]
    fn guard_uninstalls_on_drop() {
        run(async {
            {
                let _g = FaultSchedule::install(FaultPlan::new(1).ssd_stall(
                    0,
                    always(),
                    1.0,
                    SimDuration::from_millis(5),
                ));
                assert!(active());
                assert!(ssd_stall(0).is_some());
            }
            assert!(!active());
            assert!(ssd_stall(0).is_none());
        });
    }

    #[test]
    fn windows_and_node_filters_apply() {
        run(async {
            let _g = FaultSchedule::install(FaultPlan::new(1).ssd_stall(
                2,
                secs(10)..secs(20),
                1.0,
                SimDuration::from_millis(5),
            ));
            assert!(ssd_stall(2).is_none(), "before the window");
            assert!(ssd_stall(1).is_none(), "wrong node");
            e10_simcore::sleep(SimDuration::from_secs(15)).await;
            assert!(ssd_stall(2).is_some(), "inside the window");
            e10_simcore::sleep(SimDuration::from_secs(10)).await;
            assert!(ssd_stall(2).is_none(), "after the window");
        });
    }

    #[test]
    fn sampling_is_reproducible_per_seed() {
        let draws = |seed: u64| {
            run(async move {
                let _g = FaultSchedule::install(FaultPlan::new(seed).rpc_fail(None, always(), 0.5));
                (0..64).map(|_| rpc_fails(0)).collect::<Vec<bool>>()
            })
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "different seeds must differ");
    }

    #[test]
    fn link_faults_respect_endpoint_filters() {
        run(async {
            let _g = FaultSchedule::install(FaultPlan::new(1).link_fault(
                Some(0),
                None,
                always(),
                1.0,
                SimDuration::from_micros(100),
            ));
            assert!(link_fault(0, 3).is_some());
            assert!(link_fault(1, 3).is_none());
            assert_eq!(injected_count(), 1);
        });
    }

    #[test]
    fn corruption_kinds_sample_within_bounds() {
        run(async {
            let _g = FaultSchedule::install(
                FaultPlan::new(11)
                    .cache_bitflip(0, always(), 1.0)
                    .cache_torn(0, always(), 1.0, 512),
            );
            for _ in 0..32 {
                let hits = ssd_corruption(0, 4096);
                assert_eq!(hits.len(), 2);
                for c in hits {
                    match c {
                        Corruption::BitFlip { offset, mask } => {
                            assert!(offset < 4096);
                            assert!(mask != 0);
                        }
                        Corruption::TornSector { offset, len } => {
                            assert_eq!(offset % 512, 0);
                            assert!(offset + len <= 4096);
                            assert!(len > 0 && len <= 512);
                        }
                    }
                }
            }
            assert!(injected_count() >= 64);
        });
    }

    #[test]
    fn corruption_respects_filters_and_zero_len() {
        run(async {
            let _g = FaultSchedule::install(
                FaultPlan::new(11)
                    .cache_bitflip(2, secs(10)..secs(20), 1.0)
                    .link_corrupt(Some(0), None, always(), 1.0)
                    .pfs_corrupt(always(), 1.0),
            );
            assert!(ssd_corruption(2, 100).is_empty(), "before window");
            assert!(ssd_corruption(0, 100).is_empty(), "wrong node");
            e10_simcore::sleep(SimDuration::from_secs(15)).await;
            assert!(!ssd_corruption(2, 100).is_empty(), "inside window");
            assert!(ssd_corruption(2, 0).is_empty(), "zero-length write");
            assert!(!link_corrupt(0, 3, 64).is_empty());
            assert!(link_corrupt(1, 3, 64).is_empty(), "src filter");
            assert!(!pfs_corrupt(64).is_empty());
            assert!(pfs_corrupt(0).is_empty());
        });
    }

    #[test]
    fn corruption_sampling_is_reproducible_per_seed() {
        let draws = |seed: u64| {
            run(async move {
                let _g = FaultSchedule::install(
                    FaultPlan::new(seed)
                        .cache_bitflip(0, always(), 0.5)
                        .cache_torn(0, always(), 0.5, 256),
                );
                (0..64).map(|_| ssd_corruption(0, 8192)).collect::<Vec<_>>()
            })
        };
        assert_eq!(draws(3), draws(3));
        assert_ne!(draws(3), draws(4));
    }

    #[test]
    fn device_fail_is_a_deterministic_time_trigger() {
        run(async {
            let _g = FaultSchedule::install(FaultPlan::new(1).device_fail(
                1,
                DeviceClass::Ssd,
                secs(10),
            ));
            assert!(!device_failed(1, DeviceClass::Ssd), "before the instant");
            assert!(!device_failed(0, DeviceClass::Ssd), "wrong node");
            e10_simcore::sleep(SimDuration::from_secs(10)).await;
            assert!(device_failed(1, DeviceClass::Ssd), "at the instant");
            assert!(!device_failed(1, DeviceClass::Nvm), "wrong class");
            e10_simcore::sleep(SimDuration::from_secs(100)).await;
            assert!(device_failed(1, DeviceClass::Ssd), "failure is permanent");
            // Every refused command counts as an injection.
            assert_eq!(injected_count(), 2);
        });
    }

    #[test]
    fn sync_thread_kill_fires_after_its_instant() {
        run(async {
            let _g = FaultSchedule::install(FaultPlan::new(1).sync_thread_kill(0, secs(5)));
            assert!(!sync_thread_killed(0), "before the instant");
            e10_simcore::sleep(SimDuration::from_secs(6)).await;
            assert!(sync_thread_killed(0));
            assert!(!sync_thread_killed(1), "wrong node");
        });
    }

    #[test]
    fn device_fail_never_shifts_probabilistic_streams() {
        // The same seed with and without a DeviceFail spec must draw
        // identical RPC-failure sequences: the trigger is time-based.
        let draws = |with_fail: bool| {
            run(async move {
                let mut plan = FaultPlan::new(9).rpc_fail(None, always(), 0.5);
                if with_fail {
                    plan = plan.device_fail(0, DeviceClass::Nvm, secs(0));
                }
                let _g = FaultSchedule::install(plan);
                (0..64)
                    .map(|_| {
                        device_failed(0, DeviceClass::Nvm);
                        rpc_fails(0)
                    })
                    .collect::<Vec<bool>>()
            })
        };
        assert_eq!(draws(false), draws(true));
    }

    #[test]
    fn device_fails_accessor_reports_declared_specs() {
        let plan = FaultPlan::new(1)
            .device_fail(2, DeviceClass::Nvm, secs(3))
            .node_crash(1, secs(5));
        assert_eq!(plan.device_fails(), vec![(2, DeviceClass::Nvm, secs(3))]);
        assert_eq!(plan.crashes(), vec![(1, secs(5))]);
    }

    #[test]
    fn crashes_are_declarative_only() {
        let plan = FaultPlan::new(1)
            .node_crash(3, secs(5))
            .rpc_fail(None, always(), 0.0);
        assert_eq!(plan.crashes(), vec![(3, secs(5))]);
        run(async {
            let _g = FaultSchedule::install(plan);
            // Crash specs never fire through the sampling queries.
            assert!(!rpc_fails(0));
            assert_eq!(injected_count(), 0);
        });
    }
}
