//! # e10-mpiwrap
//!
//! MPIWRAP (paper §III-C): a wrapper around the MPI-IO entry points
//! that retrofits the modified workflow of Fig. 3 onto unmodified
//! applications.
//!
//! * **Hint configuration file.** MPI-IO hints live in a config file
//!   and are attached to `MPI_File_open` for every file whose name
//!   matches a rule, so legacy applications get the `e10_*` hints
//!   without source changes.
//! * **Deferred close.** For files in a `deferred_close` family,
//!   `MPI_File_close` returns success immediately but keeps the handle;
//!   the next `MPI_File_open` of a file with the same base name first
//!   really closes the outstanding handle (waiting for cache
//!   synchronisation) before opening the new one — moving the close of
//!   file *k* to the start of I/O phase *k+1*, exactly Fig. 3.
//! * `finalize()` (the `MPI_Finalize` overload) really closes anything
//!   still outstanding.
//!
//! The config format mirrors the real library's hints file:
//!
//! ```text
//! # one section per file family
//! file: /gfs/checkpoint*
//!   e10_cache enable
//!   e10_cache_flush_flag flush_onclose
//!   deferred_close true
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use e10_mpisim::Info;
use e10_romio::{AdioError, AdioFile, IoCtx};

/// One configuration rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRule {
    /// Glob-ish pattern: a literal path, optionally ending in `*`.
    pub pattern: String,
    /// Hints applied at open.
    pub hints: Vec<(String, String)>,
    /// Whether closes of matching files are deferred to the next open
    /// of the same family.
    pub deferred_close: bool,
}

impl FileRule {
    /// True if `path` matches the rule's pattern.
    pub fn matches(&self, path: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => path.starts_with(prefix),
            None => path == self.pattern,
        }
    }
}

/// Parsed wrapper configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WrapConfig {
    /// Rules, first match wins.
    pub rules: Vec<FileRule>,
}

/// A malformed config line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl WrapConfig {
    /// Parse the config text.
    pub fn parse(text: &str) -> Result<WrapConfig, ConfigError> {
        let mut rules: Vec<FileRule> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(pat) = line.strip_prefix("file:") {
                let pat = pat.trim();
                if pat.is_empty() {
                    return Err(ConfigError {
                        line: i + 1,
                        message: "empty file pattern".into(),
                    });
                }
                rules.push(FileRule {
                    pattern: pat.to_string(),
                    hints: Vec::new(),
                    deferred_close: false,
                });
            } else {
                let Some(rule) = rules.last_mut() else {
                    return Err(ConfigError {
                        line: i + 1,
                        message: "hint before any 'file:' section".into(),
                    });
                };
                let mut it = line.splitn(2, char::is_whitespace);
                let key = it.next().unwrap_or("").trim();
                let value = it.next().unwrap_or("").trim();
                if key.is_empty() || value.is_empty() {
                    return Err(ConfigError {
                        line: i + 1,
                        message: format!("expected '<key> <value>', got {line:?}"),
                    });
                }
                if key == "deferred_close" {
                    rule.deferred_close = match value {
                        "true" | "enable" => true,
                        "false" | "disable" => false,
                        _ => {
                            return Err(ConfigError {
                                line: i + 1,
                                message: format!(
                                    "deferred_close must be true/false, got {value:?}"
                                ),
                            })
                        }
                    };
                } else {
                    rule.hints.push((key.to_string(), value.to_string()));
                }
            }
        }
        Ok(WrapConfig { rules })
    }

    /// The first rule matching `path`.
    pub fn rule_for(&self, path: &str) -> Option<&FileRule> {
        self.rules.iter().find(|r| r.matches(path))
    }
}

/// The base name of a file family: the path with one trailing
/// `.<digits>` component stripped (`/gfs/chk.3` → `/gfs/chk`), so the
/// phase-numbered files of one application stream share a family.
pub fn family_of(path: &str) -> &str {
    if let Some(dot) = path.rfind('.') {
        let suffix = &path[dot + 1..];
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return &path[..dot];
        }
    }
    path
}

/// Per-process wrapper state (the PMPI layer).
pub struct MpiWrap {
    ctx: IoCtx,
    config: WrapConfig,
    /// family → handle whose close was deferred.
    outstanding: RefCell<HashMap<String, AdioFile>>,
    deferred_closes: RefCell<u64>,
    real_closes: RefCell<u64>,
}

impl MpiWrap {
    /// Install the wrapper for one process (the `MPI_Init` overload).
    pub fn new(ctx: IoCtx, config: WrapConfig) -> Rc<MpiWrap> {
        Rc::new(MpiWrap {
            ctx,
            config,
            outstanding: RefCell::new(HashMap::new()),
            deferred_closes: RefCell::new(0),
            real_closes: RefCell::new(0),
        })
    }

    /// The `MPI_File_open` overload: really closes any outstanding
    /// same-family handle first (triggering the cache-synchronisation
    /// completion check), merges configured hints over the caller's,
    /// then opens.
    pub async fn file_open(
        &self,
        path: &str,
        user_info: &Info,
        create: bool,
    ) -> Result<AdioFile, AdioError> {
        let family = family_of(path).to_string();
        let prev = self.outstanding.borrow_mut().remove(&family);
        if let Some(f) = prev {
            f.close().await;
            *self.real_closes.borrow_mut() += 1;
        }
        let info = user_info.dup();
        if let Some(rule) = self.config.rule_for(path) {
            for (k, v) in &rule.hints {
                info.set(k, v);
            }
        }
        AdioFile::open(&self.ctx, path, &info, create).await
    }

    /// The `MPI_File_close` overload: defers the close for configured
    /// families, otherwise closes for real.
    pub async fn file_close(&self, file: AdioFile) {
        let path = file.global().path().to_string();
        let deferred = self
            .config
            .rule_for(&path)
            .is_some_and(|r| r.deferred_close);
        if deferred {
            *self.deferred_closes.borrow_mut() += 1;
            self.outstanding
                .borrow_mut()
                .insert(family_of(&path).to_string(), file);
        } else {
            file.close().await;
            *self.real_closes.borrow_mut() += 1;
        }
    }

    /// The `MPI_Finalize` overload: really close everything still
    /// outstanding (in deterministic path order).
    pub async fn finalize(&self) {
        let mut files: Vec<(String, AdioFile)> = self.outstanding.borrow_mut().drain().collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, f) in files {
            f.close().await;
            *self.real_closes.borrow_mut() += 1;
        }
    }

    /// Handles whose close is currently deferred.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.borrow().len()
    }

    /// `(deferred, real)` close counts.
    pub fn close_stats(&self) -> (u64, u64) {
        (*self.deferred_closes.borrow(), *self.real_closes.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_romio::TestbedSpec;
    use e10_simcore::run;
    use e10_storesim::Payload;

    const CONFIG: &str = "\
# E10 hints for checkpoint streams
file: /gfs/chk*
  e10_cache enable
  e10_cache_flush_flag flush_onclose
  e10_cache_discard_flag enable
  deferred_close true

file: /gfs/plain.dat
  romio_cb_write enable
";

    #[test]
    fn config_parses_sections_and_hints() {
        let cfg = WrapConfig::parse(CONFIG).unwrap();
        assert_eq!(cfg.rules.len(), 2);
        let r = cfg.rule_for("/gfs/chk.0").unwrap();
        assert!(r.deferred_close);
        assert_eq!(r.hints.len(), 3);
        assert!(cfg.rule_for("/gfs/plain.dat").is_some());
        assert!(cfg.rule_for("/gfs/other").is_none());
    }

    #[test]
    fn config_errors_are_located() {
        let e = WrapConfig::parse("e10_cache enable\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("file:"));
        let e = WrapConfig::parse("file: /a\n  deferred_close maybe\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = WrapConfig::parse("file:\n").unwrap_err();
        assert!(e.message.contains("empty"));
        // Comments and blanks are fine.
        assert!(WrapConfig::parse("# hi\n\n").unwrap().rules.is_empty());
    }

    #[test]
    fn family_stripping() {
        assert_eq!(family_of("/gfs/chk.0"), "/gfs/chk");
        assert_eq!(family_of("/gfs/chk.123"), "/gfs/chk");
        assert_eq!(family_of("/gfs/chk.dat"), "/gfs/chk.dat");
        assert_eq!(family_of("/gfs/chk"), "/gfs/chk");
        assert_eq!(family_of("/gfs/chk."), "/gfs/chk.");
    }

    #[test]
    fn deferred_close_workflow_matches_fig3() {
        run(async {
            let tb = TestbedSpec::small(2, 1).build();
            let cfg = WrapConfig::parse(CONFIG).unwrap();
            let handles: Vec<_> = tb
                .ctxs()
                .into_iter()
                .map(|ctx| {
                    let cfg = cfg.clone();
                    e10_simcore::spawn(async move {
                        let wrap = MpiWrap::new(ctx.clone(), cfg);
                        let rank = ctx.comm.rank() as u64;
                        // Phase 0: write file chk.0, "close" it.
                        let f0 = wrap
                            .file_open("/gfs/chk.0", &Info::new(), true)
                            .await
                            .unwrap();
                        f0.write_contig(rank * 1000, Payload::gen(70, rank * 1000, 1000))
                            .await
                            .unwrap();
                        let g0 = f0.global().clone();
                        wrap.file_close(f0).await;
                        assert_eq!(wrap.outstanding_count(), 1);
                        // flush_onclose + deferred close: nothing has
                        // reached the global file yet.
                        assert_eq!(g0.extents().covered_bytes(), 0);

                        // Phase 1: opening chk.1 really closes chk.0.
                        let f1 = wrap
                            .file_open("/gfs/chk.1", &Info::new(), true)
                            .await
                            .unwrap();
                        assert_eq!(wrap.outstanding_count(), 0);
                        g0.extents().verify_gen(70, rank * 1000, 1000).unwrap();
                        f1.write_contig(rank * 1000, Payload::gen(71, rank * 1000, 1000))
                            .await
                            .unwrap();
                        let g1 = f1.global().clone();
                        wrap.file_close(f1).await;

                        // Finalize really closes chk.1.
                        wrap.finalize().await;
                        assert_eq!(wrap.outstanding_count(), 0);
                        g1.extents().verify_gen(71, rank * 1000, 1000).unwrap();
                        let (deferred, real) = wrap.close_stats();
                        assert_eq!(deferred, 2);
                        assert_eq!(real, 2);
                    })
                })
                .collect();
            e10_simcore::join_all(handles).await;
        });
    }

    #[test]
    fn non_configured_files_close_immediately() {
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let ctx = tb.ctx(0);
            let wrap = MpiWrap::new(ctx, WrapConfig::parse(CONFIG).unwrap());
            let f = wrap
                .file_open("/gfs/other.0", &Info::new(), true)
                .await
                .unwrap();
            wrap.file_close(f).await;
            assert_eq!(wrap.outstanding_count(), 0);
            let (deferred, real) = wrap.close_stats();
            assert_eq!((deferred, real), (0, 1));
        });
    }

    #[test]
    fn configured_hints_reach_the_file() {
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let ctx = tb.ctx(0);
            let wrap = MpiWrap::new(ctx, WrapConfig::parse(CONFIG).unwrap());
            let f = wrap
                .file_open("/gfs/chk.0", &Info::new(), true)
                .await
                .unwrap();
            assert!(f.cache_active(), "config must enable the E10 cache");
            assert!(f.hints().e10_cache_discard_flag);
            wrap.file_close(f).await;
            wrap.finalize().await;
        });
    }

    /// Two independent deferred-close families for the conformance
    /// tests below.
    const TWO_FAMILY_CONFIG: &str = "\
file: /gfs/chk*
  e10_cache enable
  e10_cache_flush_flag flush_onclose
  e10_cache_discard_flag enable
  deferred_close true

file: /gfs/log*
  e10_cache enable
  e10_cache_flush_flag flush_onclose
  e10_cache_discard_flag enable
  deferred_close true
";

    #[test]
    fn reopen_really_closes_the_old_handle_first() {
        // Fig. 3 conformance: the deferred close of file k must have
        // *actually completed* — handle closed, data synced — by the
        // time the open of file k+1 returns, not merely be scheduled.
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let wrap = MpiWrap::new(tb.ctx(0), WrapConfig::parse(TWO_FAMILY_CONFIG).unwrap());
            let f0 = wrap
                .file_open("/gfs/chk.0", &Info::new(), true)
                .await
                .unwrap();
            f0.write_contig(0, Payload::gen(80, 0, 4096)).await.unwrap();
            let watch = f0.clone(); // shares the closed flag
            let g0 = f0.global().clone();
            wrap.file_close(f0).await;
            // Deferred: success was reported but nothing closed.
            assert!(!watch.is_closed());
            assert_eq!(wrap.outstanding_count(), 1);
            assert_eq!(g0.extents().covered_bytes(), 0);

            let f1 = wrap
                .file_open("/gfs/chk.1", &Info::new(), true)
                .await
                .unwrap();
            // The old handle is really closed and its bytes persistent
            // before the new open completes.
            assert!(watch.is_closed());
            assert_eq!(wrap.outstanding_count(), 0);
            g0.extents().verify_gen(80, 0, 4096).unwrap();
            wrap.file_close(f1).await;
            wrap.finalize().await;
        });
    }

    #[test]
    fn finalize_drains_every_outstanding_family() {
        // Two families defer closes independently; MPI_Finalize must
        // really close both, syncing their caches.
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let wrap = MpiWrap::new(tb.ctx(0), WrapConfig::parse(TWO_FAMILY_CONFIG).unwrap());
            let fc = wrap
                .file_open("/gfs/chk.0", &Info::new(), true)
                .await
                .unwrap();
            fc.write_contig(0, Payload::gen(81, 0, 2048)).await.unwrap();
            let fl = wrap
                .file_open("/gfs/log.0", &Info::new(), true)
                .await
                .unwrap();
            fl.write_contig(0, Payload::gen(82, 0, 2048)).await.unwrap();
            let (wc, wl) = (fc.clone(), fl.clone());
            let (gc, gl) = (fc.global().clone(), fl.global().clone());
            wrap.file_close(fc).await;
            wrap.file_close(fl).await;
            assert_eq!(wrap.outstanding_count(), 2);
            assert!(!wc.is_closed() && !wl.is_closed());

            wrap.finalize().await;
            assert_eq!(wrap.outstanding_count(), 0);
            assert!(wc.is_closed() && wl.is_closed());
            gc.extents().verify_gen(81, 0, 2048).unwrap();
            gl.extents().verify_gen(82, 0, 2048).unwrap();
            let (deferred, real) = wrap.close_stats();
            assert_eq!((deferred, real), (2, 2));
        });
    }

    #[test]
    fn open_of_other_family_leaves_outstanding_handle_untouched() {
        // Only a same-family open flushes the deferred handle; files
        // of other families (or none) must not disturb it.
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let wrap = MpiWrap::new(tb.ctx(0), WrapConfig::parse(TWO_FAMILY_CONFIG).unwrap());
            let f0 = wrap
                .file_open("/gfs/chk.0", &Info::new(), true)
                .await
                .unwrap();
            let watch = f0.clone();
            wrap.file_close(f0).await;
            assert_eq!(wrap.outstanding_count(), 1);

            // A different deferred family and an unconfigured file:
            // neither touches the outstanding chk handle.
            let fl = wrap
                .file_open("/gfs/log.0", &Info::new(), true)
                .await
                .unwrap();
            let fo = wrap
                .file_open("/gfs/other.dat", &Info::new(), true)
                .await
                .unwrap();
            assert!(!watch.is_closed());
            wrap.file_close(fo).await; // unconfigured: closes for real
            wrap.file_close(fl).await; // deferred alongside chk
            assert!(!watch.is_closed());
            assert_eq!(wrap.outstanding_count(), 2);

            wrap.finalize().await;
            assert!(watch.is_closed());
            assert_eq!(wrap.outstanding_count(), 0);
        });
    }

    #[test]
    fn user_hints_are_overridden_by_config() {
        run(async {
            let tb = TestbedSpec::small(1, 1).build();
            let ctx = tb.ctx(0);
            let wrap = MpiWrap::new(ctx, WrapConfig::parse(CONFIG).unwrap());
            let user = Info::from_pairs([("e10_cache", "disable"), ("cb_buffer_size", "1M")]);
            let f = wrap.file_open("/gfs/chk.9", &user, true).await.unwrap();
            // Config wins for its keys; unrelated user hints survive.
            assert!(f.cache_active());
            assert_eq!(f.hints().cb_buffer_size, 1 << 20);
            wrap.file_close(f).await;
            wrap.finalize().await;
        });
    }
}
