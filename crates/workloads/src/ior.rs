//! IOR: the interleaved-or-random parallel I/O benchmark, in its
//! segmented collective-write configuration.
//!
//! The file is a sequence of segments; within a segment every process
//! owns one `block_size` block at `(segment × P + rank) × block_size`,
//! written in `transfer_size` pieces. The paper: 512 processes × 8 MB
//! blocks × 8 segments = 32 GB, one `MPI_File_write_all` per transfer.

use e10_mpisim::{FileView, FlatType};

use crate::{Workload, WorkloadSpec};

/// IOR parameters.
#[derive(Debug, Clone)]
pub struct Ior {
    /// MPI processes.
    pub nprocs: usize,
    /// Per-process block per segment, bytes.
    pub block_size: u64,
    /// Bytes per write call (≤ block_size, divides it).
    pub transfer_size: u64,
    /// Number of segments.
    pub segments: u64,
}

impl Ior {
    /// The paper's configuration: 8 MB blocks, 8 segments, 512 ranks.
    pub fn paper_512() -> Self {
        Ior {
            nprocs: 512,
            block_size: 8 << 20,
            transfer_size: 8 << 20,
            segments: 8,
        }
    }

    /// Miniature configuration for tests.
    pub fn tiny(nprocs: usize) -> Self {
        Ior {
            nprocs,
            block_size: 4 << 10,
            transfer_size: 2 << 10,
            segments: 3,
        }
    }

    fn segment_bytes(&self) -> u64 {
        self.nprocs as u64 * self.block_size
    }
}

impl WorkloadSpec for Ior {
    fn paper() -> Self {
        Ior::paper_512()
    }

    fn quick(nprocs: usize) -> Self {
        Ior {
            nprocs,
            block_size: 1 << 20,
            transfer_size: 1 << 20,
            segments: 4,
        }
    }

    fn tiny_for(nprocs: usize) -> Self {
        Ior::tiny(nprocs)
    }
}

impl Workload for Ior {
    fn name(&self) -> &'static str {
        "ior"
    }

    fn procs(&self) -> usize {
        self.nprocs
    }

    fn file_size(&self) -> u64 {
        self.segments * self.segment_bytes()
    }

    fn writes(&self, rank: usize) -> Vec<FileView> {
        assert!(self.block_size.is_multiple_of(self.transfer_size));
        let mut out = Vec::new();
        for seg in 0..self.segments {
            let block_off = seg * self.segment_bytes() + rank as u64 * self.block_size;
            for t in 0..(self.block_size / self.transfer_size) {
                out.push(FileView::new(
                    &FlatType::contiguous(self.transfer_size),
                    block_off + t * self.transfer_size,
                ));
            }
        }
        out
    }

    /// IOR's collective mode forces collective buffering even though a
    /// single transfer's accesses are disjoint-contiguous.
    fn force_collective(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_32gb() {
        let w = Ior::paper_512();
        assert_eq!(w.file_size(), 32 << 30);
        assert_eq!(w.writes(0).len(), 8); // one write_all per segment
    }

    #[test]
    fn views_tile_the_file() {
        let w = Ior::tiny(3);
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for r in 0..w.procs() {
            for v in w.writes(r) {
                for p in v.pieces() {
                    runs.push((p.file_off, p.len));
                }
            }
        }
        runs.sort_unstable();
        let mut pos = 0;
        for (off, len) in runs {
            assert_eq!(off, pos);
            pos = off + len;
        }
        assert_eq!(pos, w.file_size());
    }

    #[test]
    fn transfer_granularity_splits_blocks() {
        let w = Ior::tiny(2);
        // 3 segments × (4K block / 2K transfer) = 6 writes per rank.
        assert_eq!(w.writes(0).len(), 6);
        for v in w.writes(1) {
            assert_eq!(v.total_bytes(), 2 << 10);
        }
    }
}
