//! Node-crash / recovery harness for cached collective writes.
//!
//! [`run_workload`](crate::run_workload) can sample stall, link and RPC
//! faults ambiently, but a node crash needs an owner: somebody must cut
//! power to the node's local file system *before* killing its task
//! tree (torn in-flight writes would otherwise be silently discarded),
//! then drive the crash-consistent recovery. This module is that owner.
//!
//! The sequence mirrors a real failure of the paper's setup:
//!
//! 1. every rank performs its collective writes; the E10 cache holds
//!    the acknowledged data on the node-local NVM device,
//! 2. the declared node loses power — in-flight device writes are torn
//!    at the atomicity unit, the page cache comes back cold, and the
//!    node's whole task tree (ranks, sync threads) dies,
//! 3. surviving ranks finish on their own (`MPI_File_sync` is not
//!    collective, so nobody blocks on the dead node),
//! 4. recovery re-opens each crashed rank's cache from its manifest
//!    journal ([`CacheLayer::recover`]), re-queues every extent that
//!    never reached the global file and flushes it out.
//!
//! With the journal enabled (`e10_cache_journal`) the recovered global
//! file is byte-identical to a fault-free run; with it disabled the
//! same crash is detected and reported as data loss.

use std::cell::Cell;
use std::rc::Rc;

use e10_faultsim::{FaultPlan, FaultSchedule};
use e10_mpisim::Info;
use e10_romio::{
    write_at_all, AdioFile, CacheClass, CacheConfig, CacheLayer, DataSpec, IoCtx, RecoverError,
    RecoveryReport, RomioHints, Testbed,
};
use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::{
    kill_group, new_group, now, sleep, spawn, spawn_in_group, Flag, SimRng, SimTime,
};

use crate::Workload;

/// Configuration of one crash/recovery experiment.
#[derive(Clone)]
pub struct CrashConfig {
    /// MPI-IO hints (normally `e10_cache` + `e10_cache_journal`).
    pub hints: Info,
    /// Global file path.
    pub path: String,
    /// Generator seed for the written data (the verification oracle).
    pub seed: u64,
    /// The fault plan; its *first* node-crash spec is executed. The
    /// remaining specs (stalls, link faults, RPC failures) stay
    /// installed ambiently for the whole run, recovery included.
    pub faults: FaultPlan,
    /// Torn-write atomicity unit of the node's SSD, bytes.
    pub atomicity: u64,
    /// Torn-write atomicity unit of the node's NVM device, bytes
    /// (byte-addressable persistent memory tears at the cache-line
    /// flush unit, not the block size). Used when `e10_cache_class`
    /// stages data on the NVM mount.
    pub nvm_atomicity: u64,
}

impl CrashConfig {
    /// A crash of `node` as soon as every rank's writes are
    /// acknowledged — the earliest instant at which a fault-free
    /// comparison is meaningful (everything acked must survive).
    pub fn after_writes(hints: Info, path: &str, seed: u64, node: usize) -> CrashConfig {
        CrashConfig {
            hints,
            path: path.to_string(),
            seed,
            faults: FaultPlan::new(seed).node_crash(node, SimTime::ZERO),
            atomicity: 4096,
            nvm_atomicity: 64,
        }
    }
}

/// What a crash/recovery run did and found.
#[derive(Debug)]
pub struct CrashOutcome {
    /// The node that lost power.
    pub crashed_node: usize,
    /// Virtual instant of the power cut.
    pub crash_time: SimTime,
    /// Tasks destroyed by the crash (ranks, sync threads, …).
    pub killed_tasks: usize,
    /// Bytes acknowledged by collective writes across all ranks.
    pub written_bytes: u64,
    /// Per-rank journal recovery reports for the crashed node.
    pub recovered: Vec<(usize, RecoveryReport)>,
    /// Ranks whose staged bytes were unrecoverable (no journal), with
    /// the number of bytes stranded in their cache files.
    pub lost: Vec<(usize, u64)>,
    /// Ranks whose recovery failed outright (local FS error).
    pub failed: Vec<(usize, String)>,
    /// Virtual seconds the recovery pass took (journal replay +
    /// re-queued sync + flush for every crashed rank).
    pub recovery_secs: f64,
    /// Byte-for-byte verification of the final global file against the
    /// generator — `Ok` exactly when recovery restored every acked byte.
    pub verified: Result<(), String>,
}

/// A [`CrashConfig`] that cannot be executed as declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashConfigError {
    /// The fault plan contains no `node_crash` spec to execute.
    NoCrashDeclared,
    /// The declared crash node hosts no rank of the workload — the
    /// crash would be a no-op and the experiment meaningless.
    NoRankOnNode {
        /// The empty node.
        node: usize,
    },
}

impl std::fmt::Display for CrashConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashConfigError::NoCrashDeclared => {
                write!(f, "crash config error: fault plan declares no node crash")
            }
            CrashConfigError::NoRankOnNode { node } => write!(
                f,
                "crash config error: no rank of the workload lives on node {node}"
            ),
        }
    }
}

impl std::error::Error for CrashConfigError {}

impl CrashOutcome {
    /// Total bytes re-queued from journals during recovery.
    pub fn requeued_bytes(&self) -> u64 {
        self.recovered.iter().map(|(_, r)| r.requeued_bytes).sum()
    }

    /// Total bytes reported stranded (journal-less caches).
    pub fn lost_bytes(&self) -> u64 {
        self.lost.iter().map(|&(_, b)| b).sum()
    }
}

/// Run `workload` once with a mid-run crash of the planned node, then
/// recover the node's caches and verify the global file.
///
/// The crash fires once every rank has finished its collective writes
/// (event trigger) and no earlier than the plan's declared instant
/// (time trigger) — acknowledged data is exactly the data a recovery
/// must reproduce. Returns a [`CrashConfigError`] (instead of
/// panicking) if the plan declares no node crash or the crashed node
/// hosts no rank.
pub async fn run_crash_recovery(
    tb: &Testbed,
    workload: Rc<dyn Workload>,
    cfg: &CrashConfig,
) -> Result<CrashOutcome, CrashConfigError> {
    let procs = workload.procs();
    assert_eq!(
        tb.world.comms.len(),
        procs,
        "testbed rank count must match the workload"
    );
    let crashes = cfg.faults.crashes();
    let Some(&(crash_node, crash_at)) = crashes.first() else {
        return Err(CrashConfigError::NoCrashDeclared);
    };
    let victims: Vec<usize> = (0..procs)
        .filter(|&r| tb.world.comms[r].node() == crash_node)
        .collect();
    if victims.is_empty() {
        return Err(CrashConfigError::NoRankOnNode { node: crash_node });
    }

    let _guard = FaultSchedule::install(cfg.faults.clone());
    let crash_gid = new_group();
    let writes_done = Rc::new(Cell::new(0usize));
    let all_written = Flag::new();
    let crashed = Flag::new();

    // --- phase 1+3: the ranks -----------------------------------------
    let mut survivor_handles = Vec::new();
    for rank in 0..procs {
        let ctx = IoCtx {
            comm: tb.world.comms[rank].clone(),
            pfs: Rc::clone(&tb.pfs),
            localfs: Rc::clone(&tb.localfs),
            nvmfs: Rc::clone(&tb.nvmfs),
        };
        let wl = Rc::clone(&workload);
        let hints = cfg.hints.dup();
        let path = cfg.path.clone();
        let seed = cfg.seed;
        let writes_done = Rc::clone(&writes_done);
        let all_written = all_written.clone();
        let crashed = crashed.clone();
        let body = async move {
            let fd = AdioFile::open(&ctx, &path, &hints, true)
                .await
                .expect("collective open failed");
            let mut bytes = 0u64;
            for view in &wl.writes(ctx.comm.rank()) {
                let r = write_at_all(&fd, view, &DataSpec::FileGen { seed }).await;
                assert_eq!(r.error_code, 0, "pre-crash write failed");
                bytes += r.bytes;
            }
            writes_done.set(writes_done.get() + 1);
            if writes_done.get() == procs {
                all_written.set();
            }
            // Hold here until the crash: victims die in this wait, the
            // survivors then drain their own caches (`MPI_File_sync` is
            // not collective, so the dead node blocks nobody). No
            // `close()`: its barrier would hang on the dead ranks.
            crashed.wait().await;
            fd.file_sync().await;
            bytes
        };
        if tb.world.comms[rank].node() == crash_node {
            // Killed handles never complete; spawn and forget.
            #[allow(clippy::let_underscore_future)]
            let _ = spawn_in_group(crash_gid, body);
        } else {
            survivor_handles.push(spawn(body));
        }
    }

    // --- phase 2: the crash --------------------------------------------
    all_written.wait().await;
    if now() < crash_at {
        sleep(crash_at.since(now())).await;
    }
    let crash_time = now();
    // Power first, kill second: killing first would run the in-flight
    // write guards and discard the torn prefixes power-loss must keep.
    let mut tear_rng = SimRng::stream(cfg.faults.seed, 910_000);
    tb.localfs[crash_node].power_loss(cfg.atomicity, &mut tear_rng);
    // The NVM mount loses power with the node too; byte-granular
    // in-flight writes tear at the cache-line flush unit. A separate
    // stream keeps the SSD tear draws unchanged for ssd-class runs.
    let romio_hints = RomioHints::parse(&cfg.hints).expect("hints parsed at open");
    if romio_hints.e10_cache_class != CacheClass::Ssd {
        let mut nvm_tear_rng = SimRng::stream(cfg.faults.seed, 911_000);
        tb.nvmfs[crash_node].power_loss(cfg.nvm_atomicity, &mut nvm_tear_rng);
    }
    let killed_tasks = kill_group(crash_gid);
    trace::emit(|| {
        Event::new(Layer::Faultsim, "fault.injected", EventKind::Point)
            .node(crash_node)
            .field("fault", "node_crash")
            .field("killed_tasks", killed_tasks as u64)
    });
    trace::counter("faultsim.injected", 1);
    crashed.set();

    let mut written_bytes = 0u64;
    for h in survivor_handles {
        written_bytes += h.await;
    }

    // --- phase 4: recovery ----------------------------------------------
    let recovery_t0 = now();
    let basename = cfg.path.rsplit('/').next().unwrap_or(&cfg.path);
    let mut recovered = Vec::new();
    let mut lost = Vec::new();
    let mut failed = Vec::new();
    for &rank in &victims {
        let ccfg = CacheConfig::from_hints(&romio_hints, basename, rank, crash_node);
        let global = tb.pfs.attach(&cfg.path).expect("global file exists");
        // Recover from whichever mount(s) the cache class staged on.
        let recovery = match romio_hints.e10_cache_class {
            CacheClass::Ssd => {
                CacheLayer::recover(tb.localfs[crash_node].clone(), global, ccfg).await
            }
            CacheClass::Nvm => {
                CacheLayer::recover(tb.nvmfs[crash_node].clone(), global, ccfg).await
            }
            CacheClass::Hybrid => {
                CacheLayer::recover_with_front(
                    tb.localfs[crash_node].clone(),
                    Some(tb.nvmfs[crash_node].clone()),
                    global,
                    ccfg,
                )
                .await
            }
        };
        match recovery {
            Ok((layer, report)) => {
                // A recovery-stage integrity failure (staged bytes that
                // rotted while the node was down) surfaces here as a
                // typed error and counts as a failed rank.
                match layer.close().await {
                    Ok(()) => recovered.push((rank, report)),
                    Err(e) => {
                        failed.push((rank, e.to_string()));
                        recovered.push((rank, report));
                    }
                }
            }
            Err(RecoverError::NoJournal { cached_bytes }) => lost.push((rank, cached_bytes)),
            Err(e) => failed.push((rank, e.to_string())),
        }
    }

    let recovery_secs = now().since(recovery_t0).as_secs_f64();

    let verified = match tb.pfs.file_extents(&cfg.path) {
        Some(ext) => ext
            .verify_gen(cfg.seed, 0, workload.file_size())
            .map_err(|e| e.to_string()),
        None => Err(format!("global file {} missing", cfg.path)),
    };

    Ok(CrashOutcome {
        crashed_node: crash_node,
        crash_time,
        killed_tasks,
        written_bytes,
        recovered,
        lost,
        failed,
        recovery_secs,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollPerf;
    use e10_romio::TestbedSpec;
    use e10_simcore::run;

    fn crash_hints(journal: bool) -> Info {
        let h = Info::from_pairs([
            ("cb_buffer_size", "4096"),
            ("striping_unit", "8192"),
            ("e10_cache", "enable"),
            // Sync only on close/flush: the crashed node's staged data
            // is guaranteed to still be in its cache at crash time.
            ("e10_cache_flush_flag", "flush_onclose"),
        ]);
        if journal {
            h.set("e10_cache_journal", "enable");
        }
        h
    }

    #[test]
    fn journalled_crash_recovers_every_acked_byte() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let cfg = CrashConfig::after_writes(crash_hints(true), "/gfs/crash_j", 77, 1);
            let out = run_crash_recovery(&tb, w, &cfg).await.unwrap();
            assert!(out.killed_tasks > 0, "crash must kill the node's tasks");
            assert!(!out.recovered.is_empty());
            assert!(out.lost.is_empty() && out.failed.is_empty());
            assert!(out.requeued_bytes() > 0, "crash landed before the sync");
            out.verified.expect("recovered file must verify");
        });
    }

    #[test]
    fn journalled_crash_recovers_nvm_class_staged_bytes() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let hints = crash_hints(true);
            hints.set("e10_cache_class", "nvm");
            let cfg = CrashConfig::after_writes(hints, "/gfs/crash_nvm", 81, 1);
            let out = run_crash_recovery(&tb, w, &cfg).await.unwrap();
            assert!(out.killed_tasks > 0);
            assert!(!out.recovered.is_empty());
            assert!(out.lost.is_empty() && out.failed.is_empty());
            assert!(out.requeued_bytes() > 0, "crash landed before the sync");
            out.verified
                .expect("nvm-staged bytes must survive the power cut");
        });
    }

    #[test]
    fn journalled_crash_recovers_hybrid_class_both_tiers() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let hints = crash_hints(true);
            hints.set("e10_cache_class", "hybrid");
            // A threshold between the two write sizes below would be
            // ideal, but CollPerf writes uniform 4 KiB buffers; route
            // half of them to the NVM front by capping its budget so
            // the crash leaves acked bytes on *both* tiers.
            hints.set("e10_nvm_capacity", "8K");
            let cfg = CrashConfig::after_writes(hints, "/gfs/crash_hy", 82, 1);
            let out = run_crash_recovery(&tb, w, &cfg).await.unwrap();
            assert!(out.killed_tasks > 0);
            assert!(!out.recovered.is_empty());
            assert!(out.lost.is_empty() && out.failed.is_empty());
            assert!(out.requeued_bytes() > 0, "crash landed before the sync");
            out.verified
                .expect("bytes staged across both tiers must survive");
        });
    }

    #[test]
    fn plan_without_a_crash_is_a_config_error() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let mut cfg = CrashConfig::after_writes(crash_hints(true), "/gfs/crash_none", 79, 1);
            cfg.faults = FaultPlan::new(79); // no node_crash spec
            let err = run_crash_recovery(&tb, w, &cfg).await.unwrap_err();
            assert_eq!(err, CrashConfigError::NoCrashDeclared);
            assert!(err.to_string().contains("declares no node crash"));
        });
    }

    #[test]
    fn crash_on_an_unpopulated_node_is_a_config_error() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            // 2 nodes host ranks; node 7 exists in no placement.
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let cfg = CrashConfig::after_writes(crash_hints(true), "/gfs/crash_empty", 80, 7);
            let err = run_crash_recovery(&tb, w, &cfg).await.unwrap_err();
            assert_eq!(err, CrashConfigError::NoRankOnNode { node: 7 });
            assert!(err.to_string().contains("node 7"));
        });
    }

    #[test]
    fn journal_disabled_crash_is_reported_as_data_loss() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let cfg = CrashConfig::after_writes(crash_hints(false), "/gfs/crash_nj", 78, 1);
            let out = run_crash_recovery(&tb, w, &cfg).await.unwrap();
            assert!(out.recovered.is_empty());
            assert!(!out.lost.is_empty(), "loss must be attributed per rank");
            assert!(out.lost_bytes() > 0, "stranded bytes must be counted");
            assert!(out.verified.is_err(), "data loss must fail verification");
        });
    }
}
