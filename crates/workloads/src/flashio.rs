//! Flash-IO: the I/O kernel of the FLASH adaptive-mesh hydrodynamics
//! code, writing checkpoint and plot files through (simulated)
//! parallel HDF5.
//!
//! The checkpoint layout follows the real benchmark: one dataset per
//! variable, each a global array `[nblocks_total][nz][ny][nx]` of
//! doubles, with every process owning a contiguous slab of blocks. The
//! paper's configuration: 80 blocks/process, 16 zones per coordinate
//! direction, 24 variables of 8 bytes (768 KB per process per block),
//! ≈30 GB checkpoint. Plot files carry 4 single-precision variables
//! (without and with corner data).

use e10_mpisim::{FileView, FlatType};

use crate::{Workload, WorkloadSpec};

/// Which FLASH file is being produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashFile {
    /// Full checkpoint: all variables, double precision.
    Checkpoint,
    /// Plot file, cell-centred data, single precision.
    Plot,
    /// Plot file with corner data (one extra zone per direction).
    PlotCorners,
}

/// Flash-IO parameters.
#[derive(Debug, Clone)]
pub struct FlashIo {
    /// MPI processes.
    pub nprocs: usize,
    /// Blocks per process.
    pub blocks_per_proc: u64,
    /// Zones per coordinate direction per block.
    pub zones: u64,
    /// Number of mesh variables (checkpoint).
    pub nvars: u64,
    /// Which file to produce.
    pub file: FlashFile,
}

impl FlashIo {
    /// The paper's checkpoint configuration for 512 ranks (~30 GB).
    pub fn paper_checkpoint_512() -> Self {
        FlashIo {
            nprocs: 512,
            blocks_per_proc: 80,
            zones: 16,
            nvars: 24,
            file: FlashFile::Checkpoint,
        }
    }

    /// A miniature configuration for tests.
    pub fn tiny(nprocs: usize) -> Self {
        FlashIo {
            nprocs,
            blocks_per_proc: 2,
            zones: 2,
            nvars: 3,
            file: FlashFile::Checkpoint,
        }
    }

    /// Bytes of one variable of one block.
    fn block_var_bytes(&self) -> u64 {
        let (z, e) = match self.file {
            FlashFile::Checkpoint => (self.zones, 8),
            FlashFile::Plot => (self.zones, 4),
            FlashFile::PlotCorners => (self.zones + 1, 4),
        };
        z * z * z * e
    }

    fn vars(&self) -> u64 {
        match self.file {
            FlashFile::Checkpoint => self.nvars,
            FlashFile::Plot | FlashFile::PlotCorners => 4.min(self.nvars),
        }
    }

    /// Bytes of HDF5-ish metadata at the head of the file (tree
    /// structure, coordinates, bounding boxes — written by rank 0).
    pub fn metadata_bytes(&self) -> u64 {
        // ~96 B of tree info + 56 B of coords per block.
        self.nprocs as u64 * self.blocks_per_proc * 152
    }

    fn dataset_bytes(&self) -> u64 {
        self.nprocs as u64 * self.blocks_per_proc * self.block_var_bytes()
    }
}

impl WorkloadSpec for FlashIo {
    fn paper() -> Self {
        FlashIo::paper_checkpoint_512()
    }

    fn quick(nprocs: usize) -> Self {
        FlashIo {
            nprocs,
            blocks_per_proc: 8,
            zones: 8,
            nvars: 6,
            file: FlashFile::Checkpoint,
        }
    }

    fn tiny_for(nprocs: usize) -> Self {
        FlashIo::tiny(nprocs)
    }
}

impl Workload for FlashIo {
    fn name(&self) -> &'static str {
        match self.file {
            FlashFile::Checkpoint => "flash_io_chk",
            FlashFile::Plot => "flash_io_plt",
            FlashFile::PlotCorners => "flash_io_plt_crn",
        }
    }

    fn procs(&self) -> usize {
        self.nprocs
    }

    fn file_size(&self) -> u64 {
        self.metadata_bytes() + self.vars() * self.dataset_bytes()
    }

    fn writes(&self, rank: usize) -> Vec<FileView> {
        let mut out = Vec::new();
        // Metadata: rank 0 writes the header region; the others
        // participate with empty views (HDF5 collective metadata).
        let meta = self.metadata_bytes();
        if rank == 0 {
            out.push(FileView::new(&FlatType::contiguous(meta), 0));
        } else {
            out.push(FileView::new(&FlatType::contiguous(0), 0));
        }
        // One collective write per variable dataset: this process's
        // contiguous slab of blocks.
        let slab = self.blocks_per_proc * self.block_var_bytes();
        let ds = self.dataset_bytes();
        for v in 0..self.vars() {
            let disp = meta + v * ds + rank as u64 * slab;
            out.push(FileView::new(&FlatType::contiguous(slab), disp));
        }
        out
    }

    /// HDF5 writes per-variable datasets where ranks are contiguous:
    /// force collective buffering as the paper's runs do.
    fn force_collective(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_checkpoint_is_about_30gb() {
        let w = FlashIo::paper_checkpoint_512();
        // 512 × 80 × 24 × 16³ × 8 = 30 GiB of data plus metadata.
        let data = 512u64 * 80 * 24 * 4096 * 8;
        assert_eq!(data, 30 << 30);
        assert!(w.file_size() > data);
        assert!(w.file_size() < data + (1 << 30));
        // 768 KB per proc per block across all variables.
        assert_eq!(24 * w.block_var_bytes(), 768 << 10);
    }

    #[test]
    fn views_cover_file_without_overlap() {
        let w = FlashIo::tiny(4);
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for r in 0..w.procs() {
            for v in w.writes(r) {
                for p in v.pieces() {
                    runs.push((p.file_off, p.len));
                }
            }
        }
        runs.sort_unstable();
        let mut pos = 0;
        for (off, len) in runs {
            assert_eq!(off, pos);
            pos = off + len;
        }
        assert_eq!(pos, w.file_size());
    }

    #[test]
    fn one_write_per_variable_plus_metadata() {
        let w = FlashIo::tiny(4);
        assert_eq!(w.writes(1).len(), 1 + 3);
        assert!(w.force_collective());
    }

    #[test]
    fn plot_files_are_smaller_than_checkpoint() {
        let mut w = FlashIo::paper_checkpoint_512();
        let chk = w.file_size();
        w.file = FlashFile::Plot;
        let plt = w.file_size();
        w.file = FlashFile::PlotCorners;
        let crn = w.file_size();
        assert!(plt < chk);
        assert!(crn > plt, "corner data adds zones");
        assert!(crn < chk);
    }
}
