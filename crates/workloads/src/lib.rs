//! # e10-workloads
//!
//! The three I/O kernels of the paper's evaluation — [`collperf`]
//! (MPICH's coll_perf), [`flashio`] (the FLASH checkpoint kernel) and
//! [`ior`] — plus the [`driver`] implementing the modified multi-file
//! workflow of Fig. 3 with compute-delay overlap and Eq. 2 bandwidth
//! accounting.
//!
//! A [`Workload`] describes, per rank, the sequence of
//! `MPI_File_write_all` calls (as [`e10_mpisim::FileView`]s) that write
//! one file; the driver replays it for each of the run's files against
//! a [`e10_romio::Testbed`].

pub mod chaos;
pub mod collperf;
pub mod crash;
pub mod driver;
pub mod flashio;
pub mod ior;
pub mod multi_job;

pub use chaos::{
    chaos_case, probe_with_plan, random_plan, shrink_plan, spec_kind, ChaosCase, ChaosReport,
    ChaosVerdict, ChaosWorkload,
};
pub use collperf::CollPerf;
pub use crash::{run_crash_recovery, CrashConfig, CrashConfigError, CrashOutcome};
pub use driver::{run_workload, PhaseOutcome, RunConfig, RunOutcome, TraceConfig, TraceReport};
pub use flashio::{FlashFile, FlashIo};
pub use ior::Ior;
pub use multi_job::{run_multi_job, JobOutcome, MultiJobOutcome, MultiJobSpec};

use e10_mpisim::FileView;

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn workload_spec_matches_legacy_constructors() {
        // The trait constructors must reproduce the exact historical
        // configurations the sweeps were generated with.
        let c = <CollPerf as WorkloadSpec>::paper();
        assert_eq!((c.grid, c.side, c.chunk), ([8, 8, 8], 8, 128 << 10));
        let c = <CollPerf as WorkloadSpec>::tiny_for(8);
        assert_eq!((c.grid, c.side, c.chunk), ([2, 2, 2], 2, 1 << 10));
        let c = <CollPerf as WorkloadSpec>::quick(64);
        assert_eq!((c.grid, c.side, c.chunk), ([4, 4, 4], 4, 64 << 10));

        let f = <FlashIo as WorkloadSpec>::paper();
        assert_eq!(f.procs(), 512);
        assert_eq!(f.blocks_per_proc, 80);
        let f = <FlashIo as WorkloadSpec>::quick(64);
        assert_eq!(
            (f.nprocs, f.blocks_per_proc, f.zones, f.nvars),
            (64, 8, 8, 6)
        );

        let i = <Ior as WorkloadSpec>::paper();
        assert_eq!(i.file_size(), 32 << 30);
        let i = <Ior as WorkloadSpec>::quick(64);
        assert_eq!(
            (i.nprocs, i.block_size, i.transfer_size, i.segments),
            (64, 1 << 20, 1 << 20, 4)
        );
        let i = <Ior as WorkloadSpec>::tiny_for(4);
        assert_eq!(
            (i.block_size, i.transfer_size, i.segments),
            (4 << 10, 2 << 10, 3)
        );
    }

    #[test]
    fn collperf_grid_for_balances_factors() {
        assert_eq!(CollPerf::grid_for(8), [2, 2, 2]);
        assert_eq!(CollPerf::grid_for(64), [4, 4, 4]);
        assert_eq!(CollPerf::grid_for(512), [8, 8, 8]);
        assert_eq!(CollPerf::grid_for(1), [1, 1, 1]);
        // Non-cubes still multiply out to nprocs.
        for n in [2usize, 4, 6, 12, 24, 96] {
            let g = CollPerf::grid_for(n);
            assert_eq!((g[0] * g[1] * g[2]) as usize, n, "grid_for({n}) = {g:?}");
        }
    }

    #[test]
    fn generic_construction_is_usable_behind_the_trait() {
        fn build<W: WorkloadSpec>(n: usize) -> W {
            W::tiny_for(n)
        }
        assert_eq!(build::<CollPerf>(8).procs(), 8);
        assert_eq!(build::<FlashIo>(8).procs(), 8);
        assert_eq!(build::<Ior>(8).procs(), 8);
    }
}

/// A benchmark's access pattern for one file.
pub trait Workload {
    /// Short name (used in file paths and reports).
    fn name(&self) -> &'static str;

    /// Number of MPI processes the pattern is defined for.
    fn procs(&self) -> usize;

    /// Bytes in one complete file.
    fn file_size(&self) -> u64;

    /// The collective writes rank `rank` performs for one file, in
    /// order. The union over ranks must tile `[0, file_size())`.
    fn writes(&self, rank: usize) -> Vec<FileView>;

    /// Whether the benchmark forces `romio_cb_write = enable` (HDF5 /
    /// IOR collective mode do; coll_perf's pattern is interleaved and
    /// triggers collective buffering on its own).
    fn force_collective(&self) -> bool {
        false
    }
}

/// The scale-indexed constructors every paper workload provides,
/// unifying the formerly duplicated `paper_512()` / `tiny()` pairs of
/// [`CollPerf`], [`FlashIo`] and [`Ior`] so harnesses (the bench
/// `Scale` type, sweep bins) can build any workload generically
/// instead of matching on concrete types.
pub trait WorkloadSpec: Workload + Sized {
    /// The paper's 512-rank evaluation configuration.
    fn paper() -> Self;

    /// A reduced configuration for `nprocs` ranks that keeps the
    /// paper's access-pattern shape at sweepable cost (the
    /// `E10_SCALE=quick` shapes: megabytes per rank, minutes per
    /// sweep).
    fn quick(nprocs: usize) -> Self;

    /// A miniature configuration for `nprocs` ranks (kilobytes per
    /// rank; the test suite and CI smoke gates).
    fn tiny_for(nprocs: usize) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_mpisim::Info;
    use e10_romio::TestbedSpec;
    use e10_simcore::run;
    use std::rc::Rc;

    fn quick_cfg(hints: Info, prefix: &str, files: usize) -> RunConfig {
        RunConfig {
            files,
            compute_delay: e10_simcore::SimDuration::from_secs(5),
            hints,
            include_last_sync: true,
            verify: true,
            path_prefix: prefix.to_string(),
            seed_base: 50,
            compute_jitter_cv: 0.0,
            trace: TraceConfig::default(),
            faults: e10_faultsim::FaultPlan::default(),
        }
    }

    #[test]
    fn collperf_end_to_end_no_cache() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 4).build();
            let hints = Info::from_pairs([("cb_buffer_size", "4096"), ("striping_unit", "8192")]);
            let out = run_workload(&tb, w, &quick_cfg(hints, "/gfs/cp", 2)).await;
            assert_eq!(out.phases.len(), 2);
            assert!(out.bandwidth > 0.0);
            // Cache disabled: close waits are negligible.
            for p in &out.phases {
                assert!(p.not_hidden < 0.1, "unexpected close wait {p:?}");
            }
        });
    }

    #[test]
    fn collperf_end_to_end_with_cache() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 2]));
            let tb = TestbedSpec::small(w.procs(), 4).build();
            let hints = Info::from_pairs([
                ("cb_buffer_size", "4096"),
                ("striping_unit", "8192"),
                ("e10_cache", "enable"),
                ("e10_cache_discard_flag", "enable"),
            ]);
            let out = run_workload(&tb, w, &quick_cfg(hints, "/gfs/cpc", 2)).await;
            assert!(out.bandwidth > 0.0);
            // Verification inside run_workload proves the flush path.
        });
    }

    #[test]
    fn flashio_end_to_end() {
        run(async {
            let w = Rc::new(FlashIo::tiny(4));
            let tb = TestbedSpec::small(4, 2).build();
            let hints = Info::from_pairs([
                ("cb_buffer_size", "4096"),
                ("striping_unit", "4096"),
                ("e10_cache", "enable"),
            ]);
            let out = run_workload(&tb, w, &quick_cfg(hints, "/gfs/flash", 2)).await;
            assert!(out.bandwidth > 0.0);
        });
    }

    #[test]
    fn ior_end_to_end_counts_last_sync() {
        run(async {
            let w = Rc::new(Ior::tiny(4));
            let tb = TestbedSpec::small(4, 2).build();
            let hints = Info::from_pairs([
                ("cb_buffer_size", "4096"),
                ("striping_unit", "4096"),
                ("e10_cache", "enable"),
                ("e10_cache_flush_flag", "flush_onclose"),
            ]);
            let mut cfg = quick_cfg(hints, "/gfs/ior", 2);
            cfg.compute_delay = e10_simcore::SimDuration::from_nanos(1);
            let out = run_workload(&tb, w, &cfg).await;
            // With flush_onclose and ~no compute, close waits must show.
            let last = out.phases.last().unwrap();
            assert!(
                last.not_hidden > 0.0,
                "last phase must expose sync: {last:?}"
            );
        });
    }

    #[test]
    fn flush_none_skips_global_file_entirely() {
        run(async {
            let w = Rc::new(Ior::tiny(2));
            let tb = TestbedSpec::small(2, 1).build();
            let hints = Info::from_pairs([
                ("cb_buffer_size", "4096"),
                ("e10_cache", "enable"),
                ("e10_cache_flush_flag", "flush_none"),
            ]);
            let mut cfg = quick_cfg(hints, "/gfs/tbw", 1);
            cfg.verify = false; // nothing ever reaches the global file
            let out = run_workload(&tb, w, &cfg).await;
            assert!(out.bandwidth > 0.0);
            let ext = tb.pfs.file_extents("/gfs/tbw.0").unwrap();
            assert_eq!(ext.covered_bytes(), 0);
        });
    }

    #[test]
    fn full_ssd_degrades_to_write_through_and_stays_correct() {
        run(async {
            let w = Rc::new(Ior::tiny(4));
            // Each node's SSD partition holds 16 KiB while one file
            // stages ~24 KiB per node: the cache must fill mid-file,
            // degrade to write-through and still produce a
            // byte-identical global file (run_workload verifies).
            let mut spec = TestbedSpec::small(4, 2);
            spec.localfs.capacity = 16 << 10;
            let tb = spec.build();
            let hints = Info::from_pairs([
                ("cb_buffer_size", "4096"),
                ("striping_unit", "4096"),
                ("e10_cache", "enable"),
                ("e10_cache_flush_flag", "flush_onclose"),
                ("e10_cache_journal", "enable"),
                ("e10_integrity", "enable"),
            ]);
            let mut cfg = quick_cfg(hints, "/gfs/degrade", 2);
            cfg.trace.mode = e10_romio::TraceMode::Ring;
            let out = run_workload(&tb, Rc::clone(&w) as Rc<dyn Workload>, &cfg).await;
            let metrics = out.metrics.expect("ring mode records metrics");
            let cached = metrics
                .counters
                .iter()
                .find(|(k, _)| *k == "cache.bytes_cached")
                .map_or(0, |(_, v)| *v);
            let total = w.file_size() * cfg.files as u64;
            assert!(cached > 0, "cache must absorb extents before filling");
            assert!(
                cached < total,
                "cache must degrade mid-job: cached {cached} of {total}"
            );
        });
    }

    #[test]
    fn breakdown_contains_shuffle_and_write_phases() {
        run(async {
            let w = Rc::new(CollPerf::tiny([2, 2, 1]));
            let tb = TestbedSpec::small(w.procs(), 2).build();
            let hints = Info::from_pairs([("cb_buffer_size", "2048"), ("striping_unit", "4096")]);
            let out = run_workload(&tb, w, &quick_cfg(hints, "/gfs/bd", 1)).await;
            use e10_romio::Phase;
            assert!(out.breakdown.mean(Phase::ShuffleAlltoall) > 0.0);
            assert!(out.breakdown.mean(Phase::Write) > 0.0);
            assert!(out.breakdown.mean(Phase::PostWrite) > 0.0);
        });
    }
}
