//! coll_perf: the collective-I/O benchmark distributed with MPICH.
//!
//! Every process owns one block of a three-dimensional array
//! distributed over a `gx × gy × gz` process grid; the file stores the
//! array in C order, so each process's block appears as a strided
//! pattern of `L²` runs of `L × chunk` bytes (the paper's coll_perf
//! configuration: one 64 MB block per process).
//!
//! **Granularity substitution** (documented in DESIGN.md): the real
//! coll_perf writes 8-byte elements, giving runs of a few KB; we use a
//! configurable `chunk` (default 128 KiB) as the element size so a full
//! 512-process, 32 GB run stays tractable in the simulator while every
//! collective-buffer window still receives interleaved pieces from
//! many processes — the property that drives two-phase behaviour.

use e10_mpisim::{FileView, FlatType};

use crate::{Workload, WorkloadSpec};

/// coll_perf parameters.
#[derive(Debug, Clone)]
pub struct CollPerf {
    /// Process grid (gx × gy × gz must equal the number of ranks).
    pub grid: [u64; 3],
    /// Local block side, in chunks (block = side³ chunks).
    pub side: u64,
    /// Bytes per chunk ("element" granularity).
    pub chunk: u64,
}

impl CollPerf {
    /// The paper's configuration for 512 ranks: 8×8×8 grid, 64 MB
    /// blocks (8³ chunks of 128 KiB), 32 GB file.
    pub fn paper_512() -> Self {
        CollPerf {
            grid: [8, 8, 8],
            side: 8,
            chunk: 128 << 10,
        }
    }

    /// A miniature configuration for tests.
    pub fn tiny(grid: [u64; 3]) -> Self {
        CollPerf {
            grid,
            side: 2,
            chunk: 1 << 10,
        }
    }

    /// A near-cubic process grid with `gx × gy × gz = nprocs`
    /// (`MPI_Dims_create` for three dimensions): repeatedly peel the
    /// smallest factor that keeps the remaining product splittable.
    pub fn grid_for(nprocs: usize) -> [u64; 3] {
        let mut grid = [1u64; 3];
        let mut rest = nprocs.max(1) as u64;
        for (slot, g) in grid.iter_mut().enumerate() {
            let dims_left = (3 - slot) as u32;
            // The smallest divisor of `rest` that is at least its
            // dims_left-th root keeps the remainder near-cubic.
            let mut pick = rest;
            let mut d = 1;
            while d * d <= rest {
                if rest.is_multiple_of(d) {
                    for cand in [rest / d, d] {
                        let root_ok = cand.pow(dims_left) >= rest;
                        if root_ok && cand < pick {
                            pick = cand;
                        }
                    }
                }
                d += 1;
            }
            *g = pick;
            rest /= pick;
        }
        grid.sort_unstable();
        grid
    }

    fn gsizes(&self) -> [u64; 3] {
        [
            self.grid[2] * self.side,
            self.grid[1] * self.side,
            self.grid[0] * self.side,
        ]
    }
}

impl WorkloadSpec for CollPerf {
    fn paper() -> Self {
        CollPerf::paper_512()
    }

    fn quick(nprocs: usize) -> Self {
        CollPerf {
            grid: CollPerf::grid_for(nprocs),
            side: 4,
            chunk: 64 << 10, // 4 MB per rank at side 4
        }
    }

    fn tiny_for(nprocs: usize) -> Self {
        CollPerf::tiny(CollPerf::grid_for(nprocs))
    }
}

impl Workload for CollPerf {
    fn name(&self) -> &'static str {
        "coll_perf"
    }

    fn procs(&self) -> usize {
        (self.grid[0] * self.grid[1] * self.grid[2]) as usize
    }

    fn file_size(&self) -> u64 {
        self.procs() as u64 * self.side.pow(3) * self.chunk
    }

    fn writes(&self, rank: usize) -> Vec<FileView> {
        let [gx, gy, _gz] = self.grid;
        let r = rank as u64;
        // Rank decomposition: x fastest (matches MPI_Dims_create order
        // used by coll_perf's darray).
        let rx = r % gx;
        let ry = (r / gx) % gy;
        let rz = r / (gx * gy);
        let l = self.side;
        let flat = FlatType::subarray(
            &self.gsizes(),
            &[l, l, l],
            &[rz * l, ry * l, rx * l],
            self.chunk,
        );
        vec![FileView::new(&flat, 0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_32gb_64mb_blocks() {
        let w = CollPerf::paper_512();
        assert_eq!(w.procs(), 512);
        assert_eq!(w.file_size(), 32 << 30);
        let per_proc: u64 = w.writes(0).iter().map(|v| v.total_bytes()).sum();
        assert_eq!(per_proc, 64 << 20);
    }

    #[test]
    fn views_tile_the_file_exactly() {
        let w = CollPerf::tiny([2, 2, 2]);
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for r in 0..w.procs() {
            for v in w.writes(r) {
                for p in v.pieces() {
                    runs.push((p.file_off, p.len));
                }
            }
        }
        runs.sort_unstable();
        let mut pos = 0;
        for (off, len) in runs {
            assert_eq!(off, pos, "gap or overlap at {off}");
            pos = off + len;
        }
        assert_eq!(pos, w.file_size());
    }

    #[test]
    fn pattern_is_strided_and_interleaved() {
        let w = CollPerf::tiny([2, 1, 1]);
        let v0 = &w.writes(0)[0];
        let v1 = &w.writes(1)[0];
        // Multiple non-contiguous runs per rank.
        assert!(v0.pieces().len() > 1);
        // Rank 1's range starts before rank 0 ends: interleaved.
        let (s1, _) = v1.file_range();
        let (_, e0) = v0.file_range();
        assert!(s1 < e0, "blocks along x must interleave in the file");
    }
}
