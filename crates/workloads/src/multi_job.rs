//! Concurrent multi-job harness: N independent jobs time-share the
//! node-local cache devices of the same compute nodes.
//!
//! Each job is a separate "application": its ranks split off their own
//! communicator, run the modified Fig. 3 workflow (deferred close, a
//! compute delay between I/O phases) against its own set of global
//! files, and start `stagger` after the previous job — the arrival
//! pattern of a batch scheduler backfilling a shared node. All jobs
//! write through the *same* per-node cache, so the per-node
//! [`e10_romio::CacheArbiter`] decides, per write, whether a job's
//! extent is admitted, refused (written through this once) or whether
//! the job's reservation is exhausted (degrade to write-through for
//! good), and evicts fully-synced extents of idle jobs under watermark
//! pressure.
//!
//! The harness exists to demonstrate — and regression-test — the
//! contention behaviour: with a cache sized for ~1.5 jobs and 4 jobs
//! arriving staggered, every job must still complete with byte-verified
//! output, at least one job must degrade, and at least one eviction
//! must fire. Counters come from the structured-trace metrics
//! registry, so the same figures are available to the `multi_job`
//! bench binary.

use std::rc::Rc;

use e10_mpisim::{FileView, FlatType, Info};
use e10_romio::{
    write_at_all, AdioFile, CacheMode, DataSpec, FlushFlag, IoCtx, RomioHints, TestbedSpec,
};
use e10_simcore::trace::{install_with_metrics, MetricsRegistry, MetricsSnapshot, RingSink};
use e10_simcore::{now, sleep, SimDuration};

/// Shape of one multi-job run. Plain data (`Clone + Send`) so the
/// bench binary can build specs inside worker-pool job closures.
#[derive(Debug, Clone)]
pub struct MultiJobSpec {
    /// Number of concurrent jobs.
    pub jobs: usize,
    /// Ranks per job. Job membership is `rank % jobs`, so with
    /// block-mapped nodes every job spans every node.
    pub procs_per_job: usize,
    /// Compute nodes shared by all jobs.
    pub nodes: usize,
    /// Files each job writes (Fig. 3 phases; close is deferred).
    pub files_per_job: usize,
    /// Bytes per file; must divide evenly by `procs_per_job`.
    pub file_bytes: u64,
    /// Per-node cache device capacity in bytes.
    pub capacity: u64,
    /// `e10_cache_hiwater` percentage (0 disables arbitration).
    pub hiwater: u64,
    /// `e10_cache_lowater` percentage.
    pub lowater: u64,
    /// Job `j` starts at `j * stagger`.
    pub stagger: SimDuration,
    /// Compute delay between a job's I/O phases.
    pub compute_delay: SimDuration,
    /// `cb_buffer_size` hint for every job.
    pub cb_buffer_size: u64,
    /// Generator seed of job `j`, file `k` is `seed_base + 100*j + k`.
    pub seed_base: u64,
}

impl MultiJobSpec {
    /// The contention demo of the acceptance criteria: 4 jobs of 4
    /// ranks share 2 nodes whose cache holds ~1.5 jobs' staged bytes.
    /// Job 0 arrives first, stages and syncs its first file alone;
    /// jobs 1–3 arrive staggered, shrink everyone's reservation (so at
    /// least one exhausts it and degrades to write-through) and push
    /// occupancy over the high watermark (so job 0's synced extents
    /// are evicted).
    pub fn contended() -> Self {
        MultiJobSpec {
            jobs: 4,
            procs_per_job: 4,
            nodes: 2,
            files_per_job: 2,
            file_bytes: 2 << 20,
            capacity: 3 << 19, // 1.5 MiB: ~1.5 jobs' per-node share
            hiwater: 80,
            lowater: 50,
            stagger: SimDuration::from_millis(150),
            compute_delay: SimDuration::from_millis(250),
            cb_buffer_size: 256 << 10,
            seed_base: 9000,
        }
    }

    /// Same shape with the cache sized generously (no contention):
    /// the control arm of the bench binary.
    pub fn uncontended() -> Self {
        let mut s = Self::contended();
        s.capacity = 64 << 20;
        s
    }

    /// A single job on the contended node shape: the baseline arm.
    pub fn single() -> Self {
        let mut s = Self::contended();
        s.jobs = 1;
        s
    }

    /// Total MPI ranks across all jobs.
    pub fn total_procs(&self) -> usize {
        self.jobs * self.procs_per_job
    }

    /// Global-file path of job `job`, file `k`. The basename
    /// (`job<j>.<k>`) makes `job<j>` the arbiter's job family.
    pub fn path(&self, job: usize, k: usize) -> String {
        format!("/gfs/mj/job{job}.{k}")
    }

    /// Generator seed of job `job`, file `k`.
    pub fn seed(&self, job: usize, k: usize) -> u64 {
        self.seed_base + 100 * job as u64 + k as u64
    }

    /// MPI-IO hints every job opens its files with, built through the
    /// typed builder so watermark validation applies.
    pub fn hints(&self) -> Info {
        let mut b = RomioHints::builder()
            .e10_cache(CacheMode::Enable)
            .e10_cache_flush_flag(FlushFlag::FlushImmediate)
            .e10_cache_discard_flag(true)
            .cb_buffer_size(self.cb_buffer_size);
        if self.hiwater > 0 {
            b = b
                .e10_cache_hiwater(self.hiwater)
                .e10_cache_lowater(self.lowater);
        }
        b.build().expect("multi-job hints must validate").to_info()
    }
}

/// One job's result.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// Job index.
    pub job: usize,
    /// Bytes the job wrote across its files.
    pub bytes: u64,
    /// Virtual seconds from the job's (staggered) start to its final
    /// close, measured on the job's rank 0.
    pub secs: f64,
    /// Decimal GB/s over that interval.
    pub gb_s: f64,
}

/// Result of a whole multi-job run. Every global file has already
/// been byte-verified against its generator before this is returned.
#[derive(Debug, Clone)]
pub struct MultiJobOutcome {
    /// Per-job figures, indexed by job.
    pub jobs: Vec<JobOutcome>,
    /// Virtual seconds from sim start to the last job's completion.
    pub wall_secs: f64,
    /// Bytes admitted into caches (`cache.admit`).
    pub admitted: u64,
    /// Bytes refused once and written through (`cache.admit_refused`).
    pub refused: u64,
    /// Bytes punched under watermark pressure (`cache.evict_pressure`).
    pub evicted: u64,
    /// Jobs that exhausted their reservation (`cache.degrade`).
    pub degrades: u64,
    /// Bytes flush-metered by the fair scheduler (`flush.fair_share`).
    pub fair_grants: u64,
    /// Bytes staged into cache files (`cache.bytes_cached`).
    pub bytes_cached: u64,
    /// Full counter snapshot for anything else a caller wants.
    pub metrics: MetricsSnapshot,
}

fn counter(m: &MetricsSnapshot, name: &str) -> u64 {
    m.counters
        .iter()
        .find(|(k, _)| *k == name)
        .map_or(0, |(_, v)| *v)
}

/// Run the multi-job workload in its own simulation and return the
/// contention figures. Panics if any job's output fails verification.
pub fn run_multi_job(spec: &MultiJobSpec) -> MultiJobOutcome {
    assert!(spec.jobs >= 1, "need at least one job");
    assert_eq!(
        spec.file_bytes % spec.procs_per_job as u64,
        0,
        "file_bytes must divide evenly across a job's ranks"
    );
    let spec = spec.clone();
    e10_simcore::run(async move {
        let mut tspec = TestbedSpec::small(spec.total_procs(), spec.nodes);
        tspec.localfs.capacity = spec.capacity;
        let tb = tspec.build();

        let metrics = Rc::new(MetricsRegistry::new());
        let sink = Rc::new(RingSink::new(1 << 16));
        let guard = install_with_metrics(sink, Rc::clone(&metrics));

        let pfs = Rc::clone(&tb.pfs);
        let localfs = Rc::clone(&tb.localfs);
        let nvmfs = Rc::clone(&tb.nvmfs);
        let sp = spec.clone();
        let per_rank = tb
            .world
            .run_ranks(move |comm| {
                let pfs = Rc::clone(&pfs);
                let localfs = Rc::clone(&localfs);
                let nvmfs = Rc::clone(&nvmfs);
                let sp = sp.clone();
                async move {
                    let world_rank = comm.rank();
                    let job = world_rank % sp.jobs;
                    // Interleaved colouring + block-mapped nodes means
                    // every job has ranks (and aggregators) on every
                    // node — the jobs genuinely share cache devices.
                    let sub = comm.split(job as u32, world_rank as u64).await;
                    let ctx = IoCtx {
                        comm: sub,
                        pfs,
                        localfs,
                        nvmfs,
                    };
                    sleep(sp.stagger * job as u64).await;
                    let t0 = now();
                    let hints = sp.hints();
                    let block = sp.file_bytes / sp.procs_per_job as u64;
                    let view =
                        FileView::new(&FlatType::contiguous(block), ctx.comm.rank() as u64 * block);
                    let mut bytes = 0u64;
                    let mut prev: Option<AdioFile> = None;
                    for k in 0..sp.files_per_job {
                        // Fig. 3: close file k-1 at the start of phase
                        // k, so its sync hid behind the compute delay
                        // — and its extents stay cache-resident (and
                        // evictable) through the contention window.
                        if let Some(f) = prev.take() {
                            f.close().await;
                        }
                        ctx.comm.barrier().await;
                        let path = sp.path(job, k);
                        let fd = AdioFile::open(&ctx, &path, &hints, true)
                            .await
                            .expect("collective open failed");
                        let r = write_at_all(
                            &fd,
                            &view,
                            &DataSpec::FileGen {
                                seed: sp.seed(job, k),
                            },
                        )
                        .await;
                        assert_eq!(r.error_code, 0, "collective write failed");
                        bytes += r.bytes;
                        if k + 1 < sp.files_per_job {
                            sleep(sp.compute_delay).await;
                        }
                        prev = Some(fd);
                    }
                    if let Some(f) = prev.take() {
                        f.close().await;
                    }
                    (job, bytes, now().since(t0).as_secs_f64())
                }
            })
            .await;

        // Every job's every file must be byte-identical to its
        // generator — contention may change *where* bytes travelled,
        // never what arrived.
        for job in 0..spec.jobs {
            for k in 0..spec.files_per_job {
                let path = spec.path(job, k);
                let ext = tb
                    .pfs
                    .file_extents(&path)
                    .unwrap_or_else(|| panic!("file {path} missing after run"));
                ext.verify_gen(spec.seed(job, k), 0, spec.file_bytes)
                    .unwrap_or_else(|e| panic!("verification of {path} failed: {e}"));
            }
        }

        let mut jobs: Vec<JobOutcome> = (0..spec.jobs)
            .map(|j| JobOutcome {
                job: j,
                bytes: 0,
                secs: 0.0,
                gb_s: 0.0,
            })
            .collect();
        for &(job, bytes, secs) in &per_rank {
            let o = &mut jobs[job];
            o.bytes += bytes;
            // Ranks of a job are barrier-aligned; keep the slowest.
            if secs > o.secs {
                o.secs = secs;
            }
        }
        for o in &mut jobs {
            o.gb_s = if o.secs > 0.0 {
                o.bytes as f64 / o.secs / 1e9
            } else {
                0.0
            };
        }

        drop(guard);
        let snap = metrics.snapshot();
        MultiJobOutcome {
            jobs,
            wall_secs: now().as_secs_f64(),
            admitted: counter(&snap, "cache.admit"),
            refused: counter(&snap, "cache.admit_refused"),
            evicted: counter(&snap, "cache.evict_pressure"),
            degrades: counter(&snap, "cache.degrade"),
            fair_grants: counter(&snap, "flush.fair_share"),
            bytes_cached: counter(&snap, "cache.bytes_cached"),
            metrics: snap,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_demo_degrades_and_evicts() {
        // The acceptance scenario: 4 jobs, 2 nodes, cache sized for
        // ~1.5 jobs. run_multi_job byte-verifies every file itself.
        let out = run_multi_job(&MultiJobSpec::contended());
        assert_eq!(out.jobs.len(), 4);
        for o in &out.jobs {
            assert_eq!(o.bytes, 2 * (2 << 20), "job {} short", o.job);
            assert!(o.secs > 0.0 && o.gb_s > 0.0);
        }
        assert!(
            out.degrades >= 1,
            "at least one job must exhaust its reservation: {out:?}"
        );
        assert!(
            out.evicted > 0,
            "watermark pressure must evict synced extents: {out:?}"
        );
        assert!(out.admitted > 0 && out.bytes_cached > 0);
    }

    #[test]
    fn single_job_on_same_nodes_is_contention_free() {
        let out = run_multi_job(&MultiJobSpec::single());
        assert_eq!(out.jobs.len(), 1);
        assert_eq!(out.degrades, 0, "{out:?}");
        assert_eq!(out.refused, 0, "{out:?}");
        assert_eq!(out.evicted, 0, "{out:?}");
        assert!(out.admitted > 0);
    }

    #[test]
    fn uncontended_cache_admits_everything() {
        let out = run_multi_job(&MultiJobSpec::uncontended());
        assert_eq!(out.degrades, 0, "{out:?}");
        assert_eq!(out.evicted, 0, "{out:?}");
        // All four jobs' staged bytes fit: admitted covers every write.
        assert!(out.admitted >= out.bytes_cached);
    }

    #[test]
    fn multi_job_runs_are_bit_deterministic() {
        let a = run_multi_job(&MultiJobSpec::contended());
        let b = run_multi_job(&MultiJobSpec::contended());
        assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        assert_eq!(
            (a.admitted, a.refused, a.evicted, a.degrades, a.fair_grants),
            (b.admitted, b.refused, b.evicted, b.degrades, b.fair_grants)
        );
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.secs.to_bits(), y.secs.to_bits());
            assert_eq!(x.bytes, y.bytes);
        }
    }
}
