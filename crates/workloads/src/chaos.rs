//! Chaos-soak harness: long randomized, seeded fault schedules against
//! a fault-free oracle.
//!
//! Each soak case replays one of the paper's write kernels twice on
//! identical testbeds: once fault-free (the **oracle**) and once under
//! a [`random_plan`] of corruption/stall/RPC/device-failure faults —
//! which since the degraded-mode work may include a permanent
//! [`FaultSpec::DeviceFail`], a [`FaultSpec::SyncThreadKill`] and a
//! mid-run [`FaultSpec::NodeCrash`] — drawn from the case seed. The
//! gold invariant is then checked structurally:
//!
//! > every byte the run **acknowledged** reads back correct, and no
//! > divergence goes unreported. For crash-free plans that means the
//! > final global file is byte-identical to the oracle's **or** a
//! > typed error was surfaced; for crash-bearing plans (where dead
//! > ranks legitimately never wrote some of their pieces) every
//! > collective write that returned success — on survivors *and* on
//! > victims before they died — must verify byte-for-byte after
//! > survivor completion and journal recovery of the crashed nodes.
//!
//! A run that diverges *silently* — acked bytes wrong and nobody was
//! told — is the one outcome the integrity pipeline must make
//! impossible; [`ChaosVerdict::Diverged`] reports it, and
//! [`shrink_plan`] bisects the failing schedule down to a minimal set
//! of fault specs that still reproduces the divergence, so a soak
//! failure arrives as a small deterministic repro instead of a 5-spec
//! haystack.
//!
//! Everything is seed-deterministic: the same [`ChaosCase`] produces
//! bit-identical verdicts regardless of how many soak jobs run in
//! parallel (each case builds its own testbed on its own thread).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use e10_faultsim::{always, injected_count, DeviceClass, FaultPlan, FaultSchedule, FaultSpec};
use e10_mpisim::Info;
use e10_romio::{
    write_at_all, AdioFile, CacheClass, CacheConfig, CacheLayer, DataSpec, IoCtx, RecoverError,
    RomioHints, Testbed, TestbedSpec, TwoPhaseAlgo,
};
use e10_simcore::trace;
use e10_simcore::{
    kill_group, new_group, now, sleep, spawn, spawn_in_group, Flag, SimDuration, SimRng, SimTime,
};

use crate::{CollPerf, FlashIo, Ior, Workload};

/// Which write kernel a chaos case replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// IOR segmented collective pattern, 4 ranks.
    Ior,
    /// MPICH coll_perf 3-D block pattern, 8 ranks.
    CollPerf,
    /// FLASH checkpoint kernel, 4 ranks.
    FlashIo,
}

impl ChaosWorkload {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosWorkload::Ior => "ior",
            ChaosWorkload::CollPerf => "collperf",
            ChaosWorkload::FlashIo => "flashio",
        }
    }

    fn build(&self) -> Rc<dyn Workload> {
        match self {
            ChaosWorkload::Ior => Rc::new(Ior::tiny(4)),
            ChaosWorkload::CollPerf => Rc::new(CollPerf::tiny([2, 2, 2])),
            ChaosWorkload::FlashIo => Rc::new(FlashIo::tiny(4)),
        }
    }
}

/// One soak case: a kernel, a cluster shape and the seed that drives
/// both the fault schedule and the generated data.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCase {
    /// The kernel to replay.
    pub workload: ChaosWorkload,
    /// Compute nodes in the testbed.
    pub nodes: usize,
    /// Files written back-to-back (flush rounds between which the
    /// scrubber gets a chance to run).
    pub files: usize,
    /// Seed for [`random_plan`] and the data generator.
    pub seed: u64,
    /// `e10_integrity_scrub_ms` hint for the run (0 disables).
    pub scrub_ms: u64,
    /// `e10_integrity` hint. Soaks run with it on; turning it off
    /// exists so the harness can prove to itself that the oracle
    /// *does* flag silent corruption when nothing defends against it.
    pub integrity: bool,
    /// `e10_cache_class` hint: which device tier stages the cache.
    /// Soaking every class runs the scrub/verify/repair ladder over
    /// the byte-granular NVM front and the hybrid split as well as the
    /// default SSD extent path.
    pub cache_class: CacheClass,
    /// `e10_two_phase` hint: which collective-write algorithm runs.
    pub two_phase: TwoPhaseAlgo,
    /// `e10_coll_timeout` (milliseconds) for the *faulted* run. 0 means
    /// automatic: crash-bearing plans enable the crash-tolerant
    /// collective engine with a margin-safe 40 ms, crash-free plans
    /// keep the stock dispatch. Non-zero forces the tolerant engine
    /// even without crashes (the `degraded` bench uses this to pin
    /// tolerant-idle bytes == stock bytes).
    pub coll_timeout_ms: u64,
}

impl ChaosCase {
    /// Default soak shape for `seed`: IOR on 2 nodes, two files, with
    /// integrity and the scrubber on.
    pub fn new(seed: u64) -> ChaosCase {
        ChaosCase {
            workload: ChaosWorkload::Ior,
            nodes: 2,
            files: 2,
            seed,
            scrub_ms: 20,
            integrity: true,
            cache_class: CacheClass::Ssd,
            two_phase: TwoPhaseAlgo::Extended,
            coll_timeout_ms: 0,
        }
    }

    /// The same soak shape staged on `class` instead of the SSD.
    pub fn with_class(seed: u64, class: CacheClass) -> ChaosCase {
        let mut c = ChaosCase::new(seed);
        c.cache_class = class;
        c
    }
}

/// The oracle-invariant verdict of one soak run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Every acked byte verified and no errors reported. For
    /// crash-free plans the final bytes are identical to the oracle's
    /// (any injected corruption was repaired in place); for
    /// crash-bearing plans every acknowledged collective write reads
    /// back correct after recovery.
    Clean,
    /// A typed error reached at least one rank — the pipeline refused
    /// to pretend the run was healthy (bytes may or may not match).
    Detected,
    /// **Silent corruption**: acked bytes differ from what was written
    /// (or, crash-free, the file differs from the oracle) and no rank
    /// was told. This is the failure the soak exists to catch.
    Diverged,
}

impl ChaosVerdict {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosVerdict::Clean => "clean",
            ChaosVerdict::Detected => "detected",
            ChaosVerdict::Diverged => "diverged",
        }
    }
}

/// What one soak case did and found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The case seed.
    pub seed: u64,
    /// Kernel name.
    pub workload: &'static str,
    /// The verdict against the gold invariant.
    pub verdict: ChaosVerdict,
    /// Fault specs in the schedule.
    pub plan_specs: usize,
    /// Faults actually injected during the faulted run.
    pub injected: u64,
    /// Typed errors surfaced per rank, as `(rank, message)`.
    pub rank_errors: Vec<(usize, String)>,
    /// File indices whose final bytes differ from the oracle
    /// (crash-free plans only; with crashes the whole-file comparison
    /// is meaningless since dead ranks never wrote some pieces).
    pub mismatched_files: Vec<usize>,
    /// Acked-but-wrong regions (crash-bearing plans): collective
    /// writes that returned success yet fail byte verification after
    /// recovery. Non-empty exactly when a crash run diverges.
    pub acked_violations: Vec<String>,
    /// Per-file structural digests of the faulted run's final global
    /// files (`None` = file missing) — the byte-identity anchor the
    /// `degraded` bench compares across tolerance settings.
    pub file_digests: Vec<Option<u64>>,
    /// On divergence: the kind names of the shrunken minimal schedule
    /// that still reproduces it.
    pub minimal: Option<Vec<String>>,
}

/// `SimTime` at `ms` milliseconds after the epoch.
fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Draw a randomized fault schedule from `seed`: 1–4 specs over the
/// corruption/stall/RPC/device-failure kinds, plus (for roughly a
/// quarter of the seeds) one mid-run node crash — executed by the
/// soak's own degraded-mode runner, which turns on the crash-tolerant
/// collective engine, recovers the crashed node's cache journals and
/// verifies every acknowledged byte. Probabilities are bounded so
/// retries and retransmissions *usually* absorb the faults, which is
/// exactly the regime where silent corruption would hide.
pub fn random_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut rng = SimRng::stream(seed, 990_000);
    let count = 1 + rng.below(4);
    let mut plan = FaultPlan::new(seed);
    for _ in 0..count {
        let node = rng.below(nodes.max(1) as u64) as usize;
        let prob = 0.05 + 0.5 * rng.uniform();
        plan = match rng.below(8) {
            0 => plan.cache_bitflip(node, always(), prob),
            1 => plan.cache_torn(node, always(), prob, 512 << rng.below(3)),
            2 => plan.link_corrupt(None, None, always(), 0.05 + 0.25 * rng.uniform()),
            3 => plan.pfs_corrupt(always(), prob),
            4 => plan.ssd_stall(node, always(), prob, SimDuration::from_micros(200)),
            5 => plan.rpc_fail(None, always(), 0.3 * rng.uniform()),
            6 => {
                let class = if rng.below(2) == 0 {
                    DeviceClass::Ssd
                } else {
                    DeviceClass::Nvm
                };
                plan.device_fail(node, class, at_ms(rng.below(80)))
            }
            _ => plan.sync_thread_kill(node, at_ms(rng.below(80))),
        };
    }
    // At most one mid-run crash per plan. The runner gates the cut on
    // every rank having opened the last file (a collective open missing
    // the dead ranks could never complete), so it lands inside the last
    // file's write/flush window — mid-collective included.
    if rng.below(4) == 0 {
        let node = rng.below(nodes.max(1) as u64) as usize;
        plan = plan.node_crash(node, at_ms(1 + rng.below(60)));
    }
    plan
}

/// Kind name of one fault spec, for reports.
pub fn spec_kind(spec: &FaultSpec) -> &'static str {
    match spec {
        FaultSpec::NodeCrash { .. } => "node_crash",
        FaultSpec::SsdStall { .. } => "ssd_stall",
        FaultSpec::LinkFault { .. } => "link_fault",
        FaultSpec::RpcFail { .. } => "rpc_fail",
        FaultSpec::CacheBitFlip { .. } => "cache_bitflip",
        FaultSpec::CacheTorn { .. } => "cache_torn",
        FaultSpec::LinkCorrupt { .. } => "link_corrupt",
        FaultSpec::PfsCorrupt { .. } => "pfs_corrupt",
        FaultSpec::DeviceFail { .. } => "device_fail",
        FaultSpec::SyncThreadKill { .. } => "sync_thread_kill",
    }
}

fn chaos_hints(case: &ChaosCase, timeout_ms: u64) -> Info {
    let h = Info::from_pairs([
        ("cb_buffer_size", "4096"),
        ("striping_unit", "8192"),
        ("e10_cache", "enable"),
        ("e10_cache_journal", "enable"),
    ]);
    h.set(
        "e10_integrity",
        if case.integrity { "enable" } else { "disable" },
    );
    h.set("e10_integrity_scrub_ms", &case.scrub_ms.to_string());
    h.set("e10_cache_class", case.cache_class.as_str());
    h.set("e10_two_phase", case.two_phase.as_str());
    if timeout_ms > 0 {
        h.set("e10_coll_timeout", &timeout_ms.to_string());
    }
    if case.cache_class == CacheClass::Hybrid {
        // A tight front budget forces every soak run to straddle both
        // tiers (the 4 KiB collective buffers would otherwise all fit
        // on the NVM side).
        h.set("e10_nvm_capacity", "8K");
    }
    h
}

/// Per-file digests plus per-rank error strings of one run. `None`
/// digest means the file is missing entirely.
struct RunDigest {
    digests: Vec<Option<u64>>,
    errors: Vec<(usize, String)>,
    injected: u64,
    /// The plan declared (and the runner executed) a node crash.
    crashed: bool,
    /// Acked collective writes failing byte verification (crash runs).
    acked_bad: Vec<String>,
}

/// The soak's own non-panicking mini-driver: unlike
/// [`crate::run_workload`] it must survive corrupted final state (the
/// whole point is to *observe* divergence, not die on it), so nothing
/// here asserts on verification.
///
/// Crash-bearing plans run degraded-mode, mirroring
/// [`crate::run_crash_recovery`]: victims live in a crash group, the
/// cut powers the node's local mounts off *first* (torn in-flight
/// writes must survive exactly as a real power loss leaves them) and
/// kills the task tree second, survivors finish on the crash-tolerant
/// collective path (`e10_coll_timeout`) and drain with the
/// non-collective `file_sync` (a `close()` barrier would hang on the
/// dead ranks), and the crashed ranks' caches are recovered from their
/// manifest journals before verification.
async fn run_once(tb: &Testbed, case: &ChaosCase, plan: Option<FaultPlan>) -> RunDigest {
    let workload = case.workload.build();
    let procs = workload.procs();
    // Deduped crash list, one cut per node, in firing order.
    let mut crashes: Vec<(usize, SimTime)> = Vec::new();
    for (node, at) in plan.as_ref().map_or(Vec::new(), |p| p.crashes()) {
        if !crashes.iter().any(|&(n, _)| n == node) {
            crashes.push((node, at));
        }
    }
    crashes.sort_by_key(|&(node, at)| (at, node));
    let has_crash = !crashes.is_empty();
    let timeout_ms = if has_crash {
        case.coll_timeout_ms.max(40)
    } else {
        case.coll_timeout_ms
    };
    let hints = chaos_hints(case, timeout_ms);
    if workload.force_collective() && hints.get("romio_cb_write").is_none() {
        hints.set("romio_cb_write", "enable");
    }
    let _guard = plan.map(FaultSchedule::install);
    let files = case.files;
    let seed = case.seed;

    // Shared accumulators: victims record errors and acknowledged
    // writes right up to the instant they die, so the acked-byte
    // oracle judges exactly what the application was promised.
    let errors: Rc<RefCell<Vec<(usize, String)>>> = Rc::new(RefCell::new(Vec::new()));
    let acked: Rc<RefCell<Vec<(usize, usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    let opened_last = Rc::new(Cell::new(0usize));
    let all_open = Flag::new();
    let crash_gid = new_group();

    let mut survivor_handles = Vec::new();
    for rank in 0..procs {
        let ctx = IoCtx {
            comm: tb.world.comms[rank].clone(),
            pfs: Rc::clone(&tb.pfs),
            localfs: Rc::clone(&tb.localfs),
            nvmfs: Rc::clone(&tb.nvmfs),
        };
        let wl = Rc::clone(&workload);
        let hints = hints.clone();
        let errors = Rc::clone(&errors);
        let acked = Rc::clone(&acked);
        let opened_last = Rc::clone(&opened_last);
        let all_open = all_open.clone();
        let body = async move {
            let rank = ctx.comm.rank();
            let views = wl.writes(rank);
            for k in 0..files {
                let path = format!("/gfs/chaos.{}.{k}", seed);
                let opened = AdioFile::open(&ctx, &path, &hints, true).await;
                if k + 1 == files {
                    // Crash gate: count the last file's opens whether
                    // they succeeded or not — the killer must never
                    // wait on a rank that already failed past open.
                    opened_last.set(opened_last.get() + 1);
                    if opened_last.get() == procs {
                        all_open.set();
                    }
                }
                match opened {
                    Ok(fd) => {
                        for (vi, view) in views.iter().enumerate() {
                            let r = write_at_all(
                                &fd,
                                view,
                                &DataSpec::FileGen {
                                    seed: 1000 + seed + k as u64,
                                },
                            )
                            .await;
                            if r.error_code != 0 {
                                errors.borrow_mut().push((
                                    rank,
                                    match fd.take_io_error() {
                                        Some(e) => e.to_string(),
                                        None => format!("collective error code {}", r.error_code),
                                    },
                                ));
                            } else {
                                acked.borrow_mut().push((rank, k, vi));
                            }
                        }
                        // Idle gap before the flush: lets the
                        // background sync (and the scrubber between
                        // its rounds) touch staged extents.
                        sleep(SimDuration::from_millis(50)).await;
                        if has_crash {
                            // `close()` is collective; its barrier
                            // would hang on the dead ranks. Drain this
                            // rank alone.
                            fd.file_sync().await;
                        } else {
                            fd.close().await;
                        }
                        if let Some(e) = fd.take_io_error() {
                            errors.borrow_mut().push((rank, e.to_string()));
                        }
                    }
                    Err(e) => errors.borrow_mut().push((rank, e.to_string())),
                }
            }
        };
        if crashes
            .iter()
            .any(|&(n, _)| n == tb.world.comms[rank].node())
        {
            // Killed handles never complete; spawn and forget.
            #[allow(clippy::let_underscore_future)]
            let _ = spawn_in_group(crash_gid, body);
        } else {
            survivor_handles.push(spawn(body));
        }
    }

    // The killer: waits for the crash gate, then cuts power (power
    // first, kill second — killing first would run the in-flight write
    // guards and discard the torn prefixes power loss must keep) and
    // destroys the crashed nodes' task trees.
    let killer = has_crash.then(|| {
        let localfs = Rc::clone(&tb.localfs);
        let nvmfs = Rc::clone(&tb.nvmfs);
        let crashes = crashes.clone();
        let all_open = all_open.clone();
        let class = case.cache_class;
        spawn(async move {
            all_open.wait().await;
            for &(node, at) in &crashes {
                if now() < at {
                    sleep(at.since(now())).await;
                }
                let mut tear_rng = SimRng::stream(seed, 910_000 + node as u64);
                localfs[node].power_loss(4096, &mut tear_rng);
                if class != CacheClass::Ssd {
                    // The NVM mount loses power with the node too;
                    // byte-granular in-flight writes tear at the
                    // cache-line flush unit.
                    let mut nvm_tear_rng = SimRng::stream(seed, 911_000 + node as u64);
                    nvmfs[node].power_loss(64, &mut nvm_tear_rng);
                }
                e10_faultsim::note_injected("node_crash", node);
            }
            kill_group(crash_gid);
        })
    });

    for h in survivor_handles {
        h.await;
    }
    if let Some(k) = killer {
        k.await;
    }

    // Journal recovery of every crashed rank's caches, per file: acked
    // bytes stranded on the dead nodes must reach the global file.
    // (This also recovers a dead *aggregator's* stage holding bytes
    // that surviving ranks were acked for.)
    if has_crash {
        let romio_hints = RomioHints::parse(&hints).expect("chaos hints parse");
        for &(node, _) in &crashes {
            for rank in (0..procs).filter(|&r| tb.world.comms[r].node() == node) {
                for k in 0..files {
                    let path = format!("/gfs/chaos.{}.{k}", seed);
                    let basename = path.rsplit('/').next().unwrap_or(&path);
                    let Ok(global) = tb.pfs.attach(&path) else {
                        continue;
                    };
                    let ccfg = CacheConfig::from_hints(&romio_hints, basename, rank, node);
                    let recovery = match romio_hints.e10_cache_class {
                        CacheClass::Ssd => {
                            CacheLayer::recover(tb.localfs[node].clone(), global, ccfg).await
                        }
                        CacheClass::Nvm => {
                            CacheLayer::recover(tb.nvmfs[node].clone(), global, ccfg).await
                        }
                        CacheClass::Hybrid => {
                            CacheLayer::recover_with_front(
                                tb.localfs[node].clone(),
                                Some(tb.nvmfs[node].clone()),
                                global,
                                ccfg,
                            )
                            .await
                        }
                    };
                    match recovery {
                        Ok((layer, _report)) => {
                            if let Err(e) = layer.close().await {
                                errors.borrow_mut().push((rank, e.to_string()));
                            }
                        }
                        // An empty cache with no journal is a rank
                        // that never staged anything for this file —
                        // benign. Stranded bytes are a detected loss.
                        Err(RecoverError::NoJournal { cached_bytes: 0 }) => {}
                        Err(e) => errors.borrow_mut().push((rank, e.to_string())),
                    }
                }
            }
        }
    }

    // The acked-byte oracle for crash runs: every collective write
    // that returned success must read back as the generator bytes it
    // wrote, piece by piece.
    let mut acked_bad = Vec::new();
    if has_crash {
        let exts: Vec<_> = (0..files)
            .map(|k| tb.pfs.file_extents(&format!("/gfs/chaos.{}.{k}", seed)))
            .collect();
        for &(rank, k, vi) in acked.borrow().iter() {
            let Some(ext) = &exts[k] else {
                acked_bad.push(format!("rank {rank} file {k}: global file missing"));
                continue;
            };
            let gen_seed = 1000 + seed + k as u64;
            for p in workload.writes(rank)[vi].pieces() {
                if let Err(e) = ext.verify_gen(gen_seed, p.file_off, p.len) {
                    acked_bad.push(format!(
                        "rank {rank} file {k} write {vi} [{}, +{}): {e}",
                        p.file_off, p.len
                    ));
                }
            }
        }
    }

    let file_bytes = workload.file_size();
    let digests = (0..files)
        .map(|k| {
            tb.pfs
                .file_extents(&format!("/gfs/chaos.{}.{k}", seed))
                .map(|ext| ext.digest(0, file_bytes))
        })
        .collect();
    let collected_errors = errors.borrow().clone();
    RunDigest {
        digests,
        errors: collected_errors,
        injected: injected_count(),
        crashed: has_crash,
        acked_bad,
    }
}

fn verdict_of(oracle: &RunDigest, faulted: &RunDigest) -> (ChaosVerdict, Vec<usize>) {
    if faulted.crashed {
        // Dead ranks legitimately never wrote some pieces, so the
        // whole-file comparison is meaningless under a crash: the
        // invariant is that every *acknowledged* write reads back.
        let verdict = if !faulted.acked_bad.is_empty() {
            ChaosVerdict::Diverged
        } else if !faulted.errors.is_empty() {
            ChaosVerdict::Detected
        } else {
            ChaosVerdict::Clean
        };
        return (verdict, Vec::new());
    }
    let mismatched: Vec<usize> = oracle
        .digests
        .iter()
        .zip(&faulted.digests)
        .enumerate()
        .filter_map(|(k, (o, f))| (o != f).then_some(k))
        .collect();
    let verdict = if !faulted.errors.is_empty() {
        ChaosVerdict::Detected
    } else if mismatched.is_empty() {
        ChaosVerdict::Clean
    } else {
        ChaosVerdict::Diverged
    };
    (verdict, mismatched)
}

/// Run one soak probe of `case` under an explicit `plan` (both the
/// oracle and the faulted run execute inside fresh simulations) and
/// judge it against the gold invariant. Does not shrink.
pub fn probe_with_plan(case: &ChaosCase, plan: &FaultPlan) -> ChaosReport {
    let oracle = {
        let case = *case;
        e10_simcore::run(async move {
            let tb = TestbedSpec::small(case.workload.build().procs(), case.nodes).build();
            run_once(&tb, &case, None).await
        })
    };
    let faulted = {
        let case = *case;
        let plan = plan.clone();
        e10_simcore::run(async move {
            let tb = TestbedSpec::small(case.workload.build().procs(), case.nodes).build();
            run_once(&tb, &case, Some(plan)).await
        })
    };
    let (verdict, mismatched_files) = verdict_of(&oracle, &faulted);
    trace::counter("chaos.runs", 1);
    match verdict {
        ChaosVerdict::Clean => trace::counter("chaos.clean", 1),
        ChaosVerdict::Detected => trace::counter("chaos.detected", 1),
        ChaosVerdict::Diverged => trace::counter("chaos.diverged", 1),
    }
    ChaosReport {
        seed: case.seed,
        workload: case.workload.name(),
        verdict,
        plan_specs: plan.specs.len(),
        injected: faulted.injected,
        rank_errors: faulted.errors,
        mismatched_files,
        acked_violations: faulted.acked_bad,
        file_digests: faulted.digests,
        minimal: None,
    }
}

/// Shrink a failing (diverging) schedule to a minimal fault set:
/// repeatedly drop one spec at a time, keeping any removal after which
/// the case still diverges, until no single removal reproduces — the
/// classic greedy delta-debug fix point. Each probe is a full
/// deterministic re-run, so the result is an exact repro recipe.
pub fn shrink_plan(case: &ChaosCase, plan: &FaultPlan) -> FaultPlan {
    let mut current = plan.clone();
    'outer: while current.specs.len() > 1 {
        for i in 0..current.specs.len() {
            let mut candidate = current.clone();
            candidate.specs.remove(i);
            if probe_with_plan(case, &candidate).verdict == ChaosVerdict::Diverged {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Run one complete soak case: draw [`random_plan`] from the case
/// seed, probe the gold invariant, and on divergence shrink the
/// schedule to its minimal failing form (recorded in
/// [`ChaosReport::minimal`]).
pub fn chaos_case(case: &ChaosCase) -> ChaosReport {
    let plan = random_plan(case.seed, case.nodes);
    let mut report = probe_with_plan(case, &plan);
    if report.verdict == ChaosVerdict::Diverged {
        let minimal = shrink_plan(case, &plan);
        report.minimal = Some(
            minimal
                .specs
                .iter()
                .map(|s| spec_kind(s).to_string())
                .collect(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seeded_and_may_carry_crashes() {
        let mut crash_seeds = 0;
        let mut degraded_specs = 0;
        for seed in 0..64u64 {
            let a = random_plan(seed, 2);
            let b = random_plan(seed, 2);
            assert_eq!(a.specs.len(), b.specs.len(), "seed {seed} not stable");
            assert!((1..=5).contains(&a.specs.len()));
            for (x, y) in a.specs.iter().zip(&b.specs) {
                assert_eq!(spec_kind(x), spec_kind(y), "seed {seed} kind drift");
            }
            crash_seeds += usize::from(!a.crashes().is_empty());
            degraded_specs += a
                .specs
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        FaultSpec::DeviceFail { .. } | FaultSpec::SyncThreadKill { .. }
                    )
                })
                .count();
        }
        // Survivability is part of the soak now: the generator must
        // exercise mid-run crashes and permanent device failures, not
        // avoid them (the old "soak plans must not declare crashes"
        // invariant predates degraded-mode support).
        assert!(crash_seeds > 0, "no seed drew a mid-run node crash");
        assert!(
            crash_seeds < 40,
            "crashes must stay a minority of plans: {crash_seeds}/64"
        );
        assert!(degraded_specs > 0, "no seed drew a device-failure spec");
    }

    #[test]
    fn a_crash_bearing_random_plan_still_passes_the_oracle() {
        // The survivability invariant that replaced the old crash-free
        // assertion: a randomly drawn plan that *does* declare a
        // mid-run crash must still complete and verify every acked
        // byte (Clean or Detected, never Diverged).
        let seed = (0..64u64)
            .find(|&s| !random_plan(s, 2).crashes().is_empty())
            .expect("some seed draws a crash");
        let report = chaos_case(&ChaosCase::new(seed));
        assert_ne!(
            report.verdict,
            ChaosVerdict::Diverged,
            "seed {seed}: acked bytes lost under a crash-bearing plan \
             (violations {:?}, minimal {:?})",
            report.acked_violations,
            report.minimal
        );
    }

    #[test]
    fn device_fail_plus_mid_run_crash_completes_and_verifies() {
        // The degraded-mode acceptance scenario: a permanent
        // cache-device failure on one node (Healthy → Draining →
        // Retired, write-through after) *plus* a mid-run crash of the
        // other node (crash-tolerant redo on the survivors + journal
        // recovery). The job must not abort and every acknowledged
        // byte must read back.
        let case = ChaosCase::new(991);
        let plan = FaultPlan::new(991)
            .device_fail(0, DeviceClass::Ssd, at_ms(2))
            .node_crash(1, at_ms(8));
        let report = probe_with_plan(&case, &plan);
        assert_ne!(
            report.verdict,
            ChaosVerdict::Diverged,
            "acked bytes lost: {:?}",
            report.acked_violations
        );
        assert!(report.injected > 0, "the device failure must fire");
        assert!(report.acked_violations.is_empty());
    }

    #[test]
    fn soak_holds_the_oracle_invariant_over_a_seed_range() {
        // The CI-grade slice of the soak: every seed must end Clean or
        // Detected — Diverged is the defect this harness exists for.
        for seed in 0..6u64 {
            let report = chaos_case(&ChaosCase::new(seed));
            assert_ne!(
                report.verdict,
                ChaosVerdict::Diverged,
                "seed {seed}: silent corruption (minimal repro {:?})",
                report.minimal
            );
        }
    }

    #[test]
    fn soak_holds_the_oracle_invariant_on_nvm_and_hybrid_tiers() {
        // One arm per cache class: the scrub/verify/repair ladder must
        // hold the gold invariant when staged bytes live on the
        // byte-granular NVM front and when they straddle both hybrid
        // tiers, not just on the SSD extent path.
        for class in [CacheClass::Nvm, CacheClass::Hybrid] {
            for seed in 0..3u64 {
                let report = chaos_case(&ChaosCase::with_class(seed, class));
                assert_ne!(
                    report.verdict,
                    ChaosVerdict::Diverged,
                    "class {:?} seed {seed}: silent corruption (minimal repro {:?})",
                    class,
                    report.minimal
                );
            }
        }
    }

    #[test]
    fn verdicts_are_deterministic_for_a_given_seed() {
        let a = chaos_case(&ChaosCase::new(3));
        let b = chaos_case(&ChaosCase::new(3));
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.mismatched_files, b.mismatched_files);
        assert_eq!(a.rank_errors, b.rank_errors);
        assert_eq!(a.file_digests, b.file_digests);
    }

    #[test]
    fn shrinker_reduces_a_diverging_schedule_to_its_culprit() {
        // A schedule whose only destructive spec is a guaranteed cache
        // bit-flip, padded with benign stalls. Run WITHOUT integrity it
        // must diverge (this validates the oracle itself), and the
        // shrinker must isolate the single corrupting spec.
        let mut case = ChaosCase {
            workload: ChaosWorkload::Ior,
            nodes: 2,
            files: 1,
            seed: 424_242,
            scrub_ms: 0,
            integrity: false,
            cache_class: CacheClass::Ssd,
            two_phase: TwoPhaseAlgo::Extended,
            coll_timeout_ms: 0,
        };
        let plan = FaultPlan::new(7)
            .ssd_stall(0, always(), 0.2, SimDuration::from_micros(100))
            .cache_bitflip(0, always(), 1.0)
            .ssd_stall(1, always(), 0.2, SimDuration::from_micros(100));
        let bare = probe_with_plan(&case, &plan);
        assert_eq!(
            bare.verdict,
            ChaosVerdict::Diverged,
            "without integrity the flip must slip through silently"
        );
        let minimal = shrink_plan(&case, &plan);
        assert_eq!(minimal.specs.len(), 1, "padding stalls must be shed");
        assert_eq!(spec_kind(&minimal.specs[0]), "cache_bitflip");
        // The same schedule with integrity ON must be caught.
        case.integrity = true;
        let caught = probe_with_plan(&case, &plan);
        assert_ne!(caught.verdict, ChaosVerdict::Diverged);
    }
}
