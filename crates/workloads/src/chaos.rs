//! Chaos-soak harness: long randomized, seeded fault schedules against
//! a fault-free oracle.
//!
//! Each soak case replays one of the paper's write kernels twice on
//! identical testbeds: once fault-free (the **oracle**) and once under
//! a [`random_plan`] of corruption/stall/RPC faults drawn from the
//! case seed. The gold invariant is then checked structurally:
//!
//! > the final global file is byte-identical to the oracle's, **or** a
//! > typed error was surfaced to the affected ranks.
//!
//! A run that diverges *silently* — bytes differ and nobody was told —
//! is the one outcome the integrity pipeline must make impossible;
//! [`ChaosVerdict::Diverged`] reports it, and [`shrink_plan`] bisects
//! the failing schedule down to a minimal set of fault specs that
//! still reproduces the divergence, so a soak failure arrives as a
//! small deterministic repro instead of a 4-spec haystack.
//!
//! Everything is seed-deterministic: the same [`ChaosCase`] produces
//! bit-identical verdicts regardless of how many soak jobs run in
//! parallel (each case builds its own testbed on its own thread).

use std::rc::Rc;

use e10_faultsim::{always, injected_count, FaultPlan, FaultSchedule, FaultSpec};
use e10_mpisim::Info;
use e10_romio::{write_at_all, AdioFile, CacheClass, DataSpec, IoCtx, Testbed, TestbedSpec};
use e10_simcore::trace;
use e10_simcore::{sleep, SimDuration, SimRng};

use crate::{CollPerf, FlashIo, Ior, Workload};

/// Which write kernel a chaos case replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// IOR segmented collective pattern, 4 ranks.
    Ior,
    /// MPICH coll_perf 3-D block pattern, 8 ranks.
    CollPerf,
    /// FLASH checkpoint kernel, 4 ranks.
    FlashIo,
}

impl ChaosWorkload {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosWorkload::Ior => "ior",
            ChaosWorkload::CollPerf => "collperf",
            ChaosWorkload::FlashIo => "flashio",
        }
    }

    fn build(&self) -> Rc<dyn Workload> {
        match self {
            ChaosWorkload::Ior => Rc::new(Ior::tiny(4)),
            ChaosWorkload::CollPerf => Rc::new(CollPerf::tiny([2, 2, 2])),
            ChaosWorkload::FlashIo => Rc::new(FlashIo::tiny(4)),
        }
    }
}

/// One soak case: a kernel, a cluster shape and the seed that drives
/// both the fault schedule and the generated data.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCase {
    /// The kernel to replay.
    pub workload: ChaosWorkload,
    /// Compute nodes in the testbed.
    pub nodes: usize,
    /// Files written back-to-back (flush rounds between which the
    /// scrubber gets a chance to run).
    pub files: usize,
    /// Seed for [`random_plan`] and the data generator.
    pub seed: u64,
    /// `e10_integrity_scrub_ms` hint for the run (0 disables).
    pub scrub_ms: u64,
    /// `e10_integrity` hint. Soaks run with it on; turning it off
    /// exists so the harness can prove to itself that the oracle
    /// *does* flag silent corruption when nothing defends against it.
    pub integrity: bool,
    /// `e10_cache_class` hint: which device tier stages the cache.
    /// Soaking every class runs the scrub/verify/repair ladder over
    /// the byte-granular NVM front and the hybrid split as well as the
    /// default SSD extent path.
    pub cache_class: CacheClass,
}

impl ChaosCase {
    /// Default soak shape for `seed`: IOR on 2 nodes, two files, with
    /// integrity and the scrubber on.
    pub fn new(seed: u64) -> ChaosCase {
        ChaosCase {
            workload: ChaosWorkload::Ior,
            nodes: 2,
            files: 2,
            seed,
            scrub_ms: 20,
            integrity: true,
            cache_class: CacheClass::Ssd,
        }
    }

    /// The same soak shape staged on `class` instead of the SSD.
    pub fn with_class(seed: u64, class: CacheClass) -> ChaosCase {
        let mut c = ChaosCase::new(seed);
        c.cache_class = class;
        c
    }
}

/// The oracle-invariant verdict of one soak run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// Final bytes identical to the oracle; no errors reported. Any
    /// injected corruption was repaired in place.
    Clean,
    /// A typed error reached at least one rank — the pipeline refused
    /// to pretend the run was healthy (bytes may or may not match).
    Detected,
    /// **Silent corruption**: the final bytes differ from the oracle
    /// and no rank was told. This is the failure the soak exists to
    /// catch.
    Diverged,
}

impl ChaosVerdict {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosVerdict::Clean => "clean",
            ChaosVerdict::Detected => "detected",
            ChaosVerdict::Diverged => "diverged",
        }
    }
}

/// What one soak case did and found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The case seed.
    pub seed: u64,
    /// Kernel name.
    pub workload: &'static str,
    /// The verdict against the gold invariant.
    pub verdict: ChaosVerdict,
    /// Fault specs in the schedule.
    pub plan_specs: usize,
    /// Faults actually injected during the faulted run.
    pub injected: u64,
    /// Typed errors surfaced per rank, as `(rank, message)`.
    pub rank_errors: Vec<(usize, String)>,
    /// File indices whose final bytes differ from the oracle.
    pub mismatched_files: Vec<usize>,
    /// On divergence: the kind names of the shrunken minimal schedule
    /// that still reproduces it.
    pub minimal: Option<Vec<String>>,
}

/// Draw a randomized fault schedule from `seed`: 1–4 specs over the
/// corruption/stall/RPC kinds (never node crashes — those need the
/// [`crate::crash`] harness). Probabilities are bounded so retries and
/// retransmissions *usually* absorb the faults, which is exactly the
/// regime where silent corruption would hide.
pub fn random_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut rng = SimRng::stream(seed, 990_000);
    let count = 1 + rng.below(4);
    let mut plan = FaultPlan::new(seed);
    for _ in 0..count {
        let node = rng.below(nodes.max(1) as u64) as usize;
        let prob = 0.05 + 0.5 * rng.uniform();
        plan = match rng.below(6) {
            0 => plan.cache_bitflip(node, always(), prob),
            1 => plan.cache_torn(node, always(), prob, 512 << rng.below(3)),
            2 => plan.link_corrupt(None, None, always(), 0.05 + 0.25 * rng.uniform()),
            3 => plan.pfs_corrupt(always(), prob),
            4 => plan.ssd_stall(node, always(), prob, SimDuration::from_micros(200)),
            _ => plan.rpc_fail(None, always(), 0.3 * rng.uniform()),
        };
    }
    plan
}

/// Kind name of one fault spec, for reports.
pub fn spec_kind(spec: &FaultSpec) -> &'static str {
    match spec {
        FaultSpec::NodeCrash { .. } => "node_crash",
        FaultSpec::SsdStall { .. } => "ssd_stall",
        FaultSpec::LinkFault { .. } => "link_fault",
        FaultSpec::RpcFail { .. } => "rpc_fail",
        FaultSpec::CacheBitFlip { .. } => "cache_bitflip",
        FaultSpec::CacheTorn { .. } => "cache_torn",
        FaultSpec::LinkCorrupt { .. } => "link_corrupt",
        FaultSpec::PfsCorrupt { .. } => "pfs_corrupt",
    }
}

fn chaos_hints(case: &ChaosCase) -> Info {
    let h = Info::from_pairs([
        ("cb_buffer_size", "4096"),
        ("striping_unit", "8192"),
        ("e10_cache", "enable"),
        ("e10_cache_journal", "enable"),
    ]);
    h.set(
        "e10_integrity",
        if case.integrity { "enable" } else { "disable" },
    );
    h.set("e10_integrity_scrub_ms", &case.scrub_ms.to_string());
    h.set("e10_cache_class", case.cache_class.as_str());
    if case.cache_class == CacheClass::Hybrid {
        // A tight front budget forces every soak run to straddle both
        // tiers (the 4 KiB collective buffers would otherwise all fit
        // on the NVM side).
        h.set("e10_nvm_capacity", "8K");
    }
    h
}

/// Per-file digests plus per-rank error strings of one run. `None`
/// digest means the file is missing entirely.
struct RunDigest {
    digests: Vec<Option<u64>>,
    errors: Vec<(usize, String)>,
    injected: u64,
}

/// The soak's own non-panicking mini-driver: unlike
/// [`crate::run_workload`] it must survive corrupted final state (the
/// whole point is to *observe* divergence, not die on it), so nothing
/// here asserts on verification.
async fn run_once(tb: &Testbed, case: &ChaosCase, plan: Option<FaultPlan>) -> RunDigest {
    let workload = case.workload.build();
    let hints = chaos_hints(case);
    if workload.force_collective() && hints.get("romio_cb_write").is_none() {
        hints.set("romio_cb_write", "enable");
    }
    let _guard = plan.map(FaultSchedule::install);
    let pfs = Rc::clone(&tb.pfs);
    let localfs = Rc::clone(&tb.localfs);
    let nvmfs = Rc::clone(&tb.nvmfs);
    let files = case.files;
    let seed = case.seed;
    let per_rank: Vec<Vec<String>> = tb
        .world
        .run_ranks(move |comm| {
            let ctx = IoCtx {
                comm,
                pfs: Rc::clone(&pfs),
                localfs: Rc::clone(&localfs),
                nvmfs: Rc::clone(&nvmfs),
            };
            let wl = Rc::clone(&workload);
            let hints = hints.clone();
            async move {
                let rank = ctx.comm.rank();
                let views = wl.writes(rank);
                let mut errors: Vec<String> = Vec::new();
                for k in 0..files {
                    let path = format!("/gfs/chaos.{}.{k}", seed);
                    match AdioFile::open(&ctx, &path, &hints, true).await {
                        Ok(fd) => {
                            for view in &views {
                                let r = write_at_all(
                                    &fd,
                                    view,
                                    &DataSpec::FileGen {
                                        seed: 1000 + seed + k as u64,
                                    },
                                )
                                .await;
                                if r.error_code != 0 {
                                    errors.push(match fd.take_io_error() {
                                        Some(e) => e.to_string(),
                                        None => format!("collective error code {}", r.error_code),
                                    });
                                }
                            }
                            // Idle gap before the close-flush: lets the
                            // background sync (and the scrubber between
                            // its rounds) touch staged extents.
                            sleep(SimDuration::from_millis(50)).await;
                            fd.close().await;
                            if let Some(e) = fd.take_io_error() {
                                errors.push(e.to_string());
                            }
                        }
                        Err(e) => errors.push(e.to_string()),
                    }
                }
                errors
            }
        })
        .await;

    let file_bytes = case.workload.build().file_size();
    let digests = (0..case.files)
        .map(|k| {
            tb.pfs
                .file_extents(&format!("/gfs/chaos.{}.{k}", case.seed))
                .map(|ext| ext.digest(0, file_bytes))
        })
        .collect();
    RunDigest {
        digests,
        errors: per_rank
            .into_iter()
            .enumerate()
            .flat_map(|(rank, errs)| errs.into_iter().map(move |e| (rank, e)))
            .collect(),
        injected: injected_count(),
    }
}

fn verdict_of(oracle: &RunDigest, faulted: &RunDigest) -> (ChaosVerdict, Vec<usize>) {
    let mismatched: Vec<usize> = oracle
        .digests
        .iter()
        .zip(&faulted.digests)
        .enumerate()
        .filter_map(|(k, (o, f))| (o != f).then_some(k))
        .collect();
    let verdict = if !faulted.errors.is_empty() {
        ChaosVerdict::Detected
    } else if mismatched.is_empty() {
        ChaosVerdict::Clean
    } else {
        ChaosVerdict::Diverged
    };
    (verdict, mismatched)
}

/// Run one soak probe of `case` under an explicit `plan` (both the
/// oracle and the faulted run execute inside fresh simulations) and
/// judge it against the gold invariant. Does not shrink.
pub fn probe_with_plan(case: &ChaosCase, plan: &FaultPlan) -> ChaosReport {
    let oracle = {
        let case = *case;
        e10_simcore::run(async move {
            let tb = TestbedSpec::small(case.workload.build().procs(), case.nodes).build();
            run_once(&tb, &case, None).await
        })
    };
    let faulted = {
        let case = *case;
        let plan = plan.clone();
        e10_simcore::run(async move {
            let tb = TestbedSpec::small(case.workload.build().procs(), case.nodes).build();
            run_once(&tb, &case, Some(plan)).await
        })
    };
    let (verdict, mismatched_files) = verdict_of(&oracle, &faulted);
    trace::counter("chaos.runs", 1);
    match verdict {
        ChaosVerdict::Clean => trace::counter("chaos.clean", 1),
        ChaosVerdict::Detected => trace::counter("chaos.detected", 1),
        ChaosVerdict::Diverged => trace::counter("chaos.diverged", 1),
    }
    ChaosReport {
        seed: case.seed,
        workload: case.workload.name(),
        verdict,
        plan_specs: plan.specs.len(),
        injected: faulted.injected,
        rank_errors: faulted.errors,
        mismatched_files,
        minimal: None,
    }
}

/// Shrink a failing (diverging) schedule to a minimal fault set:
/// repeatedly drop one spec at a time, keeping any removal after which
/// the case still diverges, until no single removal reproduces — the
/// classic greedy delta-debug fix point. Each probe is a full
/// deterministic re-run, so the result is an exact repro recipe.
pub fn shrink_plan(case: &ChaosCase, plan: &FaultPlan) -> FaultPlan {
    let mut current = plan.clone();
    'outer: while current.specs.len() > 1 {
        for i in 0..current.specs.len() {
            let mut candidate = current.clone();
            candidate.specs.remove(i);
            if probe_with_plan(case, &candidate).verdict == ChaosVerdict::Diverged {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Run one complete soak case: draw [`random_plan`] from the case
/// seed, probe the gold invariant, and on divergence shrink the
/// schedule to its minimal failing form (recorded in
/// [`ChaosReport::minimal`]).
pub fn chaos_case(case: &ChaosCase) -> ChaosReport {
    let plan = random_plan(case.seed, case.nodes);
    let mut report = probe_with_plan(case, &plan);
    if report.verdict == ChaosVerdict::Diverged {
        let minimal = shrink_plan(case, &plan);
        report.minimal = Some(
            minimal
                .specs
                .iter()
                .map(|s| spec_kind(s).to_string())
                .collect(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seeded_and_crash_free() {
        for seed in 0..32u64 {
            let a = random_plan(seed, 2);
            let b = random_plan(seed, 2);
            assert_eq!(a.specs.len(), b.specs.len(), "seed {seed} not stable");
            assert!((1..=4).contains(&a.specs.len()));
            assert!(
                a.crashes().is_empty(),
                "soak plans must not declare crashes"
            );
            for (x, y) in a.specs.iter().zip(&b.specs) {
                assert_eq!(spec_kind(x), spec_kind(y), "seed {seed} kind drift");
            }
        }
    }

    #[test]
    fn soak_holds_the_oracle_invariant_over_a_seed_range() {
        // The CI-grade slice of the soak: every seed must end Clean or
        // Detected — Diverged is the defect this harness exists for.
        for seed in 0..6u64 {
            let report = chaos_case(&ChaosCase::new(seed));
            assert_ne!(
                report.verdict,
                ChaosVerdict::Diverged,
                "seed {seed}: silent corruption (minimal repro {:?})",
                report.minimal
            );
        }
    }

    #[test]
    fn soak_holds_the_oracle_invariant_on_nvm_and_hybrid_tiers() {
        // One arm per cache class: the scrub/verify/repair ladder must
        // hold the gold invariant when staged bytes live on the
        // byte-granular NVM front and when they straddle both hybrid
        // tiers, not just on the SSD extent path.
        for class in [CacheClass::Nvm, CacheClass::Hybrid] {
            for seed in 0..3u64 {
                let report = chaos_case(&ChaosCase::with_class(seed, class));
                assert_ne!(
                    report.verdict,
                    ChaosVerdict::Diverged,
                    "class {:?} seed {seed}: silent corruption (minimal repro {:?})",
                    class,
                    report.minimal
                );
            }
        }
    }

    #[test]
    fn verdicts_are_deterministic_for_a_given_seed() {
        let a = chaos_case(&ChaosCase::new(3));
        let b = chaos_case(&ChaosCase::new(3));
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.mismatched_files, b.mismatched_files);
        assert_eq!(a.rank_errors, b.rank_errors);
    }

    #[test]
    fn shrinker_reduces_a_diverging_schedule_to_its_culprit() {
        // A schedule whose only destructive spec is a guaranteed cache
        // bit-flip, padded with benign stalls. Run WITHOUT integrity it
        // must diverge (this validates the oracle itself), and the
        // shrinker must isolate the single corrupting spec.
        let mut case = ChaosCase {
            workload: ChaosWorkload::Ior,
            nodes: 2,
            files: 1,
            seed: 424_242,
            scrub_ms: 0,
            integrity: false,
            cache_class: CacheClass::Ssd,
        };
        let plan = FaultPlan::new(7)
            .ssd_stall(0, always(), 0.2, SimDuration::from_micros(100))
            .cache_bitflip(0, always(), 1.0)
            .ssd_stall(1, always(), 0.2, SimDuration::from_micros(100));
        let bare = probe_with_plan(&case, &plan);
        assert_eq!(
            bare.verdict,
            ChaosVerdict::Diverged,
            "without integrity the flip must slip through silently"
        );
        let minimal = shrink_plan(&case, &plan);
        assert_eq!(minimal.specs.len(), 1, "padding stalls must be shed");
        assert_eq!(spec_kind(&minimal.specs[0]), "cache_bitflip");
        // The same schedule with integrity ON must be caught.
        case.integrity = true;
        let caught = probe_with_plan(&case, &plan);
        assert_ne!(caught.verdict, ChaosVerdict::Diverged);
    }
}
