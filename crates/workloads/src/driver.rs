//! The multi-file workflow driver (Fig. 3 of the paper) and the
//! perceived-bandwidth measurement of Eq. 2.
//!
//! Each benchmark writes `files` files of the same size with a compute
//! delay between I/O phases. Following the modified workflow, the
//! close of file `k` is moved to the start of I/O phase `k+1` (after
//! the compute), so cache synchronisation overlaps computation and the
//! close only waits for whatever is *not hidden* — exactly the
//! `max(0, T_s(k) − C(k+1))` term of Eq. 1.

use std::rc::Rc;

use e10_mpisim::Info;
use e10_romio::bwmodel::{total_bandwidth, PhaseMeasure};
use e10_romio::{
    write_at_all, AdioFile, Breakdown, DataSpec, IoCtx, Phase, Profiler, Testbed, TraceMode,
};
use e10_simcore::trace::{
    install_with_metrics, JsonlSink, MetricsRegistry, MetricsSnapshot, RingSink, TraceGuard,
};
use e10_simcore::{now, sleep, SimDuration};

use crate::Workload;

/// The `trace` section of an experiment configuration: whether and
/// where a run records structured trace events. The `e10_trace` /
/// `e10_trace_path` hints, when present, override this section so a
/// single sweep binary can turn tracing on for one configuration only.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Event destination (default [`TraceMode::Off`]).
    pub mode: TraceMode,
    /// Directory for `jsonl` traces.
    pub path: String,
    /// Capacity of the in-memory ring for [`TraceMode::Ring`].
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            path: "results/traces".to_string(),
            ring_capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Resolve the effective configuration: hint keys present in
    /// `hints` win over the config section.
    pub fn effective(&self, hints: &Info) -> TraceConfig {
        let mut t = self.clone();
        if let Ok(h) = e10_romio::RomioHints::from_info(hints) {
            if hints.get("e10_trace").is_some() {
                t.mode = h.e10_trace;
            }
            if hints.get("e10_trace_path").is_some() {
                t.path = h.e10_trace_path;
            }
        }
        t
    }
}

/// What tracing recorded during a run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The resolved mode the run used.
    pub mode: TraceMode,
    /// The JSONL file written, for [`TraceMode::Jsonl`].
    pub path: Option<String>,
    /// Events accepted by the sink.
    pub recorded: u64,
    /// Events dropped (ring wrap-around).
    pub dropped: u64,
    /// In-memory events, for [`TraceMode::Ring`].
    pub events: Vec<e10_simcore::trace::Event>,
}

/// Configuration of one benchmark run.
#[derive(Clone)]
pub struct RunConfig {
    /// Number of files written (the paper uses 4).
    pub files: usize,
    /// Compute delay between I/O phases (the paper uses 30 s).
    pub compute_delay: SimDuration,
    /// MPI-IO hints for every file.
    pub hints: Info,
    /// Charge the last file's close wait to the bandwidth (IOR does;
    /// coll_perf and Flash-IO do not — paper §IV-B/§IV-D).
    pub include_last_sync: bool,
    /// Verify the final global files byte-for-byte against the
    /// generator (disable for `flush_none`, which never syncs).
    pub verify: bool,
    /// Global-file path prefix; files are `<prefix>.<k>`.
    pub path_prefix: String,
    /// Generator seed of file `k` is `seed_base + k`.
    pub seed_base: u64,
    /// Coefficient of variation of per-rank compute-time jitter
    /// (log-normal, mean 1). With OS noise or load imbalance, ranks
    /// arrive at the next I/O phase staggered and the collective's
    /// first global synchronisation absorbs the spread — the effect
    /// the paper (via Damaris [16]) notes becomes *more* prominent the
    /// faster the I/O itself is.
    pub compute_jitter_cv: f64,
    /// Structured-trace destination for this run (hints override).
    pub trace: TraceConfig,
    /// Fault plan installed for the duration of the run (default
    /// empty: no schedule is installed and the run is bit-identical
    /// to a build without fault injection). Node-crash specs are not
    /// executed by this driver — use the [`crate::crash`] harness,
    /// which owns the kill/power-loss/recovery sequence.
    pub faults: e10_faultsim::FaultPlan,
}

impl RunConfig {
    /// The paper's setup: 4 files, 30 s compute delay.
    pub fn paper(hints: Info, prefix: &str) -> Self {
        RunConfig {
            files: 4,
            compute_delay: SimDuration::from_secs(30),
            hints,
            include_last_sync: false,
            verify: true,
            path_prefix: prefix.to_string(),
            seed_base: 1000,
            compute_jitter_cv: 0.0,
            trace: TraceConfig::default(),
            faults: e10_faultsim::FaultPlan::default(),
        }
    }
}

/// One I/O phase's timings (measured on rank 0, which is barrier-
/// aligned with every other rank at phase boundaries).
#[derive(Debug, Clone, Copy)]
pub struct PhaseOutcome {
    /// Bytes written by all ranks in this phase.
    pub bytes: u64,
    /// Collective write time `T_c(k)` (open + all write_all calls).
    pub t_c: f64,
    /// Close wait — the non-hidden synchronisation of Eq. 1.
    pub not_hidden: f64,
}

/// The result of a run.
pub struct RunOutcome {
    /// Per-file phases.
    pub phases: Vec<PhaseOutcome>,
    /// Eq. 2 perceived bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-phase cost breakdown merged over all ranks.
    pub breakdown: Breakdown,
    /// Per-phase cost breakdown merged over aggregator ranks only —
    /// what the paper's Fig. 5/6/8/10 stacked bars show (non-
    /// aggregators spend almost everything waiting in the alltoall).
    pub breakdown_aggs: Breakdown,
    /// Total bytes across files.
    pub total_bytes: u64,
    /// Virtual wall time of the whole run, seconds.
    pub wall_time: f64,
    /// Counter/tally snapshot, when the run was traced.
    pub metrics: Option<MetricsSnapshot>,
    /// What the trace sink recorded, when the run was traced.
    pub trace: Option<TraceReport>,
    /// Faults injected by the run's [`RunConfig::faults`] plan (0 when
    /// the plan was empty or never fired).
    pub faults_injected: u64,
}

impl RunOutcome {
    /// Bandwidth in decimal GB/s (the paper's unit).
    pub fn gb_s(&self) -> f64 {
        self.bandwidth / 1e9
    }
}

/// Run `workload` on `tb` under `cfg`. The testbed's rank count must
/// match the workload's.
pub async fn run_workload(tb: &Testbed, workload: Rc<dyn Workload>, cfg: &RunConfig) -> RunOutcome {
    assert_eq!(
        tb.world.comms.len(),
        workload.procs(),
        "testbed rank count must match the workload"
    );
    let t_start = now();
    let file_bytes = workload.file_size();
    let hints = cfg.hints.dup();
    // Intra-node aggregation only exists on the collective path: a run
    // that asks for `e10_two_phase = node_agg` without deciding
    // `romio_cb_write` means collective buffering, like the benchmarks
    // that force it.
    let wants_node_agg = hints.get("e10_two_phase").as_deref() == Some("node_agg");
    if (workload.force_collective() || wants_node_agg) && hints.get("romio_cb_write").is_none() {
        hints.set("romio_cb_write", "enable");
    }

    // Install the run's trace sink; every instrumented layer emits to
    // it for the duration. Nothing in the simulation reads trace
    // state, so virtual-time outcomes are identical traced or not.
    let trace_cfg = cfg.trace.effective(&hints);
    let metrics = Rc::new(MetricsRegistry::new());
    let mut ring: Option<Rc<RingSink>> = None;
    let mut jsonl: Option<(Rc<JsonlSink>, String)> = None;
    let trace_guard: Option<TraceGuard> = match trace_cfg.mode {
        TraceMode::Off => None,
        TraceMode::Ring => {
            let s = Rc::new(RingSink::new(trace_cfg.ring_capacity));
            ring = Some(Rc::clone(&s));
            Some(install_with_metrics(s, Rc::clone(&metrics)))
        }
        TraceMode::Jsonl => {
            let base = cfg.path_prefix.rsplit('/').next().unwrap_or("run");
            let path = format!("{}/{base}.jsonl", trace_cfg.path);
            match JsonlSink::create(&path) {
                Ok(s) => {
                    let s = Rc::new(s);
                    jsonl = Some((Rc::clone(&s), path));
                    Some(install_with_metrics(s, Rc::clone(&metrics)))
                }
                Err(e) => {
                    eprintln!("e10: cannot create trace file {path}: {e}; tracing disabled");
                    None
                }
            }
        }
    };

    // Install the run's fault schedule, if any. Like the trace sink it
    // is ambient: device and server models sample it at their injection
    // points. An empty plan installs nothing, so fault-free runs take
    // only the single disabled-flag branch per query. Crash specs need
    // a harness that owns the kill/recovery sequence (`crate::crash`).
    assert!(
        cfg.faults.crashes().is_empty(),
        "run_workload cannot execute node crashes; use crash::run_crash_recovery"
    );
    let _fault_guard = if cfg.faults.is_empty() {
        None
    } else {
        Some(e10_faultsim::FaultSchedule::install(cfg.faults.clone()))
    };

    let pfs = Rc::clone(&tb.pfs);
    let localfs = Rc::clone(&tb.localfs);
    let nvmfs = Rc::clone(&tb.nvmfs);
    let cfg_shared = Rc::new(cfg.clone());

    let per_rank = tb
        .world
        .run_ranks(move |comm| {
            let ctx = IoCtx {
                comm,
                pfs: Rc::clone(&pfs),
                localfs: Rc::clone(&localfs),
                nvmfs: Rc::clone(&nvmfs),
            };
            let wl = Rc::clone(&workload);
            let cfg = Rc::clone(&cfg_shared);
            let hints = hints.clone();
            async move {
                let rank = ctx.comm.rank();
                let views = wl.writes(rank);
                let mut prev: Option<AdioFile> = None;
                let mut phases: Vec<(u64, f64)> = Vec::new();
                let mut not_hidden = vec![0.0f64; cfg.files];
                let rank_prof = Profiler::new();
                let mut is_agg = false;
                let mut jitter = e10_simcore::rng::Jitter::new(
                    e10_simcore::SimRng::stream(0xC0FFEE, rank as u64),
                    cfg.compute_jitter_cv,
                );

                for k in 0..cfg.files {
                    // Fig. 3: close file k-1 right before opening file k.
                    if let Some(f) = prev.take() {
                        let t0 = now();
                        f.close().await;
                        not_hidden[k - 1] = now().since(t0).as_secs_f64();
                        let p = f.profiler();
                        p.take(Phase::FlushWait); // re-attributed:
                        p.add(
                            Phase::NotHiddenSync,
                            SimDuration::from_secs_f64(not_hidden[k - 1]),
                        );
                        rank_prof.merge_from(p);
                    }
                    // T_c is measured from when THIS rank becomes
                    // ready: under compute jitter the collective's
                    // synchronisation absorbs the arrival spread and
                    // it shows up in the perceived write time, as on a
                    // real machine.
                    let t0 = now();
                    ctx.comm.barrier().await;
                    e10_simcore::trace::emit(|| {
                        e10_simcore::trace::Event::new(
                            e10_simcore::trace::Layer::Workload,
                            "io_phase",
                            e10_simcore::trace::EventKind::Begin,
                        )
                        .rank(rank)
                        .field("file", k)
                    });
                    let path = format!("{}.{k}", cfg.path_prefix);
                    let fd = AdioFile::open(&ctx, &path, &hints, true)
                        .await
                        .expect("collective open failed");
                    is_agg = fd.my_agg_index().is_some();
                    let mut bytes = 0;
                    for view in &views {
                        let r = write_at_all(
                            &fd,
                            view,
                            &DataSpec::FileGen {
                                seed: cfg.seed_base + k as u64,
                            },
                        )
                        .await;
                        bytes += r.bytes;
                    }
                    phases.push((bytes, now().since(t0).as_secs_f64()));
                    e10_simcore::trace::emit(|| {
                        e10_simcore::trace::Event::new(
                            e10_simcore::trace::Layer::Workload,
                            "io_phase",
                            e10_simcore::trace::EventKind::End,
                        )
                        .rank(rank)
                        .field("file", k)
                        .field("bytes", bytes)
                    });
                    if k + 1 < cfg.files {
                        // The compute phase C(k+1): background sync of
                        // file k proceeds meanwhile. Per-rank jitter
                        // staggers the arrivals at phase k+1.
                        sleep(cfg.compute_delay.mul_f64(jitter.sample())).await;
                    }
                    prev = Some(fd);
                }
                // Final close: nothing left to hide behind.
                if let Some(f) = prev.take() {
                    let t0 = now();
                    f.close().await;
                    let wait = now().since(t0).as_secs_f64();
                    let p = f.profiler();
                    p.take(Phase::FlushWait);
                    if cfg.include_last_sync {
                        not_hidden[cfg.files - 1] = wait;
                        p.add(Phase::NotHiddenSync, SimDuration::from_secs_f64(wait));
                    }
                    rank_prof.merge_from(p);
                }
                (phases, not_hidden, rank_prof, is_agg)
            }
        })
        .await;

    let (phase_times, not_hidden, _, _) = &per_rank[0];
    let phases: Vec<PhaseOutcome> = phase_times
        .iter()
        .zip(not_hidden)
        .map(|(&(_, t_c), &nh)| PhaseOutcome {
            bytes: file_bytes,
            t_c,
            not_hidden: nh,
        })
        .collect();

    let measures: Vec<PhaseMeasure> = phases
        .iter()
        .map(|p| PhaseMeasure {
            bytes: p.bytes,
            t_c: p.t_c,
            t_s: p.not_hidden,
            c_next: 0.0,
        })
        .collect();
    let bandwidth = total_bandwidth(&measures);
    let profs: Vec<Profiler> = per_rank.iter().map(|(_, _, p, _)| p.clone()).collect();
    let breakdown = Breakdown::from_profilers(&profs);
    let agg_profs: Vec<Profiler> = per_rank
        .iter()
        .filter(|(_, _, _, is_agg)| *is_agg)
        .map(|(_, _, p, _)| p.clone())
        .collect();
    let breakdown_aggs = Breakdown::from_profilers(&agg_profs);

    if cfg.verify {
        for k in 0..cfg.files {
            let path = format!("{}.{k}", cfg.path_prefix);
            let ext = tb
                .pfs
                .file_extents(&path)
                .unwrap_or_else(|| panic!("file {path} missing after run"));
            ext.verify_gen(cfg.seed_base + k as u64, 0, file_bytes)
                .unwrap_or_else(|e| panic!("verification of {path} failed: {e}"));
        }
    }

    let (metrics_snap, trace_report) = if trace_guard.is_some() {
        let report = if let Some(r) = &ring {
            TraceReport {
                mode: TraceMode::Ring,
                path: None,
                recorded: r.recorded(),
                dropped: r.dropped(),
                events: r.events(),
            }
        } else {
            let (s, path) = jsonl.as_ref().expect("jsonl sink when not ring");
            TraceReport {
                mode: TraceMode::Jsonl,
                path: Some(path.clone()),
                recorded: s.recorded(),
                dropped: 0,
                events: Vec::new(),
            }
        };
        (Some(metrics.snapshot()), Some(report))
    } else {
        (None, None)
    };
    let faults_injected = e10_faultsim::injected_count();
    drop(trace_guard); // restore the previous sink, flush the file

    RunOutcome {
        phases,
        bandwidth,
        breakdown,
        breakdown_aggs,
        total_bytes: file_bytes * cfg.files as u64,
        wall_time: now().since(t_start).as_secs_f64(),
        metrics: metrics_snap,
        trace: trace_report,
        faults_injected,
    }
}
