//! Property tests for the workload generators: for any parameters, the
//! per-rank views of one file must tile `[0, file_size())` exactly —
//! no gaps, no overlaps — which is what makes whole-file verification
//! after a run meaningful.

use proptest::prelude::*;

use e10_workloads::{CollPerf, FlashFile, FlashIo, Ior, Workload};

fn assert_tiles(w: &dyn Workload) {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for r in 0..w.procs() {
        for v in w.writes(r) {
            for p in v.pieces() {
                runs.push((p.file_off, p.len));
            }
        }
    }
    runs.sort_unstable();
    let mut pos = 0;
    for (off, len) in runs {
        assert_eq!(off, pos, "gap or overlap at {off} in {}", w.name());
        pos = off + len;
    }
    assert_eq!(pos, w.file_size(), "{} size mismatch", w.name());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn collperf_tiles_for_any_grid(
        gx in 1u64..4, gy in 1u64..4, gz in 1u64..4,
        side in 1u64..4,
        chunk_shift in 6u32..12,
    ) {
        let w = CollPerf { grid: [gx, gy, gz], side, chunk: 1 << chunk_shift };
        assert_tiles(&w);
    }

    #[test]
    fn flashio_tiles_for_any_shape(
        nprocs in 1usize..9,
        blocks in 1u64..5,
        zones in 1u64..6,
        nvars in 1u64..8,
        which in 0usize..3,
    ) {
        let w = FlashIo {
            nprocs,
            blocks_per_proc: blocks,
            zones,
            nvars,
            file: [FlashFile::Checkpoint, FlashFile::Plot, FlashFile::PlotCorners][which],
        };
        assert_tiles(&w);
    }

    #[test]
    fn ior_tiles_for_any_shape(
        nprocs in 1usize..9,
        t_shift in 6u32..12,
        t_per_block in 1u64..5,
        segments in 1u64..5,
    ) {
        let t = 1u64 << t_shift;
        let w = Ior {
            nprocs,
            block_size: t * t_per_block,
            transfer_size: t,
            segments,
        };
        assert_tiles(&w);
    }
}
