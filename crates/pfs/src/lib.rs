//! # e10-pfs
//!
//! A BeeGFS-like global parallel file system, built from the storage and
//! network models:
//!
//! * one **metadata server** (FIFO service per metadata RPC),
//! * `N` **data targets**, each a RAID array of jittery rotational
//!   disks behind a per-target ingest link and a shared storage
//!   backend (the SAS switch of the DEEP-ER JBOD),
//! * **striping**: files are chunked by `stripe_unit` round-robin over
//!   `stripe_count` targets,
//! * **extent locks** at stripe granularity on each target (the file
//!   system locking protocol that makes unaligned file domains
//!   contend), plus a per-file range-lock service used by the E10
//!   `coherent` cache mode.
//!
//! Clients interact through [`PfsHandle`]; every operation charges
//! network transfer, RPC handling, commit latency and device time on
//! the simulated resources, so aggregate bandwidth, per-stream
//! small-buffer throughput and server-side response-time variance all
//! emerge from the model rather than being dialled in.

pub mod lock;

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::ops::Range;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use e10_netsim::{Network, NodeId};
use e10_simcore::rng::Jitter;
use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::{join_all, spawn, FairShare, FifoServer, SimDuration, SimRng, Tally};
use e10_storesim::{
    Disk, DiskParams, ExtentMap, PageCache, PageCacheParams, Payload, Raid, RaidParams, Source,
};
use lock::{LockMode, RangeLock, RangeLockGuard};

/// File-system-wide parameters.
#[derive(Debug, Clone)]
pub struct PfsParams {
    /// Number of data targets.
    pub data_targets: usize,
    /// Default stripe unit in bytes (`striping_unit` hint default).
    pub default_stripe_unit: u64,
    /// Default stripe count (`striping_factor` hint default).
    pub default_stripe_count: usize,
    /// CPU cost of handling one I/O RPC on a target.
    pub rpc_overhead: SimDuration,
    /// Server-side commit latency per write RPC (journal/ack path) —
    /// this is what bounds a single client stream with small buffers.
    pub commit_latency: SimDuration,
    /// Metadata RPC service time.
    pub meta_op: SimDuration,
    /// Per-target ingest bandwidth (server NIC→storage path), bytes/s.
    pub ingest_bw: f64,
    /// Shared backend (SAS switch) bandwidth, bytes/s.
    pub backend_bw: f64,
    /// RPC handler threads per target.
    pub handler_threads: usize,
    /// RAID-controller write-back cache per target, bytes.
    pub controller_cache: u64,
    /// Controller ingest (PCIe/cache-absorb) bandwidth, bytes/s.
    pub controller_absorb_bw: f64,
    /// Sorted destage rate from controller cache to media, bytes/s.
    /// Already accounts for the shared SAS backend split across
    /// targets under full load.
    pub destage_bw: f64,
    /// Coefficient of variation of per-request server jitter (load
    /// imbalance among I/O servers — the paper's variability driver).
    pub server_jitter_cv: f64,
    /// Retries after a failed I/O RPC before the client gives up.
    pub max_retries: u32,
    /// Base client backoff after a failed RPC; doubles per attempt and
    /// is stretched by a uniform jitter factor in `[1, 2)`.
    pub retry_base: SimDuration,
    /// Disk model for target members.
    pub disk: DiskParams,
    /// RAID geometry per target.
    pub raid: RaidParams,
    /// Disks per target (data + parity).
    pub disks_per_target: usize,
}

impl PfsParams {
    /// The DEEP-ER storage system: 4 data targets, each an 8+2 RAID6 of
    /// nearline SAS drives, one shared SAS backend, BeeGFS defaults.
    pub fn deep_er() -> Self {
        PfsParams {
            data_targets: 4,
            default_stripe_unit: 4 * (1 << 20),
            default_stripe_count: 4,
            rpc_overhead: SimDuration::from_micros(100),
            commit_latency: SimDuration::from_micros(6_500),
            meta_op: SimDuration::from_micros(250),
            ingest_bw: 1.1e9,
            backend_bw: 2.6e9,
            handler_threads: 8,
            controller_cache: 512 << 20,
            controller_absorb_bw: 2.5e9,
            destage_bw: 650e6,
            server_jitter_cv: 0.4,
            max_retries: 4,
            retry_base: SimDuration::from_millis(2),
            disk: DiskParams::nearline_sas(),
            raid: RaidParams::raid6(),
            disks_per_target: 10,
        }
    }
}

struct Target {
    node: NodeId,
    handler: FifoServer,
    ingest: FairShare,
    /// Controller write-back cache: foreground writes complete once
    /// accepted here; destaging to media happens at the sorted
    /// sequential rate in the background.
    wbc: PageCache,
    /// Media array, used by the read path (reads miss the small
    /// controller cache for our workloads).
    raid: Raid,
    stripe_locks: RangeLock,
    jitter: RefCell<Jitter>,
    bytes_written: RefCell<Tally>,
    write_latency: RefCell<Tally>,
}

struct PfsFileState {
    stripe_unit: u64,
    stripe_count: usize,
    first_target: usize,
    /// Gives each file a disjoint device region on every target.
    file_index: u64,
    data: ExtentMap,
    size: u64,
    range_lock: RangeLock,
    open_handles: usize,
    /// Write-epoch fence: writes from handles whose epoch is below
    /// this watermark complete (they already paid their I/O time) but
    /// record nothing — the crash-tolerance redo path raises the fence
    /// before re-running a collective round so a straggling write from
    /// the failed round can never clobber the redone data.
    fence: u64,
}

/// The file system instance (one per simulated cluster).
pub struct Pfs {
    params: PfsParams,
    net: Rc<Network>,
    mds_node: NodeId,
    mds: FifoServer,
    backend: FairShare,
    targets: Vec<Target>,
    files: RefCell<HashMap<String, Rc<RefCell<PfsFileState>>>>,
    files_created: RefCell<u64>,
    /// Jitter stream for client retry backoff (decorrelates retries of
    /// concurrent clients after a correlated server failure).
    retry_rng: RefCell<SimRng>,
    /// Recycled chunk-list buffers: striped requests split into chunks
    /// every round, and the split must not touch the allocator in
    /// steady state.
    chunk_pool: RefCell<Vec<Vec<Chunk>>>,
}

/// Striping overrides at create time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Striping {
    /// Stripe unit in bytes (None → file-system default).
    pub unit: Option<u64>,
    /// Stripe count (None → default; clamped to the target count).
    pub count: Option<usize>,
}

/// One failed I/O RPC (the underlying cause of [`PfsError::RpcExhausted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError {
    /// Operation kind (`"write"` or `"read"`).
    pub op: &'static str,
    /// Data target that failed the request.
    pub target: usize,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rpc failed on data target {}", self.op, self.target)
    }
}

impl std::error::Error for RpcError {}

/// Errors from PFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// No such file.
    NotFound(String),
    /// An I/O RPC kept failing after every allowed retry.
    RpcExhausted {
        /// Operation kind (`"write"` or `"read"`).
        op: &'static str,
        /// Data target that failed the request.
        target: usize,
        /// Failed attempts, including the initial one.
        attempts: u32,
        /// The final failure.
        source: RpcError,
    },
    /// The bulk-payload checksum of a write kept mismatching on every
    /// allowed retransmission — the link is persistently corrupting.
    WireChecksum {
        /// Data target the payload was bound for.
        target: usize,
        /// Transfer attempts, including the initial one.
        attempts: u32,
    },
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(p) => write!(f, "not found: {p}"),
            PfsError::RpcExhausted {
                op,
                target,
                attempts,
                ..
            } => write!(
                f,
                "{op} rpc to data target {target} failed after {attempts} attempts"
            ),
            PfsError::WireChecksum { target, attempts } => write!(
                f,
                "write payload to data target {target} failed its checksum on \
                 {attempts} consecutive transfers"
            ),
        }
    }
}

impl std::error::Error for PfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PfsError::NotFound(_) => None,
            PfsError::RpcExhausted { source, .. } => Some(source),
            PfsError::WireChecksum { .. } => None,
        }
    }
}

impl Pfs {
    /// Build the file system. `mds_node` and `target_nodes` are the
    /// fabric node ids of the servers (they must exist in `net`);
    /// `seed` drives all device jitter streams.
    pub fn new(
        params: PfsParams,
        net: Rc<Network>,
        mds_node: NodeId,
        target_nodes: Vec<NodeId>,
        seed: u64,
    ) -> Rc<Self> {
        assert_eq!(
            target_nodes.len(),
            params.data_targets,
            "one fabric node per data target"
        );
        let targets = target_nodes
            .iter()
            .enumerate()
            .map(|(t, &node)| {
                let disks = (0..params.disks_per_target)
                    .map(|d| {
                        Disk::new(
                            params.disk.clone(),
                            SimRng::stream(seed, (t * 1000 + d) as u64),
                        )
                    })
                    .collect();
                Target {
                    node,
                    handler: FifoServer::new(params.handler_threads),
                    ingest: FairShare::new(params.ingest_bw),
                    wbc: PageCache::new(PageCacheParams {
                        mem_bw: params.controller_absorb_bw,
                        dirty_limit: params.controller_cache,
                        capacity: params.controller_cache,
                        drain_bw: params.destage_bw,
                    }),
                    raid: Raid::new(params.raid.clone(), disks),
                    stripe_locks: RangeLock::new(),
                    jitter: RefCell::new(Jitter::new(
                        SimRng::stream(seed, 9_000 + t as u64),
                        params.server_jitter_cv,
                    )),
                    bytes_written: RefCell::new(Tally::new()),
                    write_latency: RefCell::new(Tally::new()),
                }
            })
            .collect();
        Rc::new(Pfs {
            mds: FifoServer::new(1),
            backend: FairShare::new(params.backend_bw),
            params,
            net,
            mds_node,
            targets,
            files: RefCell::new(HashMap::new()),
            files_created: RefCell::new(0),
            retry_rng: RefCell::new(SimRng::stream(seed, 20_000)),
            chunk_pool: RefCell::new(Vec::new()),
        })
    }

    /// File-system parameters.
    pub fn params(&self) -> &PfsParams {
        &self.params
    }

    /// Client side of one I/O RPC submission: ship the request to the
    /// target and, if the server fails it (injected via
    /// `e10_faultsim::rpc_fails`), back off exponentially with jitter
    /// and retry per `policy` — `(max_retries, retry_base)`, normally
    /// the [`PfsParams`] defaults unless the handle overrides them.
    async fn submit_rpc(
        &self,
        client: NodeId,
        target: usize,
        op: &'static str,
        req_bytes: u64,
        policy: (u32, SimDuration),
    ) -> Result<(), PfsError> {
        let (max_retries, retry_base) = policy;
        let t = &self.targets[target];
        let mut attempt: u32 = 0;
        loop {
            // Client → server wire transfer (header, plus data for
            // writes).
            self.net.transfer(client, t.node, req_bytes).await;
            if !e10_faultsim::rpc_fails(target) {
                return Ok(());
            }
            // A failed attempt still occupied a handler thread before
            // erroring out, and the error reply rides back to the
            // client.
            t.handler.serve(self.params.rpc_overhead).await;
            self.net.transfer(t.node, client, 64).await;
            attempt += 1;
            if attempt > max_retries {
                return Err(PfsError::RpcExhausted {
                    op,
                    target,
                    attempts: attempt,
                    source: RpcError { op, target },
                });
            }
            let stretch = 1.0 + self.retry_rng.borrow_mut().uniform();
            let backoff = retry_base.mul_f64((1u64 << (attempt - 1)) as f64 * stretch);
            trace::emit(|| {
                Event::new(Layer::Pfs, "rpc.retry", EventKind::Point)
                    .node(client)
                    .field("op", op)
                    .field("target", target)
                    .field("attempt", attempt)
                    .field("backoff_ns", backoff.as_nanos())
            });
            trace::counter("pfs.rpc_retries", 1);
            e10_simcore::sleep(backoff).await;
        }
    }

    async fn meta_rpc(&self, client: NodeId) {
        self.net.transfer(client, self.mds_node, 256).await;
        self.mds.serve(self.params.meta_op).await;
        self.net.transfer(self.mds_node, client, 128).await;
    }

    /// Create (or truncate) a file. One metadata RPC.
    pub async fn create(
        self: &Rc<Self>,
        client: NodeId,
        path: &str,
        striping: Striping,
    ) -> PfsHandle {
        self.meta_rpc(client).await;
        let unit = striping.unit.unwrap_or(self.params.default_stripe_unit);
        let count = striping
            .count
            .unwrap_or(self.params.default_stripe_count)
            .clamp(1, self.targets.len());
        let idx = *self.files_created.borrow();
        *self.files_created.borrow_mut() += 1;
        let st = Rc::new(RefCell::new(PfsFileState {
            stripe_unit: unit,
            stripe_count: count,
            first_target: (idx as usize) % self.targets.len(),
            file_index: idx,
            data: ExtentMap::new(),
            size: 0,
            range_lock: RangeLock::new(),
            open_handles: 1,
            fence: 0,
        }));
        self.files
            .borrow_mut()
            .insert(path.to_string(), Rc::clone(&st));
        PfsHandle {
            pfs: Rc::clone(self),
            path: path.to_string(),
            state: st,
            epoch: std::cell::Cell::new(0),
            retry: std::cell::Cell::new(None),
            fence_exempt: std::cell::Cell::new(false),
        }
    }

    /// Open an existing file. One metadata RPC.
    pub async fn open(self: &Rc<Self>, client: NodeId, path: &str) -> Result<PfsHandle, PfsError> {
        self.meta_rpc(client).await;
        let st = self
            .files
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| PfsError::NotFound(path.to_string()))?;
        st.borrow_mut().open_handles += 1;
        Ok(PfsHandle {
            pfs: Rc::clone(self),
            path: path.to_string(),
            state: st,
            epoch: std::cell::Cell::new(0),
            retry: std::cell::Cell::new(None),
            fence_exempt: std::cell::Cell::new(false),
        })
    }

    /// Attach to an existing file WITHOUT a metadata RPC — the
    /// deferred-open optimisation (`romio_no_indep_rw`): non-aggregator
    /// processes reuse the collectively-established state and only
    /// talk to the MDS if they later do I/O (which, under collective
    /// buffering, they do not).
    pub fn attach(self: &Rc<Self>, path: &str) -> Result<PfsHandle, PfsError> {
        let st = self
            .files
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| PfsError::NotFound(path.to_string()))?;
        st.borrow_mut().open_handles += 1;
        Ok(PfsHandle {
            pfs: Rc::clone(self),
            path: path.to_string(),
            state: st,
            epoch: std::cell::Cell::new(0),
            retry: std::cell::Cell::new(None),
            fence_exempt: std::cell::Cell::new(false),
        })
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.borrow().contains_key(path)
    }

    /// The logical contents of a file (verification oracle), if it
    /// exists.
    pub fn file_extents(&self, path: &str) -> Option<ExtentMap> {
        self.files
            .borrow()
            .get(path)
            .map(|st| st.borrow().data.clone())
    }

    /// Aggregate bytes written across all targets.
    pub fn bytes_written(&self) -> f64 {
        self.targets
            .iter()
            .map(|t| t.bytes_written.borrow().sum())
            .sum()
    }

    /// Per-target write service-time statistics (jitter visibility).
    pub fn target_write_latencies(&self) -> Vec<Tally> {
        self.targets
            .iter()
            .map(|t| t.write_latency.borrow().clone())
            .collect()
    }

    /// Instantaneous storage load in `[0, 1]`: for each target, the
    /// larger of (a) the controller write-back cache's fill fraction
    /// (destage backlog) and (b) requests queued behind the RPC
    /// handler pool relative to its size (arrival pressure); averaged
    /// over targets. Cheap to poll — used by congestion-aware sync.
    pub fn server_load(&self) -> f64 {
        let per_target = |t: &Target| {
            let backlog = t.wbc.dirty() as f64 / self.params.controller_cache as f64;
            let arrivals = t.handler.queue_len() as f64 / self.params.handler_threads as f64;
            backlog.max(arrivals).min(1.0)
        };
        let sum: f64 = self.targets.iter().map(per_target).sum();
        sum / self.targets.len() as f64
    }

    /// Stripe-lock contention: `(grants, contended)` summed over targets.
    pub fn lock_contention(&self) -> (u64, u64) {
        self.targets
            .iter()
            .map(|t| t.stripe_locks.contention_stats())
            .fold((0, 0), |(a, b), (g, c)| (a + g, b + c))
    }
}

/// A chunk of a file request routed to one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chunk {
    target: usize,
    dev_offset: u64,
    file_offset: u64,
    len: u64,
}

/// Striped requests fan out to this many chunks before the per-chunk
/// futures fall back to spawned tasks (which allocate).
const CHUNK_JOIN_SLOTS: usize = 8;

/// Join up to `N` same-typed futures without allocating — the shape of
/// a striped request's per-chunk fan-out, which historically spawned
/// one task per chunk (several allocator calls each). Slots are polled
/// in push order, matching the ready-queue order the spawned chunk
/// tasks used to start in.
struct FixedJoin<F: Future, const N: usize> {
    slots: [Option<F>; N],
    results: [Option<F::Output>; N],
    len: usize,
}

impl<F: Future, const N: usize> FixedJoin<F, N> {
    fn new() -> Self {
        FixedJoin {
            slots: std::array::from_fn(|_| None),
            results: std::array::from_fn(|_| None),
            len: 0,
        }
    }

    fn push(&mut self, f: F) {
        self.slots[self.len] = Some(f);
        self.len += 1;
    }
}

impl<F: Future, const N: usize> Future for FixedJoin<F, N> {
    type Output = [Option<F::Output>; N];

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Structural pinning of `slots`: the futures are never moved
        // once the join is pinned; completed slots are dropped in
        // place by the `None` assignment.
        let this = unsafe { self.get_unchecked_mut() };
        let mut pending = false;
        for i in 0..this.len {
            if let Some(f) = &mut this.slots[i] {
                match unsafe { Pin::new_unchecked(f) }.poll(cx) {
                    Poll::Ready(v) => {
                        this.results[i] = Some(v);
                        this.slots[i] = None;
                    }
                    Poll::Pending => pending = true,
                }
            }
        }
        if pending {
            Poll::Pending
        } else {
            Poll::Ready(std::mem::replace(
                &mut this.results,
                std::array::from_fn(|_| None),
            ))
        }
    }
}

/// An open file handle.
#[derive(Clone)]
pub struct PfsHandle {
    pfs: Rc<Pfs>,
    path: String,
    state: Rc<RefCell<PfsFileState>>,
    /// Write epoch this handle stamps on its requests (see
    /// [`PfsFileState::fence`]). Clones inherit the current value.
    epoch: std::cell::Cell<u64>,
    /// Per-handle retry-policy override (`e10_pfs_max_retries` /
    /// `e10_pfs_retry_base_us` hints); `None` uses [`PfsParams`].
    retry: std::cell::Cell<Option<(u32, SimDuration)>>,
    /// Exempt this handle (and its clones) from the write-epoch fence.
    /// Set by the cache layer before spawning sync threads: a cached
    /// byte was acked to the application and its content is stable, so
    /// replaying it to the PFS is sound in any epoch — fencing it
    /// would silently drop durable data.
    fence_exempt: std::cell::Cell<bool>,
}

impl PfsHandle {
    /// File path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Override the client retry policy for I/O RPCs issued through
    /// this handle (and handles cloned from it afterwards).
    pub fn set_retry_policy(&self, max_retries: u32, retry_base: SimDuration) {
        self.retry.set(Some((max_retries, retry_base)));
    }

    /// Effective `(max_retries, retry_base)` for this handle.
    fn retry_policy(&self) -> (u32, SimDuration) {
        self.retry
            .get()
            .unwrap_or((self.pfs.params.max_retries, self.pfs.params.retry_base))
    }

    /// The write epoch this handle stamps on its requests.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Set the handle's write epoch (crash-tolerance redo path).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.set(epoch);
    }

    /// Exempt this handle (and handles cloned from it afterwards) from
    /// the write-epoch fence. The cache layer sets this before spawning
    /// sync threads: cached bytes were already acked with stable
    /// content, so their background replay must land regardless of any
    /// fence raised by a collective redo.
    pub fn set_fence_exempt(&self, exempt: bool) {
        self.fence_exempt.set(exempt);
    }

    /// Raise the file's write-epoch fence to at least `epoch`: every
    /// write stamped with an older epoch still completes (its I/O time
    /// is already spent) but records nothing in the file, making a
    /// redone two-phase round idempotent against stragglers from the
    /// failed round. Monotonic — a lower value never lowers the fence.
    pub fn raise_fence(&self, epoch: u64) {
        let mut st = self.state.borrow_mut();
        st.fence = st.fence.max(epoch);
    }

    /// Stripe unit of this file.
    pub fn stripe_unit(&self) -> u64 {
        self.state.borrow().stripe_unit
    }

    /// Stripe count of this file.
    pub fn stripe_count(&self) -> usize {
        self.state.borrow().stripe_count
    }

    /// Current file size.
    pub fn size(&self) -> u64 {
        self.state.borrow().size
    }

    /// Take a recycled chunk buffer from the instance pool (returned
    /// by [`put_chunk_buf`](Self::put_chunk_buf) after the request).
    fn take_chunk_buf(&self) -> Vec<Chunk> {
        self.pfs.chunk_pool.borrow_mut().pop().unwrap_or_default()
    }

    fn put_chunk_buf(&self, mut buf: Vec<Chunk>) {
        buf.clear();
        self.pfs.chunk_pool.borrow_mut().push(buf);
    }

    /// Split `[offset, offset+len)` into per-target chunks following
    /// the striping layout (contiguous same-target pieces merged),
    /// filling `out` (cleared first).
    /// Test convenience: allocate-and-return form of [`Self::chunks_into`].
    #[cfg(test)]
    fn chunks(&self, offset: u64, len: u64) -> Vec<Chunk> {
        let mut out = Vec::new();
        self.chunks_into(offset, len, &mut out);
        out
    }

    fn chunks_into(&self, offset: u64, len: u64, out: &mut Vec<Chunk>) {
        out.clear();
        let st = self.state.borrow();
        let unit = st.stripe_unit;
        let count = st.stripe_count as u64;
        let ntargets = self.pfs.targets.len();
        // Disjoint per-file device regions, aligned to the stripe unit
        // so lock-range rounding never couples unrelated chunks.
        let base = st.file_index * (1u64 << 40).div_ceil(unit) * unit;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let c = pos / unit;
            let within = pos % unit;
            let take = (unit - within).min(end - pos);
            let target = ((st.first_target as u64 + c % count) % ntargets as u64) as usize;
            let dev_offset = base + (c / count) * unit + within;
            if let Some(last) = out.last_mut() {
                if last.target == target && last.dev_offset + last.len == dev_offset {
                    last.len += take;
                    pos += take;
                    continue;
                }
            }
            out.push(Chunk {
                target,
                dev_offset,
                file_offset: pos,
                len: take,
            });
            pos += take;
        }
    }

    /// Run every chunk's I/O concurrently (chunks on different targets
    /// proceed in parallel) and return the first error in chunk order.
    /// Small fan-outs — the steady-state case — join inline without
    /// allocating; oversized ones fall back to spawned tasks.
    async fn run_write_chunks(&self, client: NodeId, chunks: &[Chunk]) -> Result<(), PfsError> {
        if chunks.len() <= CHUNK_JOIN_SLOTS {
            let mut join: FixedJoin<_, CHUNK_JOIN_SLOTS> = FixedJoin::new();
            for &chunk in chunks {
                join.push(self.write_chunk(client, chunk));
            }
            for r in std::pin::pin!(join).await.into_iter().flatten() {
                r?;
            }
        } else {
            let mut hs = Vec::with_capacity(chunks.len());
            for &chunk in chunks {
                let this = self.clone();
                hs.push(spawn(async move { this.write_chunk(client, chunk).await }));
            }
            for r in join_all(hs).await {
                r?;
            }
        }
        Ok(())
    }

    async fn write_chunk(&self, client: NodeId, chunk: Chunk) -> Result<(), PfsError> {
        let pfs = &self.pfs;
        let t = &pfs.targets[chunk.target];
        let t0 = e10_simcore::now();
        trace::emit(|| {
            Event::new(Layer::Pfs, "write_chunk", EventKind::Begin)
                .node(client)
                .field("target", chunk.target)
                .field("bytes", chunk.len)
                .field("queue_depth", t.handler.queue_len())
        });
        trace::counter("pfs.write_chunks", 1);
        trace::counter("pfs.write_bytes", chunk.len);
        let policy = self.retry_policy();
        // Client → server wire transfer (data + header), with retry on
        // injected RPC failures.
        pfs.submit_rpc(client, chunk.target, "write", chunk.len + 128, policy)
            .await?;
        // Bulk-payload checksum (as in Lustre's bulk RPC checksums):
        // injected wire corruption is caught by the server, which asks
        // the client to retransmit the payload. The netsim layer moves
        // only byte counts, so the write path consumes the fault here
        // and pays the extra transfer. A link that corrupts every
        // retransmission surfaces as a typed error — never as silently
        // rotten object data.
        let mut attempts: u32 = 1;
        while !e10_faultsim::link_corrupt(client, t.node, chunk.len).is_empty() {
            trace::emit(|| {
                Event::new(Layer::Pfs, "wire.retransmit", EventKind::Point)
                    .node(client)
                    .field("target", chunk.target)
                    .field("bytes", chunk.len)
                    .field("attempt", attempts)
            });
            trace::counter("pfs.wire_retransmits", 1);
            attempts += 1;
            if attempts > policy.0 + 1 {
                return Err(PfsError::WireChecksum {
                    target: chunk.target,
                    attempts,
                });
            }
            // Error reply back, then the payload travels again.
            pfs.net.transfer(t.node, client, 64).await;
            pfs.net.transfer(client, t.node, chunk.len + 128).await;
        }
        // Stripe-granular extent lock (the file-system locking
        // protocol): taken when the server starts processing the
        // request, so conflicting writers serialise for the whole
        // server-side path (ingest + commit + cache acceptance).
        let unit = self.state.borrow().stripe_unit;
        let lstart = (chunk.dev_offset / unit) * unit;
        let lend = (chunk.dev_offset + chunk.len).div_ceil(unit) * unit;
        let _lock = t.stripe_locks.lock(lstart..lend, LockMode::Exclusive).await;
        // Server NIC → storage path.
        t.ingest.serve(chunk.len as f64).await;
        // RPC handling + journal commit on a handler thread; the
        // commit path carries the server-side jitter (load imbalance).
        let j = t.jitter.borrow_mut().sample();
        t.handler
            .serve(pfs.params.rpc_overhead + pfs.params.commit_latency.mul_f64(j))
            .await;
        // Accept into the controller write-back cache: instant-ish when
        // the cache has room, throttled to the destage rate when full.
        t.wbc.write(chunk.len).await;
        // Ack back to the client.
        pfs.net.transfer(t.node, client, 64).await;
        t.bytes_written.borrow_mut().push(chunk.len as f64);
        let latency = e10_simcore::now().since(t0).as_secs_f64();
        t.write_latency.borrow_mut().push(latency);
        trace::emit(|| {
            Event::new(Layer::Pfs, "write_chunk", EventKind::End)
                .node(client)
                .field("target", chunk.target)
                .field("bytes", chunk.len)
                .field("latency_s", latency)
                .field("queue_depth", t.handler.queue_len())
        });
        trace::sample("pfs.write_chunk_latency_s", latency);
        Ok(())
    }

    /// Read-side analogue of [`Self::run_write_chunks`].
    async fn run_read_chunks(&self, client: NodeId, chunks: &[Chunk]) -> Result<(), PfsError> {
        if chunks.len() <= CHUNK_JOIN_SLOTS {
            let mut join: FixedJoin<_, CHUNK_JOIN_SLOTS> = FixedJoin::new();
            for &chunk in chunks {
                join.push(self.read_chunk(client, chunk));
            }
            for r in std::pin::pin!(join).await.into_iter().flatten() {
                r?;
            }
        } else {
            let mut hs = Vec::with_capacity(chunks.len());
            for &chunk in chunks {
                let this = self.clone();
                hs.push(spawn(async move { this.read_chunk(client, chunk).await }));
            }
            for r in join_all(hs).await {
                r?;
            }
        }
        Ok(())
    }

    async fn read_chunk(&self, client: NodeId, chunk: Chunk) -> Result<(), PfsError> {
        let pfs = &self.pfs;
        let t = &pfs.targets[chunk.target];
        trace::emit(|| {
            Event::new(Layer::Pfs, "read_chunk", EventKind::Begin)
                .node(client)
                .field("target", chunk.target)
                .field("bytes", chunk.len)
                .field("queue_depth", t.handler.queue_len())
        });
        trace::counter("pfs.read_chunks", 1);
        trace::counter("pfs.read_bytes", chunk.len);
        pfs.submit_rpc(client, chunk.target, "read", 128, self.retry_policy())
            .await?;
        let unit = self.state.borrow().stripe_unit;
        let lstart = (chunk.dev_offset / unit) * unit;
        let lend = (chunk.dev_offset + chunk.len).div_ceil(unit) * unit;
        let _lock = t.stripe_locks.lock(lstart..lend, LockMode::Shared).await;
        t.handler.serve(pfs.params.rpc_overhead).await;
        let raid = t.raid.clone();
        let (off, l) = (chunk.dev_offset, chunk.len);
        let h = spawn(async move { raid.read(off, l).await });
        pfs.backend.serve(chunk.len as f64).await;
        h.await;
        pfs.net.transfer(t.node, client, chunk.len + 64).await;
        trace::emit(|| {
            Event::new(Layer::Pfs, "read_chunk", EventKind::End)
                .node(client)
                .field("target", chunk.target)
                .field("bytes", chunk.len)
        });
        Ok(())
    }

    /// Apply lazy media-rot bit flips to the stored object.
    fn apply_corruption(st: &mut PfsFileState, hits: Vec<(u64, u8)>) {
        for (pos, mask) in hits {
            if let Some(b) = st.data.byte_at(pos) {
                st.data.insert(pos, 1, Source::literal(vec![b ^ mask]));
            }
        }
    }

    /// Write `payload` at `offset`; returns when all stripe chunks are
    /// committed. Chunks to different targets proceed in parallel. On
    /// error nothing is recorded in the file map: the client cannot
    /// know which chunks landed, so the whole request counts as failed.
    pub async fn write(
        &self,
        client: NodeId,
        offset: u64,
        payload: Payload,
    ) -> Result<(), PfsError> {
        let len = payload.len;
        if len == 0 {
            return Ok(());
        }
        let mut chunks = self.take_chunk_buf();
        self.chunks_into(offset, len, &mut chunks);
        let outcome = self.run_write_chunks(client, &chunks).await;
        self.put_chunk_buf(chunks);
        outcome?;
        let mut st = self.state.borrow_mut();
        if !self.fence_exempt.get() && self.epoch.get() < st.fence {
            trace::counter("pfs.fenced_writes", 1);
            return Ok(());
        }
        st.data.insert(offset, len, payload.src);
        st.size = st.size.max(offset + len);
        Ok(())
    }

    /// Write a set of disjoint `(offset, payload)` pieces as ONE
    /// spanning I/O of `[span_start, span_start + span_len)` — the
    /// shape of a data-sieving read-modify-write, where the whole
    /// collective-buffer window is written back but only the pieces
    /// carry new content. Timing covers the full span; the extent map
    /// only records the pieces (the rest re-writes old data).
    pub async fn write_span_pieces(
        &self,
        client: NodeId,
        span_start: u64,
        span_len: u64,
        pieces: Vec<(u64, Payload)>,
    ) -> Result<(), PfsError> {
        if span_len == 0 {
            return Ok(());
        }
        let mut chunks = self.take_chunk_buf();
        self.chunks_into(span_start, span_len, &mut chunks);
        let outcome = self.run_write_chunks(client, &chunks).await;
        self.put_chunk_buf(chunks);
        outcome?;
        let mut st = self.state.borrow_mut();
        if !self.fence_exempt.get() && self.epoch.get() < st.fence {
            trace::counter("pfs.fenced_writes", 1);
            return Ok(());
        }
        for (off, p) in pieces {
            debug_assert!(off >= span_start && off + p.len <= span_start + span_len);
            let len = p.len;
            st.data.insert(off, len, p.src);
            st.size = st.size.max(off + len);
        }
        st.size = st.size.max(span_start + span_len);
        Ok(())
    }

    /// Read `[offset, offset+len)`: charges transfer/device time and
    /// returns the stored pieces (holes as `None`).
    pub async fn read(
        &self,
        client: NodeId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(Range<u64>, Option<Source>)>, PfsError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut chunks = self.take_chunk_buf();
        self.chunks_into(offset, len, &mut chunks);
        let outcome = self.run_read_chunks(client, &chunks).await;
        self.put_chunk_buf(chunks);
        outcome?;
        // Lazy media rot: corruption of the stored object materialises
        // at read time (undetected until somebody looks), and persists.
        let rot: Vec<(u64, u8)> = e10_faultsim::pfs_corrupt(len)
            .into_iter()
            .filter_map(|c| match c {
                e10_faultsim::Corruption::BitFlip { offset: rel, mask } => {
                    Some((offset + rel, mask))
                }
                e10_faultsim::Corruption::TornSector { .. } => None,
            })
            .collect();
        if !rot.is_empty() {
            Self::apply_corruption(&mut self.state.borrow_mut(), rot);
        }
        Ok(self.state.borrow().data.lookup(offset, len))
    }

    /// Take a byte-range lock on the file (used by the E10 `coherent`
    /// cache mode). One metadata RPC, then a grant from the per-file
    /// lock service.
    pub async fn lock_extent(
        &self,
        client: NodeId,
        range: Range<u64>,
        mode: LockMode,
    ) -> RangeLockGuard {
        self.pfs.meta_rpc(client).await;
        let rl = self.state.borrow().range_lock.clone();
        rl.lock(range, mode).await
    }

    /// Close the handle (one metadata RPC).
    pub async fn close(&self, client: NodeId) {
        self.pfs.meta_rpc(client).await;
        self.state.borrow_mut().open_handles -= 1;
    }

    /// Release an attached handle without a metadata RPC (the
    /// deferred-open counterpart of [`Pfs::attach`]).
    pub fn detach(&self) {
        self.state.borrow_mut().open_handles -= 1;
    }

    /// The file's logical contents (verification oracle).
    pub fn extents(&self) -> ExtentMap {
        self.state.borrow().data.clone()
    }

    /// See [`Pfs::server_load`].
    pub fn server_load(&self) -> f64 {
        self.pfs.server_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_netsim::NetConfig;
    use e10_simcore::{now, run};

    /// 8 client nodes (0..8), MDS on node 8, targets on nodes 9..13.
    fn small_cluster() -> (Rc<Network>, Rc<Pfs>) {
        let net = Rc::new(Network::new(NetConfig::ib_qdr(13), 13));
        let mut params = PfsParams::deep_er();
        params.disk.jitter_cv = 0.0;
        let pfs = Pfs::new(params, Rc::clone(&net), 8, (9..13).collect(), 42);
        (net, pfs)
    }

    #[test]
    fn create_write_read_roundtrip() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/out", Striping::default()).await;
            f.write(0, 0, Payload::gen(5, 0, 1 << 20)).await.unwrap();
            assert_eq!(f.size(), 1 << 20);
            let pieces = f.read(1, 0, 1 << 20).await.unwrap();
            assert!(pieces.iter().all(|(_, s)| s.is_some()));
            assert!(f.extents().verify_gen(5, 0, 1 << 20).is_ok());
        });
    }

    #[test]
    fn chunking_follows_striping() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/a",
                    Striping {
                        unit: Some(100),
                        count: Some(4),
                    },
                )
                .await;
            let chunks = f.chunks(50, 300);
            assert_eq!(chunks.len(), 4);
            assert_eq!(chunks[0].len, 50);
            assert_eq!(chunks[1].len, 100);
            let total: u64 = chunks.iter().map(|c| c.len).sum();
            assert_eq!(total, 300);
            let targets: std::collections::HashSet<usize> =
                chunks.iter().map(|c| c.target).collect();
            assert_eq!(targets.len(), 4, "round-robin over 4 targets");
        });
    }

    #[test]
    fn stripe_count_one_uses_single_target() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/a",
                    Striping {
                        unit: Some(100),
                        count: Some(1),
                    },
                )
                .await;
            let chunks = f.chunks(0, 1000);
            // All on one target, merged into a single contiguous chunk.
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].len, 1000);
        });
    }

    #[test]
    fn second_file_starts_on_next_target_and_disjoint_region() {
        run(async {
            let (_net, pfs) = small_cluster();
            let a = pfs
                .create(
                    0,
                    "/gfs/a",
                    Striping {
                        unit: Some(100),
                        count: Some(2),
                    },
                )
                .await;
            let b = pfs
                .create(
                    0,
                    "/gfs/b",
                    Striping {
                        unit: Some(100),
                        count: Some(2),
                    },
                )
                .await;
            let ca = a.chunks(0, 100)[0];
            let cb = b.chunks(0, 100)[0];
            assert_ne!(ca.target, cb.target);
            assert_ne!(ca.dev_offset, cb.dev_offset);
        });
    }

    #[test]
    fn open_missing_file_errors() {
        run(async {
            let (_net, pfs) = small_cluster();
            let r = pfs.open(0, "/gfs/none").await;
            assert!(matches!(r, Err(PfsError::NotFound(_))));
        });
    }

    #[test]
    fn parallel_clients_beat_single_client() {
        let (t_single, t_multi) = run(async {
            let (_net, pfs) = small_cluster();
            let size = 64u64 << 20;
            let f = pfs.create(0, "/gfs/s", Striping::default()).await;
            let t0 = now();
            for i in 0..(size / (4 << 20)) {
                f.write(0, i * (4 << 20), Payload::gen(1, i * (4 << 20), 4 << 20))
                    .await
                    .unwrap();
            }
            let t_single = now().since(t0).as_secs_f64();

            let g = pfs.create(0, "/gfs/m", Striping::default()).await;
            let t1 = now();
            let mut hs = Vec::new();
            for c in 0..4u64 {
                let g = g.clone();
                hs.push(spawn(async move {
                    let share = size / 4;
                    for i in 0..(share / (4 << 20)) {
                        let off = c * share + i * (4 << 20);
                        g.write(c as usize, off, Payload::gen(2, off, 4 << 20))
                            .await
                            .unwrap();
                    }
                }));
            }
            join_all(hs).await;
            (t_single, now().since(t1).as_secs_f64())
        });
        assert!(
            t_multi < t_single * 0.7,
            "multi={t_multi} single={t_single}"
        );
    }

    #[test]
    fn small_buffer_stream_is_latency_bound() {
        let bw = run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/s", Striping::default()).await;
            let chunk = 512u64 << 10; // the paper's ind_wr_buffer_size
            let total = 64u64 << 20;
            let t0 = now();
            for i in 0..(total / chunk) {
                f.write(0, i * chunk, Payload::gen(1, i * chunk, chunk))
                    .await
                    .unwrap();
            }
            total as f64 / now().since(t0).as_secs_f64()
        });
        // A 512 KB-at-a-time serial stream must land well below the
        // aggregate system bandwidth.
        assert!((50e6..400e6).contains(&bw), "per-stream bw={bw}");
    }

    #[test]
    fn unaligned_writers_contend_on_stripe_locks() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/c",
                    Striping {
                        unit: Some(1 << 20),
                        count: Some(1),
                    },
                )
                .await;
            let mut hs = Vec::new();
            // Two clients write halves of the SAME stripe unit.
            for c in 0..2u64 {
                let f = f.clone();
                hs.push(spawn(async move {
                    f.write(c as usize, c * (512 << 10), Payload::zero(512 << 10))
                        .await
                        .unwrap();
                }));
            }
            join_all(hs).await;
            let (_, contended) = pfs.lock_contention();
            assert!(contended >= 1, "expected stripe-lock contention");
        });
    }

    #[test]
    fn aligned_writers_do_not_contend() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/c",
                    Striping {
                        unit: Some(1 << 20),
                        count: Some(1),
                    },
                )
                .await;
            let mut hs = Vec::new();
            for c in 0..2u64 {
                let f = f.clone();
                hs.push(spawn(async move {
                    f.write(c as usize, c * (1 << 20), Payload::zero(1 << 20))
                        .await
                        .unwrap();
                }));
            }
            join_all(hs).await;
            let (_, contended) = pfs.lock_contention();
            assert_eq!(contended, 0);
        });
    }

    #[test]
    fn coherent_mode_extent_locks_block_readers() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/l", Striping::default()).await;
            let g = f.lock_extent(0, 0..1024, LockMode::Exclusive).await;
            let f2 = f.clone();
            let h = spawn(async move {
                let _r = f2.lock_extent(1, 0..10, LockMode::Shared).await;
                now().as_secs_f64()
            });
            e10_simcore::sleep(SimDuration::from_secs(1)).await;
            drop(g);
            let t = h.await;
            assert!(t >= 1.0, "reader must wait for the writer, got {t}");
        });
    }

    #[test]
    fn write_latency_statistics_show_jitter() {
        run(async {
            let net = Rc::new(Network::new(NetConfig::ib_qdr(13), 13));
            let pfs = Pfs::new(
                PfsParams::deep_er(),
                Rc::clone(&net),
                8,
                (9..13).collect(),
                7,
            );
            let f = pfs.create(0, "/gfs/j", Striping::default()).await;
            for i in 0..32u64 {
                f.write(0, i * (4 << 20), Payload::zero(4 << 20))
                    .await
                    .unwrap();
            }
            let lat = pfs.target_write_latencies();
            let total: u64 = lat.iter().map(|t| t.count()).sum();
            assert_eq!(total, 32);
            let any_jitter = lat.iter().any(|t| t.count() > 2 && t.cv() > 0.01);
            assert!(any_jitter, "disk jitter must surface in service times");
        });
    }

    #[test]
    fn transient_rpc_failures_are_retried_and_recover() {
        let (t_clean, t_faulty, retried) = run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/r", Striping::default()).await;
            let t0 = now();
            f.write(0, 0, Payload::gen(1, 0, 1 << 20)).await.unwrap();
            let t_clean = now().since(t0).as_secs_f64();

            // Every RPC fails for the next 20 ms; the exponential
            // backoff carries the retries past the window.
            let horizon = now() + SimDuration::from_millis(20);
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(None, now()..horizon, 1.0),
            );
            let t1 = now();
            f.write(0, 1 << 20, Payload::gen(1, 1 << 20, 1 << 20))
                .await
                .unwrap();
            let t_faulty = now().since(t1).as_secs_f64();
            (t_clean, t_faulty, e10_faultsim::injected_count())
        });
        assert!(retried >= 1, "at least one RPC must have failed");
        assert!(
            t_faulty > t_clean,
            "retries must cost time: clean={t_clean} faulty={t_faulty}"
        );
    }

    #[test]
    fn exhausted_retries_surface_with_source_chain() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/x", Striping::default()).await;
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(None, e10_faultsim::always(), 1.0),
            );
            let err = f
                .write(0, 0, Payload::gen(1, 0, 4096))
                .await
                .expect_err("all retries must be exhausted");
            let PfsError::RpcExhausted { op, attempts, .. } = &err else {
                panic!("unexpected error {err:?}");
            };
            assert_eq!(*op, "write");
            assert_eq!(
                *attempts,
                pfs.params().max_retries + 1,
                "initial attempt plus every retry"
            );
            use std::error::Error;
            let src = err.source().expect("source chain must be intact");
            assert!(src.to_string().contains("rpc failed"), "source={src}");
            // Nothing may be recorded for a failed write.
            assert_eq!(f.size(), 0);
            assert!(f.extents().holes(0, 4096).len() == 1);
        });
    }

    #[test]
    fn wire_corruption_is_caught_and_retransmitted() {
        let (injected, verified) = run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/w",
                    Striping {
                        unit: Some(1 << 20),
                        count: Some(2),
                    },
                )
                .await;
            let _g =
                e10_faultsim::FaultSchedule::install(e10_faultsim::FaultPlan::new(9).link_corrupt(
                    None,
                    None,
                    e10_faultsim::always(),
                    0.3,
                ));
            f.write(0, 0, Payload::gen(4, 0, 8 << 20)).await.unwrap();
            (
                e10_faultsim::injected_count(),
                f.extents().verify_gen(4, 0, 8 << 20).is_ok(),
            )
        });
        assert!(injected >= 1, "at least one transfer must corrupt");
        assert!(verified, "retransmission must deliver intact data");
    }

    #[test]
    fn persistently_corrupting_link_surfaces_a_typed_error() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/wx", Striping::default()).await;
            let _g =
                e10_faultsim::FaultSchedule::install(e10_faultsim::FaultPlan::new(9).link_corrupt(
                    None,
                    None,
                    e10_faultsim::always(),
                    1.0,
                ));
            let err = f
                .write(0, 0, Payload::gen(4, 0, 4096))
                .await
                .expect_err("every retransmission corrupts");
            assert!(matches!(err, PfsError::WireChecksum { .. }), "{err:?}");
            // Nothing may be recorded for the failed write.
            assert_eq!(f.size(), 0);
        });
    }

    #[test]
    fn reads_retry_too_and_failures_target_only_the_declared_target() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs
                .create(
                    0,
                    "/gfs/t",
                    Striping {
                        unit: Some(1 << 20),
                        count: Some(1),
                    },
                )
                .await;
            f.write(0, 0, Payload::gen(2, 0, 1 << 20)).await.unwrap();
            let victim = f.chunks(0, 1).pop().unwrap().target;
            // Fail a DIFFERENT target: this file never touches it.
            let other = (victim + 1) % pfs.params().data_targets;
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(Some(other), e10_faultsim::always(), 1.0),
            );
            f.read(1, 0, 1 << 20).await.unwrap();
            assert_eq!(e10_faultsim::injected_count(), 0);
            drop(_g);
            // Now fail the file's own target: reads must error out.
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(Some(victim), e10_faultsim::always(), 1.0),
            );
            let err = f.read(1, 0, 1 << 20).await.expect_err("read must fail");
            assert!(matches!(err, PfsError::RpcExhausted { op: "read", .. }));
        });
    }

    #[test]
    fn backoff_grows_exponentially() {
        // With N allowed retries and 100% failure, the total backoff is
        // at least retry_base * (2^N - 1) (jitter only stretches it).
        let elapsed = run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/b", Striping::default()).await;
            let t0 = now();
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(None, e10_faultsim::always(), 1.0),
            );
            let _ = f.write(0, 0, Payload::gen(1, 0, 4096)).await;
            now().since(t0).as_secs_f64()
        });
        let base = 0.002;
        let floor = base * ((1 << 4) - 1) as f64; // 4 retries
        assert!(
            elapsed >= floor,
            "elapsed={elapsed} must include exponential backoff >= {floor}"
        );
    }

    #[test]
    fn retry_policy_override_changes_the_exhaustion_point() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/rp", Striping::default()).await;
            f.set_retry_policy(1, SimDuration::from_micros(100));
            let _g = e10_faultsim::FaultSchedule::install(
                e10_faultsim::FaultPlan::new(3).rpc_fail(None, e10_faultsim::always(), 1.0),
            );
            let err = f
                .write(0, 0, Payload::gen(1, 0, 4096))
                .await
                .expect_err("retries must be exhausted");
            let PfsError::RpcExhausted { attempts, .. } = err else {
                panic!("unexpected error {err:?}");
            };
            assert_eq!(attempts, 2, "override allows one retry, not the default 4");
        });
    }

    #[test]
    fn retry_policy_survives_handle_clones() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/rpc2", Striping::default()).await;
            f.set_retry_policy(0, SimDuration::from_micros(50));
            let clone = f.clone();
            assert_eq!(clone.retry_policy(), (0, SimDuration::from_micros(50)));
        });
    }

    #[test]
    fn write_epoch_fence_discards_stale_writes() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/fence", Striping::default()).await;
            f.write(0, 0, Payload::gen(1, 0, 4096)).await.unwrap();
            // A redo begins: the fence rises to epoch 1. The straggler
            // handle still stamps epoch 0, so its write lands nowhere.
            f.raise_fence(1);
            f.write(0, 0, Payload::gen(9, 0, 4096)).await.unwrap();
            assert!(
                f.extents().verify_gen(1, 0, 4096).is_ok(),
                "stale write must not clobber the pre-fence contents"
            );
            // The redoing handle adopts epoch 1 and its write sticks.
            f.set_epoch(1);
            f.write(0, 0, Payload::gen(9, 0, 4096)).await.unwrap();
            assert!(f.extents().verify_gen(9, 0, 4096).is_ok());
            // Fences are monotonic: raising to an older epoch is a no-op.
            f.raise_fence(0);
            assert_eq!(f.state.borrow().fence, 1);
        });
    }

    #[test]
    fn fenced_span_pieces_complete_without_recording() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/fsp", Striping::default()).await;
            f.raise_fence(1);
            f.write_span_pieces(0, 0, 8192, vec![(0, Payload::gen(3, 0, 4096))])
                .await
                .unwrap();
            assert_eq!(f.size(), 0, "fenced span must record neither data nor size");
            assert_eq!(f.extents().holes(0, 4096).len(), 1);
        });
    }

    #[test]
    fn close_decrements_handles() {
        run(async {
            let (_net, pfs) = small_cluster();
            let f = pfs.create(0, "/gfs/h", Striping::default()).await;
            let f2 = pfs.open(1, "/gfs/h").await.unwrap();
            assert_eq!(f.state.borrow().open_handles, 2);
            f2.close(1).await;
            f.close(0).await;
            assert_eq!(f.state.borrow().open_handles, 0);
            assert!(pfs.exists("/gfs/h"));
        });
    }
}
