//! Byte-range lock manager.
//!
//! Models the extent-based file locking of parallel file systems
//! (Lustre's DLM, BeeGFS's range locks): writers take exclusive locks on
//! byte ranges, readers shared locks. Grants are FIFO-fair — a request
//! never overtakes an earlier conflicting one — so two aggregators whose
//! file domains share a stripe serialise exactly as on the real system.
//!
//! ROMIO's `ADIOI_WRITE_LOCK` / `ADIOI_READ_LOCK` / `ADIOI_UNLOCK`
//! macros map onto [`RangeLock::lock`] and dropping the returned guard.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use e10_simcore::Flag;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

#[derive(Clone)]
struct Held {
    id: u64,
    range: Range<u64>,
    mode: LockMode,
}

struct Waiter {
    id: u64,
    range: Range<u64>,
    mode: LockMode,
    granted: Flag,
}

struct LockState {
    held: Vec<Held>,
    queue: Vec<Waiter>,
    next_id: u64,
    grants: u64,
    contended_grants: u64,
}

/// A byte-range lock table for one file.
#[derive(Clone)]
pub struct RangeLock {
    inner: Rc<RefCell<LockState>>,
}

/// Guard for a held range lock; releases on drop.
pub struct RangeLockGuard {
    inner: Rc<RefCell<LockState>>,
    id: u64,
}

fn overlaps(a: &Range<u64>, b: &Range<u64>) -> bool {
    a.start < b.end && b.start < a.end
}

fn conflicts(am: LockMode, bm: LockMode) -> bool {
    am == LockMode::Exclusive || bm == LockMode::Exclusive
}

impl Default for RangeLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeLock {
    /// New, empty lock table.
    pub fn new() -> Self {
        RangeLock {
            inner: Rc::new(RefCell::new(LockState {
                held: Vec::new(),
                queue: Vec::new(),
                next_id: 0,
                grants: 0,
                contended_grants: 0,
            })),
        }
    }

    /// Acquire a lock on `range` in `mode`; waits FIFO-fairly behind
    /// conflicting holders and earlier conflicting waiters.
    pub async fn lock(&self, range: Range<u64>, mode: LockMode) -> RangeLockGuard {
        assert!(range.start < range.end, "empty lock range");
        {
            // Uncontended fast path: the queue only ever holds blocked
            // waiters (try_grant drains grantable ones eagerly), so a
            // request conflicting with neither holders nor the queue is
            // exactly what try_grant would grant on the spot — take the
            // lock without allocating a wait flag. A set flag resolves
            // `wait()` without yielding, so skipping it is invisible to
            // event ordering.
            let mut st = self.inner.borrow_mut();
            let free = !st
                .held
                .iter()
                .any(|h| overlaps(&h.range, &range) && conflicts(h.mode, mode))
                && !st
                    .queue
                    .iter()
                    .any(|w| overlaps(&w.range, &range) && conflicts(w.mode, mode));
            if free {
                let id = st.next_id;
                st.next_id += 1;
                st.grants += 1;
                st.held.push(Held { id, range, mode });
                return RangeLockGuard {
                    inner: Rc::clone(&self.inner),
                    id,
                };
            }
        }
        let (id, flag, contended) = {
            let mut st = self.inner.borrow_mut();
            let id = st.next_id;
            st.next_id += 1;
            let flag = Flag::new();
            let w = Waiter {
                id,
                range: range.clone(),
                mode,
                granted: flag.clone(),
            };
            st.queue.push(w);
            let before = st.grants;
            st.try_grant();
            let contended = !flag.is_set();
            let _ = before;
            (id, flag, contended)
        };
        flag.wait().await;
        if contended {
            self.inner.borrow_mut().contended_grants += 1;
        }
        RangeLockGuard {
            inner: Rc::clone(&self.inner),
            id,
        }
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self, range: Range<u64>, mode: LockMode) -> Option<RangeLockGuard> {
        let mut st = self.inner.borrow_mut();
        let blocked = st
            .held
            .iter()
            .any(|h| overlaps(&h.range, &range) && conflicts(h.mode, mode))
            || st
                .queue
                .iter()
                .any(|w| overlaps(&w.range, &range) && conflicts(w.mode, mode));
        if blocked {
            return None;
        }
        let id = st.next_id;
        st.next_id += 1;
        st.grants += 1;
        st.held.push(Held { id, range, mode });
        Some(RangeLockGuard {
            inner: Rc::clone(&self.inner),
            id,
        })
    }

    /// Number of locks currently held.
    pub fn held_count(&self) -> usize {
        self.inner.borrow().held.len()
    }

    /// Number of requests currently waiting.
    pub fn waiting(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Total grants, and how many of them had to wait (a direct measure
    /// of stripe-lock contention).
    pub fn contention_stats(&self) -> (u64, u64) {
        let st = self.inner.borrow();
        (st.grants, st.contended_grants)
    }
}

impl LockState {
    /// Grant queued requests in FIFO order; stop scanning past a waiter
    /// only if later waiters don't conflict with it (no overtaking of
    /// conflicting requests — prevents writer starvation).
    fn try_grant(&mut self) {
        let mut blocked: Vec<(Range<u64>, LockMode)> = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let w = &self.queue[i];
            let conflict_held = self
                .held
                .iter()
                .any(|h| overlaps(&h.range, &w.range) && conflicts(h.mode, w.mode));
            let conflict_earlier = blocked
                .iter()
                .any(|(r, m)| overlaps(r, &w.range) && conflicts(*m, w.mode));
            if conflict_held || conflict_earlier {
                blocked.push((w.range.clone(), w.mode));
                i += 1;
            } else {
                let w = self.queue.remove(i);
                self.grants += 1;
                self.held.push(Held {
                    id: w.id,
                    range: w.range,
                    mode: w.mode,
                });
                w.granted.set();
            }
        }
    }
}

impl Drop for RangeLockGuard {
    fn drop(&mut self) {
        let mut st = self.inner.borrow_mut();
        st.held.retain(|h| h.id != self.id);
        st.try_grant();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{now, run, sleep, spawn, SimDuration};

    #[test]
    fn exclusive_locks_on_overlapping_ranges_serialise() {
        let t = run(async {
            let rl = RangeLock::new();
            let mut hs = Vec::new();
            for _ in 0..3 {
                let rl = rl.clone();
                hs.push(spawn(async move {
                    let _g = rl.lock(0..100, LockMode::Exclusive).await;
                    sleep(SimDuration::from_secs(1)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        assert_eq!(t, 3.0);
    }

    #[test]
    fn disjoint_ranges_run_in_parallel() {
        let t = run(async {
            let rl = RangeLock::new();
            let mut hs = Vec::new();
            for i in 0..3u64 {
                let rl = rl.clone();
                hs.push(spawn(async move {
                    let _g = rl.lock(i * 100..(i + 1) * 100, LockMode::Exclusive).await;
                    sleep(SimDuration::from_secs(1)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        assert_eq!(t, 1.0);
    }

    #[test]
    fn shared_locks_coexist_but_block_writers() {
        let t = run(async {
            let rl = RangeLock::new();
            let mut hs = Vec::new();
            for _ in 0..4 {
                let rl = rl.clone();
                hs.push(spawn(async move {
                    let _g = rl.lock(0..10, LockMode::Shared).await;
                    sleep(SimDuration::from_secs(2)).await;
                }));
            }
            let rl2 = rl.clone();
            hs.push(spawn(async move {
                sleep(SimDuration::from_secs(1)).await;
                let _g = rl2.lock(5..6, LockMode::Exclusive).await;
                assert_eq!(now().as_secs_f64(), 2.0);
            }));
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        assert_eq!(t, 2.0);
    }

    #[test]
    fn writer_is_not_starved_by_later_readers() {
        run(async {
            let rl = RangeLock::new();
            // Reader holds the lock.
            let g = rl.lock(0..10, LockMode::Shared).await;
            // Writer queues.
            let rlw = rl.clone();
            let writer = spawn(async move {
                let _g = rlw.lock(0..10, LockMode::Exclusive).await;
                now().as_secs_f64()
            });
            // A later reader must NOT overtake the queued writer.
            let rlr = rl.clone();
            let reader = spawn(async move {
                sleep(SimDuration::from_millis(1)).await;
                let _g = rlr.lock(0..10, LockMode::Shared).await;
                now().as_secs_f64()
            });
            sleep(SimDuration::from_secs(1)).await;
            drop(g);
            let tw = writer.await;
            let tr = reader.await;
            assert!(tw <= tr, "writer at {tw}, reader at {tr}");
        });
    }

    #[test]
    fn try_lock_respects_conflicts() {
        run(async {
            let rl = RangeLock::new();
            let g = rl.try_lock(0..10, LockMode::Exclusive).unwrap();
            assert!(rl.try_lock(5..15, LockMode::Shared).is_none());
            assert!(rl.try_lock(10..20, LockMode::Exclusive).is_some());
            drop(g);
            assert!(rl.try_lock(0..10, LockMode::Shared).is_some());
        });
    }

    #[test]
    fn contention_stats_count_waits() {
        run(async {
            let rl = RangeLock::new();
            {
                let _g = rl.lock(0..10, LockMode::Exclusive).await;
            }
            let g = rl.lock(0..10, LockMode::Exclusive).await;
            let rl2 = rl.clone();
            let h = spawn(async move {
                let _g = rl2.lock(0..10, LockMode::Exclusive).await;
            });
            sleep(SimDuration::from_secs(1)).await;
            drop(g);
            h.await;
            let (grants, contended) = rl.contention_stats();
            assert_eq!(grants, 3);
            assert_eq!(contended, 1);
        });
    }

    #[test]
    #[should_panic(expected = "empty lock range")]
    fn empty_range_panics() {
        run(async {
            let rl = RangeLock::new();
            let _ = rl.lock(5..5, LockMode::Shared).await;
        });
    }
}
