//! Property tests for the parallel file system: the striping layout
//! must be a bijection, writes of arbitrary shapes must verify, and
//! capacity accounting must balance.

use proptest::prelude::*;
use std::rc::Rc;

use e10_netsim::{NetConfig, Network};
use e10_pfs::{Pfs, PfsParams, Striping};
use e10_storesim::Payload;

fn quiet_pfs() -> PfsParams {
    let mut p = PfsParams::deep_er();
    p.disk.jitter_cv = 0.0;
    p.server_jitter_cv = 0.0;
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Arbitrary write sequences to arbitrary striping configurations
    /// end up byte-perfect in the file.
    #[test]
    fn random_writes_verify(
        unit_shift in 7u32..16,
        count in 1usize..4,
        writes in prop::collection::vec((0u64..200_000, 1u64..60_000), 1..8),
    ) {
        e10_simcore::run(async move {
            let net = Rc::new(Network::new(NetConfig::ib_qdr(7), 7));
            let pfs = Pfs::new(quiet_pfs(), Rc::clone(&net), 2, (3..7).collect(), 1);
            let f = pfs
                .create(
                    0,
                    "/gfs/p",
                    Striping { unit: Some(1 << unit_shift), count: Some(count) },
                )
                .await;
            // Later writes win; replay into a model map for comparison.
            let mut model = e10_storesim::ExtentMap::new();
            for (i, &(off, len)) in writes.iter().enumerate() {
                let seed = i as u64 + 1;
                f.write(0, off, Payload::gen(seed, off, len)).await.unwrap();
                model.insert(off, len, e10_storesim::Source::gen_at(seed, off));
            }
            let got = f.extents();
            for &(off, len) in &writes {
                for probe in [off, off + len / 2, off + len - 1] {
                    assert_eq!(got.byte_at(probe), model.byte_at(probe), "byte {probe}");
                }
            }
            assert_eq!(got.covered_bytes(), model.covered_bytes());
        });
    }

    /// Reads after writes return exactly the stored content, for any
    /// alignment.
    #[test]
    fn read_returns_written(
        unit_shift in 7u32..14,
        off in 0u64..100_000,
        len in 1u64..50_000,
        q_off in 0u64..120_000,
        q_len in 1u64..60_000,
    ) {
        e10_simcore::run(async move {
            let net = Rc::new(Network::new(NetConfig::ib_qdr(7), 7));
            let pfs = Pfs::new(quiet_pfs(), Rc::clone(&net), 2, (3..7).collect(), 1);
            let f = pfs
                .create(0, "/gfs/q", Striping { unit: Some(1 << unit_shift), count: None })
                .await;
            f.write(0, off, Payload::gen(9, off, len)).await.unwrap();
            let pieces = f.read(1, q_off, q_len).await.unwrap();
            // Pieces tile the query.
            let mut pos = q_off;
            for (r, src) in pieces {
                assert_eq!(r.start, pos);
                pos = r.end;
                let overlaps = r.start < off + len && off < r.end;
                assert_eq!(src.is_some(), overlaps, "range {r:?}");
            }
            assert_eq!(pos, q_off + q_len);
        });
    }
}
