//! A small, dependency-free property-testing harness exposing the
//! subset of the `proptest` crate's API that this workspace's test
//! suites use. The build environment is fully offline (no crates.io),
//! so the real crate is not available; this shim keeps the test sources
//! unchanged (`use proptest::prelude::*;`, `proptest! { ... }`,
//! strategies, `prop_assert*`) while staying ~400 lines.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its exact inputs (and the
//!   deterministic case seed) instead of a minimised one.
//! * **Deterministic generation.** Cases derive from a fixed hash of
//!   the test's module path and name, so failures reproduce exactly on
//!   every run and machine; `*.proptest-regressions` files are ignored.
//! * Only the strategies our suites use exist: numeric ranges, tuples,
//!   `prop_map`, `prop_oneof!`, `Just`, `any::<bool>()`,
//!   `collection::vec`, `sample::select`, `option::of`.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64 stream).
pub struct TestRng(u64);

impl TestRng {
    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed a case RNG from the test identity and case index.
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case number.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng(h ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15)))
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Runner configuration (functional-update compatible with the real
/// `ProptestConfig { cases: n, .. ProptestConfig::default() }` syntax).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for syntax compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// Generates values of `Self::Value`. Object-safe; combinators carry a
/// `Sized` bound.
pub trait Strategy {
    /// Generated value type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        })*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> OneOf<V> {
    /// Choose uniformly among `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<V: fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `prop::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Vector of `count` (drawn from the range) elements of `element`.
    pub fn vec<S: Strategy>(element: S, count: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        count: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.count.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Uniform choice from a fixed set.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// `prop::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    /// Real proptest's prelude aliases the crate itself as `prop`
    /// (enabling `prop::collection::vec` etc.); so do we.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(test_name, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Per-field formatting: a tuple would cap the arg
                    // count at Debug's 12-element tuple impls.
                    let mut inputs = ::std::string::String::new();
                    $(
                        if !inputs.is_empty() {
                            inputs.push_str(", ");
                        }
                        inputs.push_str(stringify!($arg));
                        inputs.push_str(" = ");
                        inputs.push_str(&format!("{:?}", &$arg));
                    )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {test_name} failed at case {case}/{total}\n  {e}\n  inputs: {inputs}",
                            total = config.cases,
                        );
                    }
                }
            }
        )+
    };
}

/// Declare property tests. Supports the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)+
    ) => {
        $crate::__proptest_fns!(($config) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)+);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0u64..100, 3..10);
        let a: Vec<u64> = Strategy::generate(&s, &mut crate::test_rng("t", 7));
        let b: Vec<u64> = Strategy::generate(&s, &mut crate::test_rng("t", 7));
        assert_eq!(a, b);
        let c: Vec<u64> = Strategy::generate(&s, &mut crate::test_rng("t", 8));
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
            let u = Strategy::generate(&(2usize..5), &mut rng);
            assert!((2..5).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec((0u64..50, 1u64..10), 0..8),
            pick in prop::sample::select(vec![1u64, 4, 8]),
            maybe in prop::option::of(0u64..3),
            flag in any::<bool>(),
            label in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(xs.len() < 8);
            for (a, b) in &xs {
                prop_assert!(*a < 50 && (1..10).contains(b));
            }
            prop_assert!(pick == 1 || pick == 4 || pick == 8);
            if let Some(m) = maybe { prop_assert!(m < 3); }
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(label, "c");
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
