//! MPI derived datatypes, in flattened form.
//!
//! ROMIO works on *flattened* datatypes — sorted `(offset, length)` run
//! lists — rather than type trees, and so do we. [`FlatType`] offers the
//! constructors the benchmarks need (contiguous, vector, indexed and
//! the `MPI_Type_create_subarray` used by coll_perf's 3-D block
//! distribution); [`FileView`] binds a flattened type to a file
//! displacement and answers the central two-phase query: *which pieces
//! of my buffer fall inside this round's file window?*

/// A flattened datatype: sorted, non-overlapping `(offset, len)` runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatType {
    runs: Vec<(u64, u64)>,
    extent: u64,
}

impl FlatType {
    /// A single contiguous run of `len` bytes.
    pub fn contiguous(len: u64) -> Self {
        FlatType {
            runs: if len == 0 { vec![] } else { vec![(0, len)] },
            extent: len,
        }
    }

    /// `count` blocks of `blocklen` bytes, strided by `stride` bytes
    /// (`stride >= blocklen`).
    pub fn vector(count: u64, blocklen: u64, stride: u64) -> Self {
        assert!(stride >= blocklen, "vector stride smaller than block");
        let runs = (0..count).map(|i| (i * stride, blocklen)).collect();
        FlatType {
            runs,
            extent: if count == 0 {
                0
            } else {
                (count - 1) * stride + blocklen
            },
        }
    }

    /// Explicit `(offset, len)` blocks; must be sorted and disjoint.
    pub fn indexed(blocks: Vec<(u64, u64)>) -> Self {
        for w in blocks.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "indexed blocks must be sorted and disjoint"
            );
        }
        let extent = blocks.last().map(|&(o, l)| o + l).unwrap_or(0);
        FlatType {
            runs: blocks.into_iter().filter(|&(_, l)| l > 0).collect(),
            extent,
        }
    }

    /// The C-order sub-array type (`MPI_Type_create_subarray`): a local
    /// block of `lsizes` starting at `starts` within a global array of
    /// `gsizes`, with `elem` bytes per element. The last dimension is
    /// contiguous; each run is one row of the innermost dimension.
    pub fn subarray(gsizes: &[u64], lsizes: &[u64], starts: &[u64], elem: u64) -> Self {
        assert_eq!(gsizes.len(), lsizes.len());
        assert_eq!(gsizes.len(), starts.len());
        assert!(!gsizes.is_empty());
        for d in 0..gsizes.len() {
            assert!(
                starts[d] + lsizes[d] <= gsizes[d],
                "subarray dim {d} out of bounds"
            );
        }
        let ndim = gsizes.len();
        let run_len = lsizes[ndim - 1] * elem;
        // Byte strides of each dimension in the global array.
        let mut gstride = vec![elem; ndim];
        for d in (0..ndim - 1).rev() {
            gstride[d] = gstride[d + 1] * gsizes[d + 1];
        }
        let outer: u64 = lsizes[..ndim - 1].iter().product();
        let mut runs = Vec::with_capacity(outer as usize);
        let mut idx = vec![0u64; ndim - 1];
        loop {
            let mut off = starts[ndim - 1] * elem;
            for d in 0..ndim - 1 {
                off += (starts[d] + idx[d]) * gstride[d];
            }
            runs.push((off, run_len));
            // Odometer increment over the outer dimensions.
            let mut d = ndim - 1;
            loop {
                if d == 0 {
                    let extent: u64 = gstride[0] * gsizes[0];
                    runs.sort_unstable();
                    return FlatType { runs, extent };
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < lsizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// The run list.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.runs.iter().map(|&(_, l)| l).sum()
    }

    /// Distance from first byte to one past the last.
    pub fn extent(&self) -> u64 {
        self.extent
    }
}

/// One piece of a file view: `len` bytes at `file_off` whose data lives
/// at `buf_off` in the process's (logically contiguous) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewPiece {
    /// Absolute file offset.
    pub file_off: u64,
    /// Length in bytes.
    pub len: u64,
    /// Offset within the flattened local buffer.
    pub buf_off: u64,
}

/// A flattened type bound to a file displacement: the per-rank file
/// view of `MPI_File_set_view`.
#[derive(Debug, Clone)]
pub struct FileView {
    pieces: Vec<ViewPiece>,
}

impl FileView {
    /// Bind `flat` at absolute displacement `disp`.
    pub fn new(flat: &FlatType, disp: u64) -> Self {
        let mut pieces = Vec::with_capacity(flat.runs.len());
        let mut buf = 0;
        for &(off, len) in &flat.runs {
            pieces.push(ViewPiece {
                file_off: disp + off,
                len,
                buf_off: buf,
            });
            buf += len;
        }
        FileView { pieces }
    }

    /// All pieces.
    pub fn pieces(&self) -> &[ViewPiece] {
        &self.pieces
    }

    /// Total buffer bytes.
    pub fn total_bytes(&self) -> u64 {
        self.pieces.iter().map(|p| p.len).sum()
    }

    /// First and one-past-last file offsets touched (`(0, 0)` if empty).
    pub fn file_range(&self) -> (u64, u64) {
        match (self.pieces.first(), self.pieces.last()) {
            (Some(f), Some(l)) => (f.file_off, l.file_off + l.len),
            _ => (0, 0),
        }
    }

    /// The (possibly clipped) pieces intersecting file window
    /// `[lo, hi)` — the core two-phase round query. `O(log n + k)`.
    pub fn pieces_in_window(&self, lo: u64, hi: u64) -> Vec<ViewPiece> {
        let mut out = Vec::new();
        self.for_each_piece_in_window(lo, hi, |p| out.push(p));
        out
    }

    /// Allocation-free variant of
    /// [`pieces_in_window`](Self::pieces_in_window): visit each clipped
    /// piece in order instead of collecting them. The two-phase round
    /// loop calls this once per aggregator per round, so the collecting
    /// form would dominate its steady-state allocation count.
    pub fn for_each_piece_in_window(&self, lo: u64, hi: u64, mut f: impl FnMut(ViewPiece)) {
        if lo >= hi || self.pieces.is_empty() {
            return;
        }
        // First piece that could overlap: binary search by end offset.
        let start = self.pieces.partition_point(|p| p.file_off + p.len <= lo);
        for p in &self.pieces[start..] {
            if p.file_off >= hi {
                break;
            }
            let s = p.file_off.max(lo);
            let e = (p.file_off + p.len).min(hi);
            f(ViewPiece {
                file_off: s,
                len: e - s,
                buf_off: p.buf_off + (s - p.file_off),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_vector() {
        let c = FlatType::contiguous(100);
        assert_eq!(c.runs(), &[(0, 100)]);
        assert_eq!(c.total_bytes(), 100);

        let v = FlatType::vector(3, 10, 25);
        assert_eq!(v.runs(), &[(0, 10), (25, 10), (50, 10)]);
        assert_eq!(v.extent(), 60);
        assert_eq!(v.total_bytes(), 30);
    }

    #[test]
    fn subarray_2d() {
        // Global 4x6 bytes (elem=1), local 2x3 starting at (1, 2).
        let f = FlatType::subarray(&[4, 6], &[2, 3], &[1, 2], 1);
        assert_eq!(f.runs(), &[(8, 3), (14, 3)]);
        assert_eq!(f.total_bytes(), 6);
        assert_eq!(f.extent(), 24);
    }

    #[test]
    fn subarray_3d_covers_disjointly() {
        // 8 ranks in a 2x2x2 grid over a 4x4x4 array of 8-byte elems:
        // the views must tile the file exactly.
        let mut all: Vec<(u64, u64)> = Vec::new();
        for rz in 0..2u64 {
            for ry in 0..2u64 {
                for rx in 0..2u64 {
                    let f =
                        FlatType::subarray(&[4, 4, 4], &[2, 2, 2], &[rz * 2, ry * 2, rx * 2], 8);
                    assert_eq!(f.total_bytes(), 8 * 8);
                    all.extend_from_slice(f.runs());
                }
            }
        }
        all.sort_unstable();
        let total: u64 = all.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 4 * 4 * 4 * 8);
        // Disjoint and exactly tiling [0, 512).
        let mut pos = 0;
        for (off, len) in all {
            assert_eq!(off, pos, "runs must tile without gaps/overlaps");
            pos = off + len;
        }
        assert_eq!(pos, 512);
    }

    #[test]
    fn subarray_1d_is_contiguous() {
        let f = FlatType::subarray(&[100], &[40], &[10], 4);
        assert_eq!(f.runs(), &[(40, 160)]);
    }

    #[test]
    fn indexed_validates() {
        let f = FlatType::indexed(vec![(0, 5), (10, 5)]);
        assert_eq!(f.total_bytes(), 10);
        assert_eq!(f.extent(), 15);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn overlapping_indexed_panics() {
        FlatType::indexed(vec![(0, 10), (5, 10)]);
    }

    #[test]
    fn view_maps_buffer_offsets() {
        let v = FlatType::vector(3, 10, 25);
        let view = FileView::new(&v, 1000);
        assert_eq!(view.file_range(), (1000, 1060));
        assert_eq!(view.total_bytes(), 30);
        let ps = view.pieces();
        assert_eq!(
            ps[1],
            ViewPiece {
                file_off: 1025,
                len: 10,
                buf_off: 10
            }
        );
    }

    #[test]
    fn window_query_clips_and_offsets() {
        let v = FlatType::vector(4, 10, 20); // runs at 0,20,40,60
        let view = FileView::new(&v, 0);
        let ps = view.pieces_in_window(5, 45);
        assert_eq!(
            ps,
            vec![
                ViewPiece {
                    file_off: 5,
                    len: 5,
                    buf_off: 5
                },
                ViewPiece {
                    file_off: 20,
                    len: 10,
                    buf_off: 10
                },
                ViewPiece {
                    file_off: 40,
                    len: 5,
                    buf_off: 20
                },
            ]
        );
        assert!(view.pieces_in_window(10, 20).is_empty());
        assert!(view.pieces_in_window(100, 200).is_empty());
        assert!(view.pieces_in_window(20, 20).is_empty());
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let v = FlatType::vector(100, 7, 13);
        let view = FileView::new(&v, 3);
        for (lo, hi) in [(0u64, 50u64), (49, 200), (500, 1400), (3, 4)] {
            let fast = view.pieces_in_window(lo, hi);
            let slow: Vec<ViewPiece> = view
                .pieces()
                .iter()
                .filter_map(|p| {
                    let s = p.file_off.max(lo);
                    let e = (p.file_off + p.len).min(hi);
                    (s < e).then(|| ViewPiece {
                        file_off: s,
                        len: e - s,
                        buf_off: p.buf_off + (s - p.file_off),
                    })
                })
                .collect();
            assert_eq!(fast, slow, "window [{lo}, {hi})");
        }
    }
}
