//! Collective operations.
//!
//! Two interchangeable backends:
//!
//! * [`CollBackend::Algorithmic`] — real message-passing algorithms
//!   (dissemination barrier, binomial broadcast/reduce/gather, pairwise
//!   all-to-all) built on the point-to-point layer. Costs emerge from
//!   the network model. Used at small scale and to validate the
//!   analytic model.
//! * [`CollBackend::Analytic`] — LogGP-style closed-form cost with
//!   exact synchronisation semantics (no rank proceeds before the last
//!   arrival, results identical to the algorithmic backend). Used for
//!   the 512-rank paper sweeps, where pairwise all-to-all would cost
//!   P² messages per two-phase round.
//!
//! Either way a collective is a true synchronisation point: its cost to
//! each rank includes waiting for the slowest participant — the effect
//! the paper's `shuffle_all2all` / `post_write` breakdown terms measure.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use e10_simcore::{sleep, Flag, SimDuration};

use crate::comm::{waitall, Comm, SourceSel, Tag};

/// Which collective implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollBackend {
    /// Message-passing algorithms over p2p.
    #[default]
    Algorithmic,
    /// Closed-form cost model with exact synchronisation semantics.
    Analytic,
}

const COLL_TAG_BASE: Tag = 0x4000_0000;

struct Slot {
    contribs: Vec<Option<Box<dyn Any>>>,
    arrived: usize,
    flag: Flag,
    result: Option<Rc<dyn Any>>,
    taken: usize,
}

pub(crate) struct CollShared {
    pub(crate) backend: CollBackend,
    slots: RefCell<HashMap<u64, Slot>>,
    counters: RefCell<Vec<u64>>,
}

impl CollShared {
    pub(crate) fn new(backend: CollBackend, size: usize) -> Rc<Self> {
        Rc::new(CollShared {
            backend,
            slots: RefCell::new(HashMap::new()),
            counters: RefCell::new(vec![0; size]),
        })
    }
}

fn ceil_log2(n: usize) -> u32 {
    usize::BITS - (n - 1).leading_zeros()
}

impl Comm {
    fn coll(&self) -> Rc<CollShared> {
        Rc::clone(&self.state.coll)
    }

    fn next_op(&self) -> u64 {
        let mut c = self.state.coll.counters.borrow_mut();
        let id = c[self.rank];
        c[self.rank] += 1;
        id
    }

    fn op_tag(&self, opid: u64, phase: u32) -> Tag {
        COLL_TAG_BASE + ((opid % 4096) as Tag) * 64 + phase
    }

    /// Rendezvous all ranks on `opid`, contribute a value, and have the
    /// last arrival build the shared result. Returns after every rank
    /// has arrived (synchronisation semantics), with the shared result.
    async fn sync_slot<R: 'static>(
        &self,
        opid: u64,
        contrib: Box<dyn Any>,
        build: impl FnOnce(&mut Vec<Option<Box<dyn Any>>>) -> R,
    ) -> Rc<R> {
        let coll = self.coll();
        let size = self.size();
        let flag = {
            let mut slots = coll.slots.borrow_mut();
            let slot = slots.entry(opid).or_insert_with(|| Slot {
                contribs: (0..size).map(|_| None).collect(),
                arrived: 0,
                flag: Flag::new(),
                result: None,
                taken: 0,
            });
            assert!(
                slot.contribs[self.rank].is_none(),
                "rank {} joined collective op {opid} twice — mismatched collective order",
                self.rank
            );
            slot.contribs[self.rank] = Some(contrib);
            slot.arrived += 1;
            if slot.arrived == size {
                let r = build(&mut slot.contribs);
                slot.result = Some(Rc::new(r));
                slot.flag.set();
            }
            slot.flag.clone()
        };
        flag.wait().await;
        let mut slots = coll.slots.borrow_mut();
        let slot = slots.get_mut(&opid).expect("collective slot vanished");
        let result = slot
            .result
            .as_ref()
            .expect("collective result missing")
            .clone()
            .downcast::<R>()
            .expect("collective result type mismatch");
        slot.taken += 1;
        if slot.taken == size {
            slots.remove(&opid);
        }
        result
    }

    // ---- cost model (Analytic backend) -------------------------------

    fn alpha(&self) -> SimDuration {
        let cfg = self.state.net.config();
        cfg.latency + cfg.overhead + cfg.overhead
    }

    fn beta(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.state.net.config().node_bw)
    }

    fn cost_barrier(&self) -> SimDuration {
        self.alpha() * ceil_log2(self.size().max(2)) as u64
    }

    fn cost_bcast(&self, bytes: u64) -> SimDuration {
        (self.alpha() + self.beta(bytes)) * ceil_log2(self.size().max(2)) as u64
    }

    fn cost_allreduce(&self, bytes: u64) -> SimDuration {
        (self.alpha() + self.beta(bytes)) * (2 * ceil_log2(self.size().max(2))) as u64
    }

    fn cost_allgather(&self, bytes_each: u64) -> SimDuration {
        self.alpha() * ceil_log2(self.size().max(2)) as u64
            + self.beta(bytes_each * self.size() as u64)
    }

    fn cost_alltoall(&self, total_bytes_per_rank: u64) -> SimDuration {
        let o = self.state.net.config().overhead;
        o * (self.size() as u64 - 1).max(1)
            + self.state.net.config().latency
            + self.beta(total_bytes_per_rank)
    }

    // ---- public collectives -------------------------------------------

    /// `MPI_Barrier`.
    pub async fn barrier(&self) {
        let opid = self.next_op();
        match self.coll().backend {
            CollBackend::Analytic => {
                self.sync_slot(opid, Box::new(()), |_| ()).await;
                sleep(self.cost_barrier()).await;
            }
            CollBackend::Algorithmic => {
                let p = self.size();
                if p == 1 {
                    return;
                }
                let mut k = 0u32;
                let mut step = 1usize;
                while step < p {
                    let dst = (self.rank + step) % p;
                    let src = (self.rank + p - step) % p;
                    let tag = self.op_tag(opid, k);
                    let s = self.isend(dst, tag, 0, ());
                    let r = self.irecv(SourceSel::Rank(src), tag);
                    s.wait().await;
                    r.wait().await;
                    step <<= 1;
                    k += 1;
                }
            }
        }
    }

    /// `MPI_Bcast`: `root` supplies `Some(value)`, everyone returns it.
    pub async fn bcast<T: Clone + 'static>(&self, root: usize, v: Option<T>, bytes: u64) -> T {
        let opid = self.next_op();
        if self.rank == root {
            assert!(v.is_some(), "bcast root must supply the value");
        }
        match self.coll().backend {
            CollBackend::Analytic => {
                let contrib: Box<dyn Any> = Box::new(v);
                let out = self
                    .sync_slot(opid, contrib, move |contribs| {
                        contribs[root]
                            .take()
                            .expect("root contribution missing")
                            .downcast::<Option<T>>()
                            .expect("bcast type mismatch")
                            .expect("bcast root must supply the value")
                    })
                    .await;
                sleep(self.cost_bcast(bytes)).await;
                (*out).clone()
            }
            CollBackend::Algorithmic => {
                let p = self.size();
                let vr = (self.rank + p - root) % p;
                let logp = if p == 1 { 0 } else { ceil_log2(p) };
                let mut val = v;
                // Receive once from the parent (phase = position of the
                // highest set bit of vr).
                if vr != 0 {
                    let k = usize::BITS - 1 - vr.leading_zeros();
                    let parent = (vr - (1 << k) + root) % p;
                    let m = self
                        .recv(SourceSel::Rank(parent), self.op_tag(opid, k))
                        .await;
                    val = Some(m.into_data::<T>());
                }
                let val = val.expect("bcast value must be set after receive");
                // Forward to children.
                let first = if vr == 0 {
                    0
                } else {
                    usize::BITS - vr.leading_zeros()
                };
                for k in first..logp {
                    let child = vr + (1 << k);
                    if child < p {
                        let dst = (child + root) % p;
                        self.send(dst, self.op_tag(opid, k), bytes, val.clone())
                            .await;
                    }
                }
                val
            }
        }
    }

    /// `MPI_Allreduce` with a user combiner (must be associative and
    /// commutative, like the MPI built-in ops it stands in for).
    pub async fn allreduce<T: Clone + 'static>(
        &self,
        v: T,
        bytes: u64,
        op: impl Fn(&T, &T) -> T + Clone + 'static,
    ) -> T {
        let opid = self.next_op();
        match self.coll().backend {
            CollBackend::Analytic => {
                let contrib: Box<dyn Any> = Box::new(v);
                let op2 = op.clone();
                let out = self
                    .sync_slot(opid, contrib, move |contribs| {
                        let mut acc: Option<T> = None;
                        for c in contribs.iter_mut() {
                            let x = c
                                .take()
                                .expect("missing contribution")
                                .downcast::<T>()
                                .expect("allreduce type mismatch");
                            acc = Some(match acc {
                                None => *x,
                                Some(a) => op2(&a, &x),
                            });
                        }
                        acc.expect("empty communicator")
                    })
                    .await;
                sleep(self.cost_allreduce(bytes)).await;
                (*out).clone()
            }
            CollBackend::Algorithmic => {
                // Binomial reduce to rank 0, then broadcast.
                let p = self.size();
                let mut acc = v;
                let vr = self.rank;
                let logp = if p == 1 { 0 } else { ceil_log2(p) };
                for k in 0..logp {
                    let bit = 1usize << k;
                    if vr & (bit - 1) != 0 {
                        continue; // already sent up in an earlier phase
                    }
                    if vr & bit != 0 {
                        let dst = vr - bit;
                        self.send(dst, self.op_tag(opid, k), bytes, acc.clone())
                            .await;
                        break;
                    } else if vr + bit < p {
                        let m: T = self.recv_from(vr + bit, self.op_tag(opid, k)).await;
                        acc = op(&acc, &m);
                    }
                }
                self.bcast(0, if vr == 0 { Some(acc) } else { None }, bytes)
                    .await
            }
        }
    }

    /// `MPI_Allgather`: every rank contributes one value, everyone gets
    /// the full vector indexed by rank.
    pub async fn allgather<T: Clone + 'static>(&self, v: T, bytes: u64) -> Vec<T> {
        let opid = self.next_op();
        match self.coll().backend {
            CollBackend::Analytic => {
                let contrib: Box<dyn Any> = Box::new(v);
                let out = self
                    .sync_slot(opid, contrib, move |contribs| {
                        contribs
                            .iter_mut()
                            .map(|c| {
                                *c.take()
                                    .expect("missing contribution")
                                    .downcast::<T>()
                                    .expect("allgather type mismatch")
                            })
                            .collect::<Vec<T>>()
                    })
                    .await;
                sleep(self.cost_allgather(bytes)).await;
                (*out).clone()
            }
            CollBackend::Algorithmic => {
                // Ring allgather: P-1 steps, each forwarding one block.
                let p = self.size();
                let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
                out[self.rank] = Some(v);
                let next = (self.rank + 1) % p;
                let prev = (self.rank + p - 1) % p;
                let tag = self.op_tag(opid, 0);
                for s in 0..p.saturating_sub(1) {
                    let send_idx = (self.rank + p - s) % p;
                    let val = out[send_idx].clone().expect("ring hole");
                    let sreq = self.isend(next, tag, bytes, val);
                    let m: T = self.recv_from(prev, tag).await;
                    let recv_idx = (self.rank + p - s - 1) % p;
                    out[recv_idx] = Some(m);
                    sreq.wait().await;
                }
                out.into_iter().map(|x| x.expect("ring hole")).collect()
            }
        }
    }

    /// `MPI_Alltoall`: `v[i]` goes to rank `i`; returns the vector of
    /// values received (index = source rank). `bytes_each` is the wire
    /// size of one element.
    pub async fn alltoall<T: Clone + 'static>(&self, v: Vec<T>, bytes_each: u64) -> Vec<T> {
        let sizes = vec![bytes_each; v.len()];
        self.alltoallv(v, &sizes).await
    }

    /// `MPI_Alltoallv`: like [`alltoall`](Self::alltoall) with per-
    /// destination wire sizes.
    pub async fn alltoallv<T: Clone + 'static>(&self, v: Vec<T>, bytes: &[u64]) -> Vec<T> {
        let p = self.size();
        assert_eq!(v.len(), p, "alltoallv needs one element per rank");
        assert_eq!(bytes.len(), p);
        let opid = self.next_op();
        match self.coll().backend {
            CollBackend::Analytic => {
                let total: u64 = bytes.iter().sum();
                let contrib: Box<dyn Any> = Box::new(v);
                let me = self.rank;
                let out = self
                    .sync_slot(opid, contrib, move |contribs| {
                        // Build the full matrix once; each rank extracts
                        // its column below (shared as Vec<Vec<T>>).
                        contribs
                            .iter_mut()
                            .map(|c| {
                                *c.take()
                                    .expect("missing contribution")
                                    .downcast::<Vec<T>>()
                                    .expect("alltoall type mismatch")
                            })
                            .collect::<Vec<Vec<T>>>()
                    })
                    .await;
                let _ = me;
                sleep(self.cost_alltoall(total)).await;
                (0..p).map(|src| out[src][self.rank].clone()).collect()
            }
            CollBackend::Algorithmic => {
                let tag = self.op_tag(opid, 0);
                let mut v: Vec<Option<T>> = v.into_iter().map(Some).collect();
                let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
                out[self.rank] = v[self.rank].take();
                let mut reqs = Vec::new();
                for s in 1..p {
                    let dst = (self.rank + s) % p;
                    reqs.push(self.isend(dst, tag, bytes[dst], v[dst].take().unwrap()));
                }
                for _ in 1..p {
                    let m = self.recv(SourceSel::Any, tag).await;
                    let src = m.src;
                    out[src] = Some(m.into_data::<T>());
                }
                waitall(reqs).await;
                out.into_iter().map(|x| x.expect("alltoall hole")).collect()
            }
        }
    }

    /// Allocation-free `MPI_Alltoall` of one `u64` per rank, the shape
    /// of the two-phase round loop's size dissemination: `buf[i]` is
    /// sent to rank `i` and replaced in place by the value received
    /// *from* rank `i`. `sreqs` is caller-owned scratch (drained on
    /// return) so steady-state rounds touch the allocator zero times.
    /// Wire behaviour — send order, per-message size, matching — is
    /// identical to `alltoall(v, bytes_each)`.
    pub async fn alltoall_u64_inplace(
        &self,
        buf: &mut [u64],
        bytes_each: u64,
        sreqs: &mut Vec<crate::comm::Request>,
    ) {
        let p = self.size();
        assert_eq!(buf.len(), p, "alltoall needs one element per rank");
        if self.coll().backend == CollBackend::Analytic {
            let out = self.alltoall(buf.to_vec(), bytes_each).await;
            buf.copy_from_slice(&out);
            return;
        }
        let opid = self.next_op();
        let tag = self.op_tag(opid, 0);
        debug_assert!(sreqs.is_empty());
        for s in 1..p {
            let dst = (self.rank + s) % p;
            sreqs.push(self.isend(dst, tag, bytes_each, buf[dst]));
        }
        for _ in 1..p {
            let m = self.recv(SourceSel::Any, tag).await;
            let src = m.src;
            buf[src] = m.into_data::<u64>();
        }
        for r in sreqs.drain(..) {
            r.wait().await;
        }
    }

    /// `MPI_Comm_split`: partition the communicator by `color`; ranks
    /// with equal color form a new communicator, ordered by
    /// `(key, old rank)`. Collective over the parent communicator.
    ///
    /// The rendezvous uses the shared-slot mechanism (so it works under
    /// both backends) and is charged like a small allgather.
    pub async fn split(&self, color: u32, key: u64) -> Comm {
        use crate::comm::CommState;
        use std::collections::HashMap;

        let opid = self.next_op();
        let net = crate::comm::Comm::network(self);
        let node_of_parent = self.node_map();
        let backend = self.coll().backend;
        let contrib: Box<dyn std::any::Any> = Box::new((color, key, self.rank));
        let shared = self
            .sync_slot(opid, contrib, move |contribs| {
                let mut groups: HashMap<u32, Vec<(u64, usize)>> = HashMap::new();
                for c in contribs.iter_mut() {
                    let (color, key, rank) = *c
                        .take()
                        .expect("missing contribution")
                        .downcast::<(u32, u64, usize)>()
                        .expect("split type mismatch");
                    groups.entry(color).or_default().push((key, rank));
                }
                let mut out: HashMap<u32, (Vec<usize>, Rc<CommState>)> = HashMap::new();
                let mut colors: Vec<u32> = groups.keys().copied().collect();
                colors.sort_unstable();
                for color in colors {
                    let mut members = groups.remove(&color).unwrap();
                    members.sort_unstable();
                    let ranks: Vec<usize> = members.into_iter().map(|(_, r)| r).collect();
                    let node_of = ranks.iter().map(|&r| node_of_parent[r]).collect();
                    let coll = CollShared::new(backend, ranks.len());
                    let state = CommState::new_shared(ranks.len(), node_of, Rc::clone(&net), coll);
                    out.insert(color, (ranks, state));
                }
                out
            })
            .await;
        sleep(self.cost_allgather(16)).await;
        let (ranks, state) = shared.get(&color).expect("split color vanished");
        let rank = ranks
            .iter()
            .position(|&r| r == self.rank)
            .expect("rank missing from its own split group");
        Comm {
            state: Rc::clone(state),
            rank,
        }
    }

    /// `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`: split into
    /// intra-node sub-communicators — ranks sharing a compute node form
    /// one communicator, ordered by their rank in `self`. Rank 0 of
    /// each sub-communicator (the node's lowest parent rank) is the
    /// natural node leader. Collective over the parent communicator.
    pub async fn split_by_node(&self) -> Comm {
        self.split(self.node() as u32, self.rank() as u64).await
    }

    /// `MPI_Gather` to `root`: returns `Some(vec)` on the root, `None`
    /// elsewhere.
    pub async fn gather<T: Clone + 'static>(
        &self,
        root: usize,
        v: T,
        bytes: u64,
    ) -> Option<Vec<T>> {
        // Implemented over allgather: same synchronisation semantics,
        // slightly pessimistic cost for non-roots (acceptable — ROMIO
        // uses gather only for small control data).
        let all = self.allgather(v, bytes).await;
        if self.rank == root {
            Some(all)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{launch, WorldSpec};
    use e10_simcore::{now, run};

    fn both_backends(test: impl Fn(CollBackend) + Copy) {
        test(CollBackend::Algorithmic);
        test(CollBackend::Analytic);
    }

    fn spec(p: usize, backend: CollBackend) -> WorldSpec {
        let mut s = WorldSpec::for_tests(p, (p / 2).max(1));
        s.backend = backend;
        s
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(7, b), |comm| async move {
                    e10_simcore::sleep(e10_simcore::SimDuration::from_secs(comm.rank() as u64))
                        .await;
                    comm.barrier().await;
                    now().as_secs_f64()
                })
                .await;
                for t in &outs {
                    assert!(*t >= 6.0, "{b:?}: left barrier at {t} before slowest");
                }
            });
        });
    }

    #[test]
    fn bcast_delivers_root_value() {
        both_backends(|b| {
            run(async move {
                for root in [0usize, 3, 6] {
                    let outs = launch(spec(7, b), move |comm| async move {
                        let v = if comm.rank() == root {
                            Some(format!("payload-{root}"))
                        } else {
                            None
                        };
                        comm.bcast(root, v, 100).await
                    })
                    .await;
                    for v in outs {
                        assert_eq!(v, format!("payload-{root}"), "{b:?} root={root}");
                    }
                }
            });
        });
    }

    #[test]
    fn allreduce_min_max_sum() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(9, b), |comm| async move {
                    let r = comm.rank() as u64;
                    let mx = comm.allreduce(r, 8, |a, b| *a.max(b)).await;
                    let mn = comm.allreduce(r, 8, |a, b| *a.min(b)).await;
                    let sum = comm.allreduce(r, 8, |a, b| a + b).await;
                    (mx, mn, sum)
                })
                .await;
                for (mx, mn, sum) in outs {
                    assert_eq!((mx, mn, sum), (8, 0, 36), "{b:?}");
                }
            });
        });
    }

    #[test]
    fn allgather_orders_by_rank() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(6, b), |comm| async move {
                    comm.allgather(comm.rank() * 10, 8).await
                })
                .await;
                for v in outs {
                    assert_eq!(v, vec![0, 10, 20, 30, 40, 50], "{b:?}");
                }
            });
        });
    }

    #[test]
    fn alltoall_transposes() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(5, b), |comm| async move {
                    let p = comm.size();
                    let v: Vec<(usize, usize)> = (0..p).map(|dst| (comm.rank(), dst)).collect();
                    comm.alltoall(v, 16).await
                })
                .await;
                for (me, row) in outs.into_iter().enumerate() {
                    for (src, cell) in row.into_iter().enumerate() {
                        assert_eq!(cell, (src, me), "{b:?}");
                    }
                }
            });
        });
    }

    #[test]
    fn gather_collects_on_root_only() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(4, b), |comm| async move {
                    comm.gather(2, comm.rank() as u32, 4).await
                })
                .await;
                assert!(outs[0].is_none());
                assert_eq!(outs[2], Some(vec![0, 1, 2, 3]));
            });
        });
    }

    #[test]
    fn analytic_and_algorithmic_costs_agree_in_magnitude() {
        // The analytic model should land within ~4x of the algorithmic
        // implementation for small control collectives.
        let time = |b: CollBackend| {
            run(async move {
                launch(spec(16, b), |comm| async move {
                    for _ in 0..10 {
                        comm.barrier().await;
                    }
                })
                .await;
                now().as_secs_f64()
            })
        };
        let t_algo = time(CollBackend::Algorithmic);
        let t_ana = time(CollBackend::Analytic);
        let ratio = t_algo / t_ana;
        assert!(
            (0.25..4.0).contains(&ratio),
            "algorithmic {t_algo}s vs analytic {t_ana}s"
        );
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        both_backends(|b| {
            run(async move {
                launch(spec(1, b), |comm| async move {
                    comm.barrier().await;
                    assert_eq!(comm.bcast(0, Some(5u8), 1).await, 5);
                    assert_eq!(comm.allgather(1u8, 1).await, vec![1]);
                    assert_eq!(comm.allreduce(3u8, 1, |a, b| a + b).await, 3);
                    assert_eq!(comm.alltoall(vec![9u8], 1).await, vec![9]);
                })
                .await;
            });
        });
    }

    #[test]
    fn split_partitions_and_reorders() {
        both_backends(|b| {
            run(async move {
                let outs = launch(spec(8, b), |comm| async move {
                    // Even/odd split, keys reversing the rank order.
                    let color = (comm.rank() % 2) as u32;
                    let key = (100 - comm.rank()) as u64;
                    let sub = comm.split(color, key).await;
                    // Collectives on the sub-communicator work.
                    let members = sub.allgather(comm.rank(), 8).await;
                    (color, sub.rank(), sub.size(), members)
                })
                .await;
                for (r, (color, sub_rank, sub_size, members)) in outs.iter().enumerate() {
                    assert_eq!(*color, (r % 2) as u32, "{b:?}");
                    assert_eq!(*sub_size, 4);
                    // Keys reverse the order: highest old rank first.
                    let expect: Vec<usize> = if *color == 0 {
                        vec![6, 4, 2, 0]
                    } else {
                        vec![7, 5, 3, 1]
                    };
                    assert_eq!(members, &expect, "{b:?}");
                    assert_eq!(members[*sub_rank], r);
                }
            });
        });
    }

    #[test]
    fn split_subcomm_p2p_is_isolated() {
        both_backends(|b| {
            run(async move {
                launch(spec(4, b), |comm| async move {
                    let sub = comm.split((comm.rank() / 2) as u32, 0).await;
                    // Ping within each group using sub-ranks 0 <-> 1.
                    if sub.rank() == 0 {
                        sub.send(1, 3, 64, comm.rank()).await;
                    } else {
                        let from: usize = sub.recv_from(0, 3).await;
                        // Groups are {0,1} and {2,3}: partner differs by 1.
                        assert_eq!(from + 1, comm.rank());
                    }
                })
                .await;
            });
        });
    }

    #[test]
    fn power_of_two_and_odd_sizes() {
        both_backends(|b| {
            for p in [2usize, 3, 4, 8, 13] {
                run(async move {
                    let outs = launch(spec(p, b), |comm| async move {
                        comm.allreduce(comm.rank() as u64 + 1, 8, |a, c| a + c)
                            .await
                    })
                    .await;
                    let expect = (p as u64) * (p as u64 + 1) / 2;
                    assert!(outs.iter().all(|&x| x == expect), "p={p} {b:?}");
                });
            }
        });
    }
}
