//! # e10-mpisim
//!
//! A deterministic simulated MPI for the E10 reproduction. Each rank is
//! an async task on the [`e10_simcore`] discrete-event kernel; messages
//! move real byte counts across the [`e10_netsim`] fabric; collectives
//! come in an algorithmic flavour (real message-passing algorithms) and
//! an analytic flavour (LogGP-style costs with exact synchronisation
//! semantics) so 512-rank experiments stay tractable.
//!
//! ```
//! use e10_mpisim::{launch, WorldSpec};
//!
//! let sums = e10_simcore::run(async {
//!     launch(WorldSpec::for_tests(4, 2), |comm| async move {
//!         comm.allreduce(comm.rank() as u64, 8, |a, b| a + b).await
//!     })
//!     .await
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod coll;
pub mod comm;
pub mod datatype;
pub mod ft;
pub mod grequest;
pub mod info;

use std::future::Future;
use std::rc::Rc;

pub use coll::CollBackend;
pub use comm::{waitall, Comm, Message, Request, SourceSel, Tag};
pub use datatype::{FileView, FlatType, ViewPiece};
pub use grequest::{grequest_waitall, Grequest, GrequestCompleter};
pub use info::Info;

use e10_netsim::{NetConfig, Network, NodeId};
use e10_simcore::join_all;

/// Shape of the simulated job: how many ranks on how many nodes, plus
/// extra fabric nodes for servers (MDS, data targets).
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Number of MPI processes.
    pub procs: usize,
    /// Number of compute nodes; ranks are block-mapped (`rank / ppn`).
    pub nodes: usize,
    /// Additional fabric nodes appended after the compute nodes (used
    /// by the file-system servers).
    pub extra_nodes: usize,
    /// Collective backend.
    pub backend: CollBackend,
    /// Fabric parameters (None → IB-QDR defaults for the node count).
    pub net_cfg: Option<NetConfig>,
}

impl WorldSpec {
    /// A production-shaped spec (analytic collectives).
    pub fn new(procs: usize, nodes: usize) -> Self {
        WorldSpec {
            procs,
            nodes,
            extra_nodes: 0,
            backend: CollBackend::Analytic,
            net_cfg: None,
        }
    }

    /// A small-scale spec for tests (algorithmic collectives, so the
    /// real message-passing paths are exercised).
    pub fn for_tests(procs: usize, nodes: usize) -> Self {
        WorldSpec {
            procs,
            nodes,
            extra_nodes: 0,
            backend: CollBackend::Algorithmic,
            net_cfg: None,
        }
    }

    /// Ranks per node under block mapping.
    pub fn procs_per_node(&self) -> usize {
        self.procs.div_ceil(self.nodes)
    }

    /// Total fabric nodes (compute + extra).
    pub fn total_nodes(&self) -> usize {
        self.nodes + self.extra_nodes
    }
}

/// A built world: the fabric plus one [`Comm`] per rank.
pub struct World {
    /// The fabric shared by ranks and servers.
    pub net: Rc<Network>,
    /// One communicator handle per rank (`MPI_COMM_WORLD`).
    pub comms: Vec<Comm>,
    /// Compute-node count (server nodes come after).
    pub compute_nodes: usize,
}

impl World {
    /// Build fabric + communicators from a spec. Must be called inside
    /// `e10_simcore::run`.
    pub fn build(spec: &WorldSpec) -> World {
        let total = spec.total_nodes();
        let cfg = spec
            .net_cfg
            .clone()
            .unwrap_or_else(|| NetConfig::ib_qdr(total));
        let net = Rc::new(Network::new(cfg, total));
        let ppn = spec.procs_per_node();
        let node_of: Vec<NodeId> = (0..spec.procs).map(|r| r / ppn).collect();
        let coll = coll::CollShared::new(spec.backend, spec.procs);
        let comms = Comm::new_world(spec.procs, node_of, Rc::clone(&net), coll);
        World {
            net,
            comms,
            compute_nodes: spec.nodes,
        }
    }

    /// Fabric node id of the `i`-th extra (server) node.
    pub fn server_node(&self, i: usize) -> NodeId {
        self.compute_nodes + i
    }

    /// Run `f` once per rank concurrently and collect outputs by rank.
    pub async fn run_ranks<F, Fut, T>(&self, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> Fut,
        Fut: Future<Output = T> + 'static,
        T: 'static,
    {
        let handles = self
            .comms
            .iter()
            .map(|c| e10_simcore::spawn(f(c.clone())))
            .collect();
        join_all(handles).await
    }
}

/// Build a world from `spec` and run `f` on every rank (the
/// `mpirun`-shaped entry point). Must be awaited inside
/// `e10_simcore::run`.
pub async fn launch<F, Fut, T>(spec: WorldSpec, f: F) -> Vec<T>
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = T> + 'static,
    T: 'static,
{
    let world = World::build(&spec);
    world.run_ranks(f).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::run;

    #[test]
    fn block_mapping_places_ranks() {
        run(async {
            let outs = launch(WorldSpec::for_tests(8, 4), |comm| async move {
                (comm.rank(), comm.node())
            })
            .await;
            assert_eq!(
                outs,
                vec![
                    (0, 0),
                    (1, 0),
                    (2, 1),
                    (3, 1),
                    (4, 2),
                    (5, 2),
                    (6, 3),
                    (7, 3)
                ]
            );
        });
    }

    #[test]
    fn server_nodes_follow_compute_nodes() {
        run(async {
            let mut spec = WorldSpec::for_tests(4, 2);
            spec.extra_nodes = 3;
            let world = World::build(&spec);
            assert_eq!(world.server_node(0), 2);
            assert_eq!(world.server_node(2), 4);
            assert_eq!(world.net.nodes(), 5);
        });
    }

    #[test]
    fn intra_node_messages_skip_the_wire() {
        run(async {
            // 2 ranks on 1 node vs 2 ranks on 2 nodes: same payload,
            // intra-node must be at least as fast.
            async fn ping(spec: WorldSpec) -> f64 {
                let t0 = e10_simcore::now();
                launch(spec, |comm| async move {
                    if comm.rank() == 0 {
                        comm.send(1, 0, 10 << 20, ()).await;
                    } else {
                        comm.recv(SourceSel::Rank(0), 0).await;
                    }
                })
                .await;
                e10_simcore::now().since(t0).as_secs_f64()
            }
            let same = ping(WorldSpec::for_tests(2, 1)).await;
            let cross = ping(WorldSpec::for_tests(2, 2)).await;
            assert!(same <= cross, "same={same} cross={cross}");
        });
    }
}
