//! ULFM-shaped fault tolerance primitives.
//!
//! Models the User-Level Failure Mitigation proposal's core triad on
//! the simulated MPI: **detection** (timeout-raced receives,
//! [`Comm::recv_timeout`]), **agreement** ([`Comm::agree`], the
//! `MPI_Comm_agree` shape: all live ranks settle on a combined flag
//! and a consistent failure set) and **revocation/shrink**
//! ([`Comm::shrink`], the `MPI_Comm_shrink` shape: a survivor
//! communicator over the live ranks).
//!
//! Failure knowledge lives on the shared communicator state
//! ([`Comm::mark_failed`]): once one rank's timeout convicts a peer,
//! every rank observes the conviction. This makes the simulated
//! detector *perfect* — suspicion propagates for free — while the
//! agreement protocol still exchanges real timed messages so the
//! latency and message cost of consensus are modelled faithfully.
//!
//! The control collectives here are star-shaped with coordinator
//! failover: every live rank sends its contribution to the lowest live
//! rank, which combines and re-broadcasts; if the coordinator itself
//! dies, participants time out, convict it and retry with the next
//! live rank. O(P) messages per operation — fine for the control
//! plane (failure handling is rare), not a data path.
//!
//! Accuracy caveat: a live-but-slow rank whose contribution misses the
//! timeout is convicted like a dead one. Detection is accurate when
//! the timeout dominates the collective's message latency; callers
//! (the `e10_coll_timeout` hint) pick timeouts accordingly.

use std::rc::Rc;

use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::SimDuration;

use crate::comm::{Comm, CommState, SourceSel, Tag};

impl Comm {
    /// Convict `rank` as failed on this communicator. Idempotent.
    pub fn mark_failed(&self, rank: usize) {
        let mut dead = self.state.dead.borrow_mut();
        if dead.is_empty() {
            dead.resize(self.state.size, false);
        }
        if !dead[rank] {
            dead[rank] = true;
            trace::emit(|| {
                Event::new(Layer::Mpi, "ft.convict", EventKind::Point)
                    .node(self.state.node_of[self.rank])
                    .field("rank", rank as u64)
            });
            trace::counter("ft.convictions", 1);
        }
    }

    /// True if `rank` has been convicted as failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.state.dead.borrow().get(rank) == Some(&true)
    }

    /// The convicted ranks, ascending.
    pub fn failed_ranks(&self) -> Vec<usize> {
        let dead = self.state.dead.borrow();
        (0..self.state.size)
            .filter(|&r| dead.get(r) == Some(&true))
            .collect()
    }

    /// The ranks not convicted, ascending.
    pub fn live_ranks(&self) -> Vec<usize> {
        let dead = self.state.dead.borrow();
        (0..self.state.size)
            .filter(|&r| dead.get(r) != Some(&true))
            .collect()
    }

    /// Fault-tolerant gather-and-broadcast over the live ranks — the
    /// building block under [`Comm::agree`] and the crash-tolerant
    /// collective-write coordination.
    ///
    /// Every live rank contributes `v`; the lowest live rank collects
    /// (with `timeout` per missing contributor, convicting silent
    /// peers), applies `combine` to the per-rank contributions (`None`
    /// for ranks that failed to arrive — their absence is the caller's
    /// abort signal) and sends the result to every surviving
    /// contributor. If the coordinator itself dies, participants time
    /// out on the result, convict it and fail over to the next live
    /// rank. `tag_base` must be unique per logical operation and leave
    /// `2 * size` tag values free above it (the failover tags are
    /// derived from the coordinator's rank — shared failure knowledge
    /// keeps them consistent even when ranks enter the operation with
    /// different conviction histories).
    pub async fn ft_coordinate<T, R>(
        &self,
        tag_base: Tag,
        v: T,
        bytes: u64,
        timeout: SimDuration,
        combine: impl Fn(&mut [Option<T>]) -> R,
    ) -> R
    where
        T: Clone + 'static,
        R: Clone + 'static,
    {
        let p = self.state.size;
        loop {
            let coord = (0..p)
                .find(|&r| !self.is_failed(r))
                .expect("every rank of the communicator convicted");
            let ctag = tag_base + 2 * coord as Tag;
            let rtag = ctag + 1;
            if self.rank == coord {
                let mut contribs: Vec<Option<T>> = (0..p).map(|_| None).collect();
                contribs[self.rank] = Some(v.clone());
                // `r` is both the peer rank (recv source, conviction
                // target) and the contribution slot; an enumerate()
                // rewrite would obscure that.
                #[allow(clippy::needless_range_loop)]
                for r in 0..p {
                    if r == self.rank || self.is_failed(r) {
                        continue;
                    }
                    // Double the detection window: a live contributor
                    // may enter this operation up to one timeout after
                    // us (it spent its own timeout convicting a peer in
                    // the preceding phase).
                    match self
                        .recv_timeout(SourceSel::Rank(r), ctag, timeout * 2)
                        .await
                    {
                        Some(m) => contribs[r] = Some(m.into_data::<T>()),
                        None => self.mark_failed(r),
                    }
                }
                let res = combine(&mut contribs);
                for r in 0..p {
                    if r != self.rank && !self.is_failed(r) {
                        // Fire and forget: completion on arrival, and a
                        // dead recipient's mailbox harmlessly swallows it.
                        drop(self.isend(r, rtag, bytes, res.clone()));
                    }
                }
                return res;
            }
            drop(self.isend(coord, ctag, bytes, v.clone()));
            // The coordinator may spend up to two timeouts per silent
            // contributor before answering; wait out the worst case
            // with margin for its own reply.
            let result_wait = timeout * (2 * p as u64 + 4);
            match self
                .recv_timeout(SourceSel::Rank(coord), rtag, result_wait)
                .await
            {
                Some(m) => return m.into_data::<R>(),
                None => self.mark_failed(coord),
            }
        }
    }

    /// `MPI_Comm_agree` (ULFM): all live ranks agree on the bitwise
    /// AND of their `flag` contributions and on a consistent failure
    /// set, which is returned (and installed locally). Ranks that die
    /// during the agreement are convicted and excluded; the operation
    /// always terminates within a bounded number of timeouts.
    pub async fn agree(&self, tag_base: Tag, flag: u64, timeout: SimDuration) -> (u64, Vec<usize>) {
        let and = self
            .ft_coordinate(tag_base, flag, 16, timeout, |contribs| {
                contribs.iter().flatten().fold(u64::MAX, |acc, &f| acc & f)
            })
            .await;
        (and, self.failed_ranks())
    }

    /// `MPI_Comm_shrink` (ULFM): a communicator over `live` (sorted
    /// parent ranks, which must include this rank), with ranks
    /// renumbered by position. Non-blocking by construction: the first
    /// survivor to ask builds the shared state, later survivors join
    /// it — callers synchronise beforehand ([`Comm::agree`]) so every
    /// survivor asks with the same list. Repeated shrinks to the same
    /// list share one communicator (collective op counters continue,
    /// as with a reused MPI context).
    pub fn shrink(&self, live: &[usize]) -> Comm {
        assert!(
            live.windows(2).all(|w| w[0] < w[1]),
            "shrink wants a sorted, duplicate-free live list"
        );
        let rank = live
            .iter()
            .position(|&r| r == self.rank)
            .expect("shrinking rank must be in the live list");
        assert!(
            live.last().is_none_or(|&r| r < self.state.size),
            "live rank out of range"
        );
        let state = {
            let mut m = self.state.shrunk.borrow_mut();
            match m.get(live) {
                Some(st) => Rc::clone(st),
                None => {
                    let node_of = live.iter().map(|&r| self.state.node_of[r]).collect();
                    let coll = crate::coll::CollShared::new(self.state.coll.backend, live.len());
                    let st = CommState::new_shared(
                        live.len(),
                        node_of,
                        Rc::clone(&self.state.net),
                        coll,
                    );
                    m.insert(live.to_vec(), Rc::clone(&st));
                    st
                }
            }
        };
        Comm { state, rank }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{launch, WorldSpec};
    use e10_simcore::run;

    const T: Tag = 0x5800_0000;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn recv_timeout_expires_without_a_sender_and_passes_with_one() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    // Nobody ever sends on tag 9: timeout.
                    assert!(comm
                        .recv_timeout(SourceSel::Rank(1), 9, ms(5))
                        .await
                        .is_none());
                    // Rank 1 sends on tag 10 after 1ms: arrives in time.
                    let m = comm
                        .recv_timeout(SourceSel::Rank(1), 10, ms(50))
                        .await
                        .expect("message within deadline");
                    assert_eq!(m.into_data::<u32>(), 7);
                } else {
                    e10_simcore::sleep(ms(6)).await;
                    comm.send(0, 10, 16, 7u32).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn agree_convicts_a_silent_rank_and_settles_the_failure_set() {
        run(async {
            let outs = launch(WorldSpec::for_tests(4, 2), |comm| async move {
                if comm.rank() == 2 {
                    // Rank 2 "dies": it never joins the agreement.
                    return (0, vec![]);
                }
                comm.agree(T, !(1 << comm.rank()), ms(10)).await
            })
            .await;
            for (r, (and, dead)) in outs.iter().enumerate() {
                if r == 2 {
                    continue;
                }
                // AND over live contributors 0, 1, 3.
                assert_eq!(*and, !(1u64 | (1 << 1) | (1 << 3)));
                assert_eq!(dead, &vec![2], "rank {r} must convict exactly rank 2");
            }
        });
    }

    #[test]
    fn agree_fails_over_when_the_coordinator_dies() {
        run(async {
            let outs = launch(WorldSpec::for_tests(4, 2), |comm| async move {
                if comm.rank() == 0 {
                    // The would-be coordinator is dead.
                    return (0, vec![]);
                }
                comm.agree(T, u64::MAX, ms(10)).await
            })
            .await;
            for (r, (and, dead)) in outs.iter().enumerate() {
                if r == 0 {
                    continue;
                }
                assert_eq!(*and, u64::MAX);
                assert_eq!(dead, &vec![0], "rank {r} must fail over past rank 0");
            }
        });
    }

    #[test]
    fn shrink_builds_a_working_survivor_communicator() {
        run(async {
            launch(WorldSpec::for_tests(4, 2), |comm| async move {
                if comm.rank() == 1 {
                    return;
                }
                comm.mark_failed(1);
                let live = comm.live_ranks();
                assert_eq!(live, vec![0, 2, 3]);
                let sub = comm.shrink(&live);
                assert_eq!(sub.size(), 3);
                assert_eq!(
                    sub.rank(),
                    live.iter().position(|&r| r == comm.rank()).unwrap()
                );
                // Nodes carry over from the parent mapping.
                assert_eq!(sub.node(), comm.node());
                // Collectives work among the survivors.
                let members = sub.allgather(comm.rank(), 8).await;
                assert_eq!(members, vec![0, 2, 3]);
                // p2p works in shrunk numbering.
                if sub.rank() == 0 {
                    sub.send(2, 4, 32, 99u8).await;
                } else if sub.rank() == 2 {
                    assert_eq!(sub.recv_from::<u8>(0, 4).await, 99);
                }
            })
            .await;
        });
    }

    #[test]
    fn shrink_to_the_same_list_shares_one_communicator() {
        run(async {
            launch(WorldSpec::for_tests(3, 1), |comm| async move {
                comm.mark_failed(2);
                if comm.rank() == 2 {
                    return;
                }
                let a = comm.shrink(&[0, 1]);
                let b = comm.shrink(&[0, 1]);
                // Same shared state: a barrier split across the two
                // handles still pairs up.
                let h = e10_simcore::spawn(async move { a.barrier().await });
                b.barrier().await;
                h.await;
            })
            .await;
        });
    }
}
