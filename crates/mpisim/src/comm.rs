//! Communicators and point-to-point messaging.
//!
//! Each simulated MPI process is an async task holding a [`Comm`]. Sends
//! move their byte count across the [`e10_netsim::Network`] (so NIC and
//! switch contention are real), carry an arbitrary typed payload, and
//! match receives by `(source, tag)` with MPI's non-overtaking ordering
//! per `(source, destination)` pair.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use e10_netsim::{Network, NodeId};
use e10_simcore::{spawn, Flag};

/// Message tag.
pub type Tag = u32;

/// A received message.
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Wire size in bytes (for accounting; the payload is typed).
    pub bytes: u64,
    /// The payload.
    pub data: Box<dyn Any>,
}

impl Message {
    /// Downcast the payload, panicking with a useful message on a type
    /// mismatch (which is always a caller bug, as in real MPI).
    pub fn into_data<T: 'static>(self) -> T {
        *self.data.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "message payload type mismatch (src={}, tag={})",
                self.src, self.tag
            )
        })
    }
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSel {
    /// Match a specific rank.
    Rank(usize),
    /// Match any source.
    Any,
}

struct RecvWaiter {
    src: SourceSel,
    tag: Tag,
    slot: Rc<RefCell<Option<Message>>>,
    flag: Flag,
}

#[derive(Default)]
struct RankMailbox {
    arrived: Vec<Message>,
    waiters: Vec<RecvWaiter>,
}

/// Per-(src,dst) ordering: messages are delivered in send order even if
/// wire transfers complete out of order.
#[derive(Default)]
struct PairOrder {
    next_send: u64,
    next_deliver: u64,
    stash: HashMap<u64, Message>,
}

pub(crate) struct CommState {
    pub(crate) size: usize,
    pub(crate) node_of: Vec<NodeId>,
    pub(crate) net: Rc<Network>,
    mailboxes: RefCell<Vec<RankMailbox>>,
    order: RefCell<HashMap<(usize, usize), PairOrder>>,
    pub(crate) coll: Rc<super::coll::CollShared>,
    /// Bytes pushed through point-to-point sends (accounting).
    pub(crate) p2p_bytes: RefCell<u64>,
    pub(crate) p2p_msgs: RefCell<u64>,
}

/// A communicator handle bound to one rank.
///
/// Clones share the communicator; [`Comm::rank`] distinguishes the
/// owning process. All ranks of a communicator must call collective
/// operations in the same order (as in MPI).
#[derive(Clone)]
pub struct Comm {
    pub(crate) state: Rc<CommState>,
    pub(crate) rank: usize,
}

/// A non-blocking operation handle (`MPI_Request`).
pub struct Request {
    flag: Flag,
    slot: Rc<RefCell<Option<Message>>>,
}

impl Request {
    pub(crate) fn new(flag: Flag, slot: Rc<RefCell<Option<Message>>>) -> Self {
        Request { flag, slot }
    }

    /// A request that is already complete.
    pub fn ready() -> Self {
        let flag = Flag::new();
        flag.set();
        Request {
            flag,
            slot: Rc::new(RefCell::new(None)),
        }
    }

    /// Wait for completion; receives yield their message.
    pub async fn wait(self) -> Option<Message> {
        self.flag.wait().await;
        self.slot.borrow_mut().take()
    }

    /// Non-blocking completion test.
    pub fn test(&self) -> bool {
        self.flag.is_set()
    }
}

/// `MPI_Waitall`: wait for every request, returning any received
/// messages in request order.
pub async fn waitall(reqs: Vec<Request>) -> Vec<Option<Message>> {
    let mut out = Vec::with_capacity(reqs.len());
    for r in reqs {
        out.push(r.wait().await);
    }
    out
}

impl CommState {
    /// Build a shared communicator state (used by `new_world` and
    /// `Comm::split`).
    pub(crate) fn new_shared(
        size: usize,
        node_of: Vec<NodeId>,
        net: Rc<Network>,
        coll: Rc<super::coll::CollShared>,
    ) -> Rc<CommState> {
        assert_eq!(node_of.len(), size);
        Rc::new(CommState {
            size,
            node_of,
            net,
            mailboxes: RefCell::new((0..size).map(|_| RankMailbox::default()).collect()),
            order: RefCell::new(HashMap::new()),
            coll,
            p2p_bytes: RefCell::new(0),
            p2p_msgs: RefCell::new(0),
        })
    }
}

impl Comm {
    pub(crate) fn new_world(
        size: usize,
        node_of: Vec<NodeId>,
        net: Rc<Network>,
        coll: Rc<super::coll::CollShared>,
    ) -> Vec<Comm> {
        let state = CommState::new_shared(size, node_of, net, coll);
        (0..size)
            .map(|rank| Comm {
                state: Rc::clone(&state),
                rank,
            })
            .collect()
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// Fabric node hosting this rank.
    pub fn node(&self) -> NodeId {
        self.state.node_of[self.rank]
    }

    /// Fabric node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.state.node_of[rank]
    }

    /// The full rank → node mapping (used by aggregator selection).
    pub fn node_map(&self) -> Vec<NodeId> {
        self.state.node_of.clone()
    }

    /// The underlying fabric (for I/O layers that need to charge
    /// transfers directly).
    pub fn network(&self) -> Rc<Network> {
        Rc::clone(&self.state.net)
    }

    /// Total point-to-point traffic so far `(messages, bytes)`.
    pub fn p2p_traffic(&self) -> (u64, u64) {
        (
            *self.state.p2p_msgs.borrow(),
            *self.state.p2p_bytes.borrow(),
        )
    }

    fn match_waiter(mb: &mut RankMailbox, msg: Message) {
        let pos = mb.waiters.iter().position(|w| {
            (match w.src {
                SourceSel::Rank(r) => r == msg.src,
                SourceSel::Any => true,
            }) && w.tag == msg.tag
        });
        match pos {
            Some(i) => {
                let w = mb.waiters.remove(i);
                *w.slot.borrow_mut() = Some(msg);
                w.flag.set();
            }
            None => mb.arrived.push(msg),
        }
    }

    fn deliver(state: &Rc<CommState>, dst: usize, seq: u64, msg: Message) {
        let src = msg.src;
        let mut order = state.order.borrow_mut();
        let pair = order.entry((src, dst)).or_default();
        if seq != pair.next_deliver {
            pair.stash.insert(seq, msg);
            return;
        }
        drop(order);
        let mut mb = state.mailboxes.borrow_mut();
        Self::match_waiter(&mut mb[dst], msg);
        // Flush any stashed successors.
        loop {
            let mut order = state.order.borrow_mut();
            let pair = order.entry((src, dst)).or_default();
            pair.next_deliver += 1;
            let next = pair.next_deliver;
            match pair.stash.remove(&next) {
                Some(m) => {
                    drop(order);
                    Self::match_waiter(&mut mb[dst], m);
                }
                None => break,
            }
        }
    }

    /// Non-blocking send of a typed payload accounting for `bytes` on
    /// the wire. The request completes when the transfer has fully
    /// arrived (buffered-synchronous semantics).
    pub fn isend<T: 'static>(&self, dst: usize, tag: Tag, bytes: u64, data: T) -> Request {
        assert!(
            dst < self.state.size,
            "isend to rank {dst} of {}",
            self.state.size
        );
        *self.state.p2p_msgs.borrow_mut() += 1;
        *self.state.p2p_bytes.borrow_mut() += bytes;
        let seq = {
            let mut order = self.state.order.borrow_mut();
            let pair = order.entry((self.rank, dst)).or_default();
            let s = pair.next_send;
            pair.next_send += 1;
            s
        };
        let state = Rc::clone(&self.state);
        let (src_node, dst_node) = (self.node(), self.node_of(dst));
        let src = self.rank;
        let flag = Flag::new();
        let f2 = flag.clone();
        spawn(async move {
            state.net.transfer(src_node, dst_node, bytes).await;
            Self::deliver(
                &state,
                dst,
                seq,
                Message {
                    src,
                    tag,
                    bytes,
                    data: Box::new(data),
                },
            );
            f2.set();
        });
        Request::new(flag, Rc::new(RefCell::new(None)))
    }

    /// Blocking send (returns when the message has arrived).
    pub async fn send<T: 'static>(&self, dst: usize, tag: Tag, bytes: u64, data: T) {
        self.isend(dst, tag, bytes, data).wait().await;
    }

    /// Non-blocking receive matching `(src, tag)`.
    pub fn irecv(&self, src: SourceSel, tag: Tag) -> Request {
        let mut mbs = self.state.mailboxes.borrow_mut();
        let mb = &mut mbs[self.rank];
        let pos = mb.arrived.iter().position(|m| {
            (match src {
                SourceSel::Rank(r) => r == m.src,
                SourceSel::Any => true,
            }) && m.tag == tag
        });
        let flag = Flag::new();
        let slot = Rc::new(RefCell::new(None));
        match pos {
            Some(i) => {
                *slot.borrow_mut() = Some(mb.arrived.remove(i));
                flag.set();
            }
            None => {
                mb.waiters.push(RecvWaiter {
                    src,
                    tag,
                    slot: Rc::clone(&slot),
                    flag: flag.clone(),
                });
            }
        }
        Request::new(flag, slot)
    }

    /// Blocking receive.
    pub async fn recv(&self, src: SourceSel, tag: Tag) -> Message {
        self.irecv(src, tag)
            .wait()
            .await
            .expect("recv request must yield a message")
    }

    /// Convenience: blocking receive of a typed payload from a rank.
    pub async fn recv_from<T: 'static>(&self, src: usize, tag: Tag) -> T {
        self.recv(SourceSel::Rank(src), tag).await.into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{launch, WorldSpec};
    use super::*;
    use e10_simcore::run;

    #[test]
    fn send_recv_roundtrip() {
        run(async {
            let outs = launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 5, 1024, String::from("hello")).await;
                    0
                } else {
                    let m = comm.recv(SourceSel::Rank(0), 5).await;
                    assert_eq!(m.bytes, 1024);
                    assert_eq!(m.into_data::<String>(), "hello");
                    1
                }
            })
            .await;
            assert_eq!(outs, vec![0, 1]);
        });
    }

    #[test]
    fn messages_from_same_pair_arrive_in_send_order() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    // A big slow message then a tiny fast one: the tiny
                    // one must NOT overtake.
                    let r1 = comm.isend(1, 7, 100 << 20, 1u32);
                    let r2 = comm.isend(1, 7, 8, 2u32);
                    waitall(vec![r1, r2]).await;
                } else {
                    let a: u32 = comm.recv_from(0, 7).await;
                    let b: u32 = comm.recv_from(0, 7).await;
                    assert_eq!((a, b), (1, 2));
                }
            })
            .await;
        });
    }

    #[test]
    fn tags_demultiplex() {
        run(async {
            launch(WorldSpec::for_tests(2, 1), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 1, 8, 10u64).await;
                    comm.send(1, 2, 8, 20u64).await;
                } else {
                    // Receive in reverse tag order.
                    let b: u64 = comm.recv_from(0, 2).await;
                    let a: u64 = comm.recv_from(0, 1).await;
                    assert_eq!((a, b), (10, 20));
                }
            })
            .await;
        });
    }

    #[test]
    fn irecv_before_send_completes_on_arrival() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 1 {
                    let r = comm.irecv(SourceSel::Rank(0), 3);
                    assert!(!r.test());
                    let m = r.wait().await.unwrap();
                    assert_eq!(m.into_data::<u8>(), 42);
                } else {
                    e10_simcore::sleep(e10_simcore::SimDuration::from_secs(1)).await;
                    comm.send(1, 3, 16, 42u8).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn any_source_matches_first_arrival() {
        run(async {
            launch(WorldSpec::for_tests(3, 3), |comm| async move {
                if comm.rank() == 0 {
                    let a = comm.recv(SourceSel::Any, 9).await;
                    let b = comm.recv(SourceSel::Any, 9).await;
                    let mut srcs = vec![a.src, b.src];
                    srcs.sort_unstable();
                    assert_eq!(srcs, vec![1, 2]);
                } else {
                    comm.send(0, 9, 64, comm.rank()).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn traffic_accounting() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 0, 1000, ()).await;
                } else {
                    comm.recv(SourceSel::Rank(0), 0).await;
                    let (msgs, bytes) = comm.p2p_traffic();
                    assert_eq!(msgs, 1);
                    assert_eq!(bytes, 1000);
                }
            })
            .await;
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        run(async {
            launch(WorldSpec::for_tests(2, 1), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 0, 8, 1u64).await;
                } else {
                    let _: String = comm.recv_from(0, 0).await;
                }
            })
            .await;
        });
    }
}
