//! Communicators and point-to-point messaging.
//!
//! Each simulated MPI process is an async task holding a [`Comm`]. Sends
//! move their byte count across the [`e10_netsim::Network`] (so NIC and
//! switch contention are real), carry an arbitrary typed payload, and
//! match receives by `(source, tag)` with MPI's non-overtaking ordering
//! per `(source, destination)` pair.
//!
//! ## Allocation discipline
//!
//! The per-message machinery is allocation-free in steady state, so
//! two-phase rounds that send a bounded number of messages settle to
//! zero allocator calls per round (gated by `e10-romio`'s
//! `alloc_count` test):
//!
//! * **Requests** live in a generation-checked slab on the communicator
//!   instead of a `Flag` + slot `Rc` pair per operation.
//! * **Couriers** — the tasks that walk a message across the network —
//!   are pooled per task group and parked between messages instead of
//!   spawned per send. Pools are keyed by the sender's task group so a
//!   `kill_group` (node crash, killed tenant) can never hand a dead
//!   courier to a live sender: a group's couriers die with it and its
//!   idle list is simply never drawn from again.
//! * **Payload boxes** are recycled through a [`TypeId`]-keyed pool:
//!   a message's `Box<dyn Any>` wrapper returns to the pool when the
//!   message is consumed or dropped. [`Comm::send_buf`] /
//!   [`Comm::recycle_buf`] circulate payload *vector capacity* through
//!   the same pool, so senders refill from what receivers drained.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::future::poll_fn;
use std::rc::Rc;
use std::task::{Poll, Waker};

use e10_netsim::{Network, NodeId};
use e10_simcore::{current_group, spawn};

/// Message tag.
pub type Tag = u32;

/// Type-keyed shelf of reusable boxed scratch objects. `take_box`
/// returns a previously recycled `Box<T>` (or default-constructs one on
/// a cold start); `put_box` shelves it for the next taker. Steady
/// state: every take is served from the shelf and allocates nothing.
pub(crate) struct AnyPool {
    shelves: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>>,
}

impl AnyPool {
    fn new() -> AnyPool {
        AnyPool {
            shelves: RefCell::new(HashMap::new()),
        }
    }

    pub(crate) fn take_box<T: Any + Default>(&self) -> Box<T> {
        let recycled = self
            .shelves
            .borrow_mut()
            .get_mut(&TypeId::of::<T>())
            .and_then(Vec::pop);
        match recycled {
            Some(b) => b.downcast::<T>().expect("pool shelf type confusion"),
            None => Box::<T>::default(),
        }
    }

    pub(crate) fn put_box<T: Any>(&self, b: Box<T>) {
        self.shelves
            .borrow_mut()
            .entry(TypeId::of::<T>())
            .or_default()
            .push(b);
    }

    /// Shelve an already type-erased box under its content's type.
    fn put_box_dyn(&self, b: Box<dyn Any>) {
        self.shelves
            .borrow_mut()
            .entry((*b).type_id())
            .or_default()
            .push(b);
    }
}

/// A received message. The payload travels as a pooled
/// `Box<Option<T>>`; consuming or dropping the message returns the box
/// to the communicator's pool.
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Wire size in bytes (for accounting; the payload is typed).
    pub bytes: u64,
    data: Option<Box<dyn Any>>,
    pool: Option<Rc<AnyPool>>,
}

impl Message {
    /// Downcast the payload, panicking with a useful message on a type
    /// mismatch (which is always a caller bug, as in real MPI).
    pub fn into_data<T: 'static>(mut self) -> T {
        let mut b = self.data.take().expect("message payload already taken");
        let v = b
            .downcast_mut::<Option<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "message payload type mismatch (src={}, tag={})",
                    self.src, self.tag
                )
            })
            .take()
            .expect("message payload already taken");
        if let Some(pool) = &self.pool {
            pool.put_box_dyn(b);
        }
        v
    }
}

impl Drop for Message {
    fn drop(&mut self) {
        if let (Some(b), Some(pool)) = (self.data.take(), &self.pool) {
            pool.put_box_dyn(b);
        }
    }
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSel {
    /// Match a specific rank.
    Rank(usize),
    /// Match any source.
    Any,
}

struct RecvWaiter {
    src: SourceSel,
    tag: Tag,
    slot: u32,
    gen: u32,
}

#[derive(Default)]
struct RankMailbox {
    arrived: Vec<Message>,
    waiters: Vec<RecvWaiter>,
}

/// Per-(src,dst) ordering: messages are delivered in send order even if
/// wire transfers complete out of order.
#[derive(Default)]
struct PairOrder {
    next_send: u64,
    next_deliver: u64,
    stash: HashMap<u64, Message>,
}

// ---- request slab -----------------------------------------------------

enum ReqState {
    Free,
    Pending {
        waker: Option<Waker>,
        abandoned: bool,
    },
    Done(Option<Message>),
}

struct ReqSlot {
    gen: u32,
    state: ReqState,
}

/// Generation-checked request slab: one slot per in-flight operation,
/// recycled on completion. Replaces the historical per-request
/// `Flag` + `Rc<RefCell<Option<Message>>>` pair (three allocations per
/// message) with zero steady-state allocations.
#[derive(Default)]
struct ReqTable {
    slots: RefCell<Vec<ReqSlot>>,
    free: RefCell<Vec<u32>>,
}

impl ReqTable {
    fn alloc(&self) -> (u32, u32) {
        let mut slots = self.slots.borrow_mut();
        let i = match self.free.borrow_mut().pop() {
            Some(i) => i,
            None => {
                slots.push(ReqSlot {
                    gen: 0,
                    state: ReqState::Free,
                });
                (slots.len() - 1) as u32
            }
        };
        let s = &mut slots[i as usize];
        debug_assert!(matches!(s.state, ReqState::Free));
        s.state = ReqState::Pending {
            waker: None,
            abandoned: false,
        };
        (i, s.gen)
    }

    /// Complete a request. A send completes with `None`, a receive with
    /// its message. A stale generation (the owner abandoned the request
    /// and the slot was recycled) is a no-op.
    fn complete(&self, slot: u32, gen: u32, msg: Option<Message>) {
        let mut to_drop = None;
        let mut to_wake = None;
        {
            let mut slots = self.slots.borrow_mut();
            let s = &mut slots[slot as usize];
            if s.gen != gen {
                return;
            }
            match std::mem::replace(&mut s.state, ReqState::Done(msg)) {
                ReqState::Pending { waker, abandoned } => {
                    if abandoned {
                        // The handle is gone: discard the result and
                        // free the slot.
                        let ReqState::Done(m) = std::mem::replace(&mut s.state, ReqState::Free)
                        else {
                            unreachable!()
                        };
                        s.gen = s.gen.wrapping_add(1);
                        to_drop = m;
                        self.free.borrow_mut().push(slot);
                    } else {
                        to_wake = waker;
                    }
                }
                _ => panic!("request completed twice"),
            }
        }
        drop(to_drop);
        if let Some(w) = to_wake {
            w.wake();
        }
    }

    fn poll_wait(
        &self,
        slot: u32,
        gen: u32,
        cx: &mut std::task::Context<'_>,
    ) -> Poll<Option<Message>> {
        let mut slots = self.slots.borrow_mut();
        let s = &mut slots[slot as usize];
        assert_eq!(s.gen, gen, "stale request handle");
        match &mut s.state {
            ReqState::Pending { waker, .. } => {
                match waker {
                    Some(w) => w.clone_from(cx.waker()),
                    none => *none = Some(cx.waker().clone()),
                }
                Poll::Pending
            }
            ReqState::Done(_) => {
                let ReqState::Done(m) = std::mem::replace(&mut s.state, ReqState::Free) else {
                    unreachable!()
                };
                s.gen = s.gen.wrapping_add(1);
                drop(slots);
                self.free.borrow_mut().push(slot);
                Poll::Ready(m)
            }
            ReqState::Free => panic!("request polled after completion"),
        }
    }

    fn test(&self, slot: u32, gen: u32) -> bool {
        let slots = self.slots.borrow();
        let s = &slots[slot as usize];
        s.gen == gen && matches!(s.state, ReqState::Done(_))
    }

    /// The owner dropped the request handle without waiting.
    fn abandon(&self, slot: u32, gen: u32) {
        let mut to_drop = None;
        {
            let mut slots = self.slots.borrow_mut();
            let s = &mut slots[slot as usize];
            if s.gen != gen {
                return;
            }
            match &mut s.state {
                ReqState::Pending { abandoned, .. } => *abandoned = true,
                ReqState::Done(_) => {
                    let ReqState::Done(m) = std::mem::replace(&mut s.state, ReqState::Free) else {
                        unreachable!()
                    };
                    s.gen = s.gen.wrapping_add(1);
                    to_drop = m;
                    self.free.borrow_mut().push(slot);
                }
                ReqState::Free => {}
            }
        }
        drop(to_drop);
    }
}

// ---- courier pool -----------------------------------------------------

struct CourierJob {
    src_node: NodeId,
    dst_node: NodeId,
    bytes: u64,
    dst: usize,
    seq: u64,
    msg: Message,
    slot: u32,
    gen: u32,
}

struct CourierSlot {
    job: Option<CourierJob>,
    waker: Option<Waker>,
}

/// Pool of long-lived sender tasks. A courier carries one message
/// across the network, delivers it, completes its request, then parks
/// until the next [`Comm::isend`] hands it a job — the ready-queue
/// positions are identical to spawning a fresh task per message, but
/// nothing is allocated. Idle lists are keyed by task group (see the
/// module docs for why).
#[derive(Default)]
struct Couriers {
    slots: RefCell<Vec<CourierSlot>>,
    idle: RefCell<HashMap<u64, Vec<u32>>>,
}

async fn courier_loop(st: Rc<CommState>, idx: u32, gid: u64) {
    loop {
        let job = poll_fn(|cx| {
            let mut slots = st.couriers.slots.borrow_mut();
            let cs = &mut slots[idx as usize];
            match cs.job.take() {
                Some(j) => Poll::Ready(j),
                None => {
                    match &mut cs.waker {
                        Some(w) => w.clone_from(cx.waker()),
                        none => *none = Some(cx.waker().clone()),
                    }
                    Poll::Pending
                }
            }
        })
        .await;
        st.net.transfer(job.src_node, job.dst_node, job.bytes).await;
        Comm::deliver(&st, job.dst, job.seq, job.msg);
        st.reqs.complete(job.slot, job.gen, None);
        st.couriers
            .idle
            .borrow_mut()
            .entry(gid)
            .or_default()
            .push(idx);
    }
}

pub(crate) struct CommState {
    pub(crate) size: usize,
    pub(crate) node_of: Vec<NodeId>,
    pub(crate) net: Rc<Network>,
    mailboxes: RefCell<Vec<RankMailbox>>,
    order: RefCell<HashMap<(usize, usize), PairOrder>>,
    pub(crate) coll: Rc<super::coll::CollShared>,
    /// Bytes pushed through point-to-point sends (accounting).
    pub(crate) p2p_bytes: RefCell<u64>,
    pub(crate) p2p_msgs: RefCell<u64>,
    reqs: ReqTable,
    couriers: Couriers,
    pool: Rc<AnyPool>,
    /// Ranks suspected dead (ULFM-style failure knowledge, see
    /// [`crate::ft`]). Shared communicator state plays the role of a
    /// perfect failure detector: once any rank's timeout convicts a
    /// peer, every rank of the communicator observes it — the agreement
    /// protocol still exchanges real timed messages, so the *cost* of
    /// consensus is modelled even though suspicion propagates for free.
    pub(crate) dead: RefCell<Vec<bool>>,
    /// Shrunken survivor communicators, keyed by their sorted live-rank
    /// list ([`Comm::shrink`] is non-blocking: the first survivor to
    /// ask builds the state, the rest share it).
    pub(crate) shrunk: RefCell<HashMap<Vec<usize>, Rc<CommState>>>,
}

/// A communicator handle bound to one rank.
///
/// Clones share the communicator; [`Comm::rank`] distinguishes the
/// owning process. All ranks of a communicator must call collective
/// operations in the same order (as in MPI).
#[derive(Clone)]
pub struct Comm {
    pub(crate) state: Rc<CommState>,
    pub(crate) rank: usize,
}

/// A non-blocking operation handle (`MPI_Request`).
///
/// Backed by a slot in the communicator's request slab; dropping an
/// unwaited request abandons the slot (the completion frees it).
pub struct Request {
    st: Option<Rc<CommState>>,
    slot: u32,
    gen: u32,
}

impl Request {
    /// A request that is already complete.
    pub fn ready() -> Self {
        Request {
            st: None,
            slot: 0,
            gen: 0,
        }
    }

    /// Wait for completion; receives yield their message.
    pub async fn wait(mut self) -> Option<Message> {
        let st = self.st.clone()?;
        let msg = poll_fn(|cx| st.reqs.poll_wait(self.slot, self.gen, cx)).await;
        // The slot is freed; disarm the Drop-time abandon.
        self.st = None;
        msg
    }

    /// Non-blocking completion test.
    pub fn test(&self) -> bool {
        match &self.st {
            None => true,
            Some(st) => st.reqs.test(self.slot, self.gen),
        }
    }

    /// Wait for completion, giving up after `d`: `Some(result)` if the
    /// operation completed (a receive yields `Some(Some(msg))`), `None`
    /// on timeout. A timed-out request is abandoned — a late completion
    /// is discarded, never delivered. This is the detection primitive
    /// of the ULFM-shaped crash tolerance ([`crate::ft`]): a peer that
    /// stays silent past the timeout is suspected dead.
    pub async fn wait_timeout(mut self, d: e10_simcore::SimDuration) -> Option<Option<Message>> {
        use std::future::Future;
        let Some(st) = self.st.clone() else {
            return Some(None);
        };
        let mut timer = Box::pin(e10_simcore::sleep(d));
        let out = poll_fn(|cx| {
            // The request wins ties with the timer: a completion at the
            // deadline instant is still a completion.
            if let Poll::Ready(m) = st.reqs.poll_wait(self.slot, self.gen, cx) {
                return Poll::Ready(Some(m));
            }
            match timer.as_mut().poll(cx) {
                Poll::Ready(()) => Poll::Ready(None),
                Poll::Pending => Poll::Pending,
            }
        })
        .await;
        if out.is_some() {
            // Slot already freed by poll_wait; disarm the Drop abandon.
            self.st = None;
        }
        out
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        if let Some(st) = self.st.take() {
            st.reqs.abandon(self.slot, self.gen);
        }
    }
}

/// `MPI_Waitall`: wait for every request, returning any received
/// messages in request order.
pub async fn waitall(reqs: Vec<Request>) -> Vec<Option<Message>> {
    let mut out = Vec::with_capacity(reqs.len());
    for r in reqs {
        out.push(r.wait().await);
    }
    out
}

impl CommState {
    /// Build a shared communicator state (used by `new_world` and
    /// `Comm::split`).
    pub(crate) fn new_shared(
        size: usize,
        node_of: Vec<NodeId>,
        net: Rc<Network>,
        coll: Rc<super::coll::CollShared>,
    ) -> Rc<CommState> {
        assert_eq!(node_of.len(), size);
        Rc::new(CommState {
            size,
            node_of,
            net,
            mailboxes: RefCell::new((0..size).map(|_| RankMailbox::default()).collect()),
            order: RefCell::new(HashMap::new()),
            coll,
            p2p_bytes: RefCell::new(0),
            p2p_msgs: RefCell::new(0),
            reqs: ReqTable::default(),
            couriers: Couriers::default(),
            pool: Rc::new(AnyPool::new()),
            // Lazily sized on the first conviction: the default
            // (tolerance off) path must not allocate per communicator.
            dead: RefCell::new(Vec::new()),
            shrunk: RefCell::new(HashMap::new()),
        })
    }
}

impl Comm {
    pub(crate) fn new_world(
        size: usize,
        node_of: Vec<NodeId>,
        net: Rc<Network>,
        coll: Rc<super::coll::CollShared>,
    ) -> Vec<Comm> {
        let state = CommState::new_shared(size, node_of, net, coll);
        (0..size)
            .map(|rank| Comm {
                state: Rc::clone(&state),
                rank,
            })
            .collect()
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// Fabric node hosting this rank.
    pub fn node(&self) -> NodeId {
        self.state.node_of[self.rank]
    }

    /// Fabric node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.state.node_of[rank]
    }

    /// The full rank → node mapping (used by aggregator selection).
    pub fn node_map(&self) -> Vec<NodeId> {
        self.state.node_of.clone()
    }

    /// The underlying fabric (for I/O layers that need to charge
    /// transfers directly).
    pub fn network(&self) -> Rc<Network> {
        Rc::clone(&self.state.net)
    }

    /// Total point-to-point traffic so far `(messages, bytes)`.
    pub fn p2p_traffic(&self) -> (u64, u64) {
        (
            *self.state.p2p_msgs.borrow(),
            *self.state.p2p_bytes.borrow(),
        )
    }

    /// Take a reusable payload vector from the communicator's pool.
    /// Capacity circulates: what a receiver drained and
    /// [recycled](Comm::recycle_buf) refills the next sender, so
    /// steady-state rounds build their payloads without allocating.
    pub fn send_buf<T: 'static>(&self) -> Vec<T> {
        let mut b: Box<Option<Vec<T>>> = self.state.pool.take_box();
        let mut v = b.take().unwrap_or_default();
        self.state.pool.put_box(b);
        v.clear();
        v
    }

    /// Return a spent payload vector's capacity to the pool.
    pub fn recycle_buf<T: 'static>(&self, mut v: Vec<T>) {
        v.clear();
        let mut b: Box<Option<Vec<T>>> = self.state.pool.take_box();
        if b.is_none() {
            *b = Some(v);
        }
        self.state.pool.put_box(b);
    }

    fn match_waiter(state: &Rc<CommState>, mb: &mut RankMailbox, msg: Message) {
        let pos = mb.waiters.iter().position(|w| {
            (match w.src {
                SourceSel::Rank(r) => r == msg.src,
                SourceSel::Any => true,
            }) && w.tag == msg.tag
        });
        match pos {
            Some(i) => {
                let w = mb.waiters.remove(i);
                state.reqs.complete(w.slot, w.gen, Some(msg));
            }
            None => mb.arrived.push(msg),
        }
    }

    fn deliver(state: &Rc<CommState>, dst: usize, seq: u64, msg: Message) {
        let src = msg.src;
        let mut order = state.order.borrow_mut();
        let pair = order.entry((src, dst)).or_default();
        if seq != pair.next_deliver {
            pair.stash.insert(seq, msg);
            return;
        }
        drop(order);
        let mut mb = state.mailboxes.borrow_mut();
        Self::match_waiter(state, &mut mb[dst], msg);
        // Flush any stashed successors.
        loop {
            let mut order = state.order.borrow_mut();
            let pair = order.entry((src, dst)).or_default();
            pair.next_deliver += 1;
            let next = pair.next_deliver;
            match pair.stash.remove(&next) {
                Some(m) => {
                    drop(order);
                    Self::match_waiter(state, &mut mb[dst], m);
                }
                None => break,
            }
        }
    }

    /// Non-blocking send of a typed payload accounting for `bytes` on
    /// the wire. The request completes when the transfer has fully
    /// arrived (buffered-synchronous semantics).
    pub fn isend<T: 'static>(&self, dst: usize, tag: Tag, bytes: u64, data: T) -> Request {
        assert!(
            dst < self.state.size,
            "isend to rank {dst} of {}",
            self.state.size
        );
        *self.state.p2p_msgs.borrow_mut() += 1;
        *self.state.p2p_bytes.borrow_mut() += bytes;
        let seq = {
            let mut order = self.state.order.borrow_mut();
            let pair = order.entry((self.rank, dst)).or_default();
            let s = pair.next_send;
            pair.next_send += 1;
            s
        };
        let mut payload: Box<Option<T>> = self.state.pool.take_box();
        *payload = Some(data);
        let msg = Message {
            src: self.rank,
            tag,
            bytes,
            data: Some(payload),
            pool: Some(Rc::clone(&self.state.pool)),
        };
        let (slot, gen) = self.state.reqs.alloc();
        let job = CourierJob {
            src_node: self.node(),
            dst_node: self.node_of(dst),
            bytes,
            dst,
            seq,
            msg,
            slot,
            gen,
        };
        let gid = current_group();
        let reused = self
            .state
            .couriers
            .idle
            .borrow_mut()
            .get_mut(&gid)
            .and_then(Vec::pop);
        match reused {
            Some(i) => {
                let waker = {
                    let mut slots = self.state.couriers.slots.borrow_mut();
                    let cs = &mut slots[i as usize];
                    debug_assert!(cs.job.is_none(), "idle courier with a pending job");
                    cs.job = Some(job);
                    cs.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }
            None => {
                let idx = {
                    let mut slots = self.state.couriers.slots.borrow_mut();
                    slots.push(CourierSlot {
                        job: Some(job),
                        waker: None,
                    });
                    (slots.len() - 1) as u32
                };
                spawn(courier_loop(Rc::clone(&self.state), idx, gid));
            }
        }
        Request {
            st: Some(Rc::clone(&self.state)),
            slot,
            gen,
        }
    }

    /// Blocking send (returns when the message has arrived).
    pub async fn send<T: 'static>(&self, dst: usize, tag: Tag, bytes: u64, data: T) {
        self.isend(dst, tag, bytes, data).wait().await;
    }

    /// Non-blocking receive matching `(src, tag)`.
    pub fn irecv(&self, src: SourceSel, tag: Tag) -> Request {
        let (slot, gen) = self.state.reqs.alloc();
        let matched = {
            let mut mbs = self.state.mailboxes.borrow_mut();
            let mb = &mut mbs[self.rank];
            let pos = mb.arrived.iter().position(|m| {
                (match src {
                    SourceSel::Rank(r) => r == m.src,
                    SourceSel::Any => true,
                }) && m.tag == tag
            });
            match pos {
                Some(i) => Some(mb.arrived.remove(i)),
                None => {
                    mb.waiters.push(RecvWaiter {
                        src,
                        tag,
                        slot,
                        gen,
                    });
                    None
                }
            }
        };
        if let Some(m) = matched {
            self.state.reqs.complete(slot, gen, Some(m));
        }
        Request {
            st: Some(Rc::clone(&self.state)),
            slot,
            gen,
        }
    }

    /// Blocking receive with a deadline: `Some(msg)` if a matching
    /// message arrives within `d`, `None` on timeout (the posted
    /// receive is withdrawn; a later match is discarded).
    pub async fn recv_timeout(
        &self,
        src: SourceSel,
        tag: Tag,
        d: e10_simcore::SimDuration,
    ) -> Option<Message> {
        self.irecv(src, tag).wait_timeout(d).await.flatten()
    }

    /// Blocking receive.
    pub async fn recv(&self, src: SourceSel, tag: Tag) -> Message {
        self.irecv(src, tag)
            .wait()
            .await
            .expect("recv request must yield a message")
    }

    /// Convenience: blocking receive of a typed payload from a rank.
    pub async fn recv_from<T: 'static>(&self, src: usize, tag: Tag) -> T {
        self.recv(SourceSel::Rank(src), tag).await.into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{launch, WorldSpec};
    use super::*;
    use e10_simcore::run;

    #[test]
    fn send_recv_roundtrip() {
        run(async {
            let outs = launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 5, 1024, String::from("hello")).await;
                    0
                } else {
                    let m = comm.recv(SourceSel::Rank(0), 5).await;
                    assert_eq!(m.bytes, 1024);
                    assert_eq!(m.into_data::<String>(), "hello");
                    1
                }
            })
            .await;
            assert_eq!(outs, vec![0, 1]);
        });
    }

    #[test]
    fn messages_from_same_pair_arrive_in_send_order() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    // A big slow message then a tiny fast one: the tiny
                    // one must NOT overtake.
                    let r1 = comm.isend(1, 7, 100 << 20, 1u32);
                    let r2 = comm.isend(1, 7, 8, 2u32);
                    waitall(vec![r1, r2]).await;
                } else {
                    let a: u32 = comm.recv_from(0, 7).await;
                    let b: u32 = comm.recv_from(0, 7).await;
                    assert_eq!((a, b), (1, 2));
                }
            })
            .await;
        });
    }

    #[test]
    fn tags_demultiplex() {
        run(async {
            launch(WorldSpec::for_tests(2, 1), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 1, 8, 10u64).await;
                    comm.send(1, 2, 8, 20u64).await;
                } else {
                    // Receive in reverse tag order.
                    let b: u64 = comm.recv_from(0, 2).await;
                    let a: u64 = comm.recv_from(0, 1).await;
                    assert_eq!((a, b), (10, 20));
                }
            })
            .await;
        });
    }

    #[test]
    fn irecv_before_send_completes_on_arrival() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 1 {
                    let r = comm.irecv(SourceSel::Rank(0), 3);
                    assert!(!r.test());
                    let m = r.wait().await.unwrap();
                    assert_eq!(m.into_data::<u8>(), 42);
                } else {
                    e10_simcore::sleep(e10_simcore::SimDuration::from_secs(1)).await;
                    comm.send(1, 3, 16, 42u8).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn any_source_matches_first_arrival() {
        run(async {
            launch(WorldSpec::for_tests(3, 3), |comm| async move {
                if comm.rank() == 0 {
                    let a = comm.recv(SourceSel::Any, 9).await;
                    let b = comm.recv(SourceSel::Any, 9).await;
                    let mut srcs = vec![a.src, b.src];
                    srcs.sort_unstable();
                    assert_eq!(srcs, vec![1, 2]);
                } else {
                    comm.send(0, 9, 64, comm.rank()).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn traffic_accounting() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 0, 1000, ()).await;
                } else {
                    comm.recv(SourceSel::Rank(0), 0).await;
                    let (msgs, bytes) = comm.p2p_traffic();
                    assert_eq!(msgs, 1);
                    assert_eq!(bytes, 1000);
                }
            })
            .await;
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        run(async {
            launch(WorldSpec::for_tests(2, 1), |comm| async move {
                if comm.rank() == 0 {
                    comm.send(1, 0, 8, 1u64).await;
                } else {
                    let _: String = comm.recv_from(0, 0).await;
                }
            })
            .await;
        });
    }

    #[test]
    fn couriers_are_pooled_per_group_and_reused() {
        run(async {
            launch(WorldSpec::for_tests(2, 2), |comm| async move {
                if comm.rank() == 0 {
                    // Sequential sends reuse one courier; the payload
                    // box and request slot recycle too.
                    for i in 0..50u32 {
                        comm.send(1, 1, 64, i).await;
                    }
                } else {
                    for i in 0..50u32 {
                        let v: u32 = comm.recv_from(0, 1).await;
                        assert_eq!(v, i);
                    }
                }
            })
            .await;
        });
    }

    #[test]
    fn send_buf_capacity_circulates() {
        run(async {
            launch(WorldSpec::for_tests(2, 1), |comm| async move {
                if comm.rank() == 0 {
                    for round in 0..4u64 {
                        let mut v = comm.send_buf::<u64>();
                        if round > 0 {
                            assert!(v.capacity() >= 100, "recycled capacity must return");
                        }
                        v.extend(0..100);
                        comm.send(1, 2, 800, v).await;
                    }
                } else {
                    for _ in 0..4 {
                        let mut v: Vec<u64> = comm.recv_from(0, 2).await;
                        assert_eq!(v.len(), 100);
                        v.clear();
                        comm.recycle_buf(v);
                    }
                }
            })
            .await;
        });
    }
}
