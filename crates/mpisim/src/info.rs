//! `MPI_Info`: the key/value hint dictionaries through which users
//! steer ROMIO (Tables I and II of the paper).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// An MPI info object (handle semantics: clones share state).
#[derive(Clone, Default)]
pub struct Info {
    map: Rc<RefCell<BTreeMap<String, String>>>,
}

impl Info {
    /// An empty info object (`MPI_INFO_NULL` is represented by
    /// `Info::default()` with no keys).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a hint (`MPI_Info_set`).
    pub fn set(&self, key: &str, value: &str) -> &Self {
        self.map
            .borrow_mut()
            .insert(key.to_string(), value.to_string());
        self
    }

    /// Get a hint (`MPI_Info_get`).
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.borrow().get(key).cloned()
    }

    /// Parse a hint as an integer, if present and valid.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(|v| v.trim().parse().ok())
    }

    /// Remove a hint (`MPI_Info_delete`).
    pub fn delete(&self, key: &str) -> bool {
        self.map.borrow_mut().remove(key).is_some()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// True if no hints are set.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }

    /// Deep copy (`MPI_Info_dup`).
    pub fn dup(&self) -> Info {
        Info {
            map: Rc::new(RefCell::new(self.map.borrow().clone())),
        }
    }

    /// Sorted `(key, value)` pairs.
    pub fn entries(&self) -> Vec<(String, String)> {
        self.map
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Build from `(key, value)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Info {
        let info = Info::new();
        for (k, v) in pairs {
            info.set(k, v);
        }
        info
    }
}

impl std::fmt::Debug for Info {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.borrow().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete() {
        let i = Info::new();
        assert!(i.is_empty());
        i.set("cb_nodes", "16").set("e10_cache", "enable");
        assert_eq!(i.get("cb_nodes").as_deref(), Some("16"));
        assert_eq!(i.get_int("cb_nodes"), Some(16));
        assert_eq!(i.get_int("e10_cache"), None);
        assert!(i.delete("cb_nodes"));
        assert!(!i.delete("cb_nodes"));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn clones_share_but_dup_copies() {
        let a = Info::new();
        let b = a.clone();
        b.set("k", "v");
        assert_eq!(a.get("k").as_deref(), Some("v"));
        let c = a.dup();
        c.set("k", "other");
        assert_eq!(a.get("k").as_deref(), Some("v"));
    }

    #[test]
    fn entries_sorted() {
        let i = Info::from_pairs([("z", "1"), ("a", "2")]);
        let e = i.entries();
        assert_eq!(e[0].0, "a");
        assert_eq!(e[1].0, "z");
    }
}
