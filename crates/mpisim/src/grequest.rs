//! Generalized requests (`MPI_Grequest_start` /
//! `MPI_Grequest_complete`).
//!
//! The E10 cache layer hands each written extent to its sync thread
//! together with a generalized request; the sync thread calls
//! `complete()` once the extent is persistent in the global file, and
//! `ADIOI_GEN_Flush` waits on the request (paper §III-A).

use e10_simcore::Flag;

/// The waitable side of a generalized request.
#[derive(Clone)]
pub struct Grequest {
    flag: Flag,
}

/// The completion side, handed to the worker that will finish the
/// operation.
#[derive(Clone)]
pub struct GrequestCompleter {
    flag: Flag,
}

impl Grequest {
    /// Start a generalized request; returns the waitable request and
    /// its completer.
    pub fn start() -> (Grequest, GrequestCompleter) {
        let flag = Flag::new();
        (Grequest { flag: flag.clone() }, GrequestCompleter { flag })
    }

    /// `MPI_Wait`.
    pub async fn wait(&self) {
        self.flag.wait().await;
    }

    /// `MPI_Test`.
    pub fn test(&self) -> bool {
        self.flag.is_set()
    }
}

impl GrequestCompleter {
    /// `MPI_Grequest_complete`.
    pub fn complete(&self) {
        self.flag.set();
    }
}

/// Wait for a set of generalized requests (`MPI_Waitall`).
pub async fn grequest_waitall(reqs: &[Grequest]) {
    for r in reqs {
        r.wait().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{now, run, sleep, spawn, SimDuration};

    #[test]
    fn wait_blocks_until_complete() {
        let t = run(async {
            let (req, done) = Grequest::start();
            spawn(async move {
                sleep(SimDuration::from_secs(3)).await;
                done.complete();
            });
            assert!(!req.test());
            req.wait().await;
            assert!(req.test());
            now().as_secs_f64()
        });
        assert_eq!(t, 3.0);
    }

    #[test]
    fn waitall_waits_for_slowest() {
        let t = run(async {
            let mut reqs = Vec::new();
            for i in 1..=3u64 {
                let (req, done) = Grequest::start();
                spawn(async move {
                    sleep(SimDuration::from_secs(i)).await;
                    done.complete();
                });
                reqs.push(req);
            }
            grequest_waitall(&reqs).await;
            now().as_secs_f64()
        });
        assert_eq!(t, 3.0);
    }

    #[test]
    fn complete_before_wait_is_fine() {
        run(async {
            let (req, done) = Grequest::start();
            done.complete();
            req.wait().await;
            assert_eq!(now().as_secs_f64(), 0.0);
        });
    }
}
