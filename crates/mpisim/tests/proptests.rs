//! Property tests for the simulated MPI: the two collective backends
//! must be result-equivalent for random inputs, datatypes must flatten
//! consistently, and message matching must respect MPI ordering.

use proptest::prelude::*;

use e10_mpisim::{launch, CollBackend, FileView, FlatType, SourceSel, WorldSpec};

fn spec(p: usize, backend: CollBackend) -> WorldSpec {
    let mut s = WorldSpec::for_tests(p, (p / 2).max(1));
    s.backend = backend;
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Algorithmic and analytic collectives produce identical results
    /// for random communicator sizes and values.
    #[test]
    fn backends_agree_on_results(p in 1usize..12, salt in 0u64..1000) {
        let results: Vec<_> = [CollBackend::Algorithmic, CollBackend::Analytic]
            .into_iter()
            .map(|b| {
                e10_simcore::run(async move {
                    launch(spec(p, b), move |comm| async move {
                        let me = comm.rank() as u64;
                        let sum = comm
                            .allreduce(me * salt + 1, 8, |a, c| a.wrapping_add(*c))
                            .await;
                        let gath = comm.allgather(me ^ salt, 8).await;
                        let a2a = comm
                            .alltoall(
                                (0..comm.size() as u64).map(|d| me * 1000 + d).collect(),
                                8,
                            )
                            .await;
                        let b = comm
                            .bcast((p / 2).min(comm.size() - 1), Some(salt).filter(|_| {
                                comm.rank() == (p / 2).min(comm.size() - 1)
                            }), 8)
                            .await;
                        (sum, gath, a2a, b)
                    })
                    .await
                })
            })
            .collect();
        prop_assert_eq!(&results[0], &results[1]);
    }

    /// subarray flattening covers exactly lsizes.product() bytes and
    /// every run stays inside the global array.
    #[test]
    fn subarray_runs_in_bounds(
        g in prop::collection::vec(1u64..12, 1..4),
        frac in prop::collection::vec(0u64..100, 1..4),
        elem in prop::sample::select(vec![1u64, 4, 8]),
    ) {
        let ndim = g.len().min(frac.len());
        let g = &g[..ndim];
        let mut l = Vec::new();
        let mut s = Vec::new();
        for d in 0..ndim {
            let ld = (frac[d] % g[d]) + 1;
            l.push(ld);
            s.push(g[d] - ld);
        }
        let f = FlatType::subarray(g, &l, &s, elem);
        let expect: u64 = l.iter().product::<u64>() * elem;
        prop_assert_eq!(f.total_bytes(), expect);
        let gtotal: u64 = g.iter().product::<u64>() * elem;
        for &(off, len) in f.runs() {
            prop_assert!(off + len <= gtotal);
        }
        // Runs are sorted and disjoint.
        for w in f.runs().windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0);
        }
    }

    /// Window queries partition the whole view: querying consecutive
    /// windows returns every piece exactly once.
    #[test]
    fn window_queries_partition_view(
        count in 1u64..60,
        blocklen in 1u64..50,
        gap in 0u64..50,
        disp in 0u64..1000,
        win in 1u64..500,
    ) {
        let stride = blocklen + gap;
        let flat = FlatType::vector(count, blocklen, stride);
        let view = FileView::new(&flat, disp);
        let (lo, hi) = view.file_range();
        let mut covered = 0u64;
        let mut pos = lo;
        while pos < hi {
            let end = (pos + win).min(hi);
            for p in view.pieces_in_window(pos, end) {
                covered += p.len;
            }
            pos = end;
        }
        prop_assert_eq!(covered, view.total_bytes());
    }

    /// Per-pair message ordering holds for arbitrary interleavings of
    /// sizes (big messages must not be overtaken by later small ones).
    #[test]
    fn p2p_ordering_random_sizes(sizes in prop::collection::vec(0u64..(1 << 22), 1..20)) {
        let n = sizes.len();
        e10_simcore::run(async move {
            let sizes2 = sizes.clone();
            launch(WorldSpec::for_tests(2, 2), move |comm| {
                let sizes = sizes2.clone();
                async move {
                    if comm.rank() == 0 {
                        let reqs: Vec<_> = sizes
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| comm.isend(1, 5, b, i))
                            .collect();
                        e10_mpisim::waitall(reqs).await;
                    } else {
                        for expect in 0..n {
                            let m = comm.recv(SourceSel::Rank(0), 5).await;
                            assert_eq!(m.into_data::<usize>(), expect);
                        }
                    }
                }
            })
            .await;
        });
    }
}
