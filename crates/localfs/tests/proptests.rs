//! Property tests for the local file system: capacity accounting must
//! balance under arbitrary create/write/fallocate/unlink sequences.

use proptest::prelude::*;

use e10_localfs::{FsError, LocalFs, LocalFsParams};
use e10_simcore::{run, SimDuration, SimRng};
use e10_storesim::{PageCache, PageCacheParams, Payload, Ssd, SsdParams};

fn fast_fs(capacity: u64) -> LocalFs {
    let ssd = Ssd::new(
        SsdParams {
            read_bw: 1e9,
            write_bw: 1e9,
            read_latency: SimDuration::ZERO,
            write_latency: SimDuration::ZERO,
            jitter_cv: 0.0,
        },
        SimRng::new(1),
    );
    let pc = PageCache::new(PageCacheParams {
        mem_bw: 1e10,
        dirty_limit: capacity,
        capacity,
        drain_bw: 1e9,
    });
    LocalFs::new(
        LocalFsParams {
            capacity,
            supports_fallocate: true,
            meta_op: SimDuration::ZERO,
        },
        ssd,
        pc,
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write { file: u8, off: u64, len: u64 },
    Falloc { file: u8, off: u64, len: u64 },
    Unlink { file: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u64..20_000, 1u64..8_000).prop_map(|(file, off, len)| Op::Write {
            file,
            off,
            len
        }),
        (0u8..3, 0u64..20_000, 1u64..8_000).prop_map(|(file, off, len)| Op::Falloc {
            file,
            off,
            len
        }),
        (0u8..3).prop_map(|file| Op::Unlink { file }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// `used` always equals the sum of covered bytes over live files,
    /// never exceeds capacity, and returns to zero after unlinking
    /// everything.
    #[test]
    fn capacity_accounting_balances(ops in prop::collection::vec(op_strategy(), 1..30)) {
        run(async move {
            let cap = 64_000u64;
            let fs = fast_fs(cap);
            let mut files: std::collections::HashMap<String, e10_localfs::LocalFile> =
                std::collections::HashMap::new();
            for op in ops {
                match op {
                    Op::Write { file, off, len } => {
                        let path = format!("/f{file}");
                        let h = match files.entry(path.clone()) {
                            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(fs.create(&path).await.unwrap()).clone()
                            }
                        };
                        match h.write(off, Payload::gen(1, off, len)).await {
                            Ok(()) | Err(FsError::NoSpace { .. }) => {}
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                    Op::Falloc { file, off, len } => {
                        let path = format!("/f{file}");
                        if let Some(h) = files.get(&path) {
                            match h.fallocate(off, len).await {
                                Ok(()) | Err(FsError::NoSpace { .. }) => {}
                                Err(e) => panic!("unexpected error {e}"),
                            }
                        }
                    }
                    Op::Unlink { file } => {
                        let path = format!("/f{file}");
                        if files.remove(&path).is_some() {
                            fs.unlink(&path).await.unwrap();
                        }
                    }
                }
                // Invariant: used == sum of live covered bytes <= cap.
                let live: u64 = files
                    .values()
                    .map(|h: &e10_localfs::LocalFile| h.extents().covered_bytes())
                    .sum();
                let (_, used) = fs.statfs();
                prop_assert_eq!(used, live);
                prop_assert!(used <= cap);
            }
            // Drain: unlink everything → used returns to zero.
            for path in files.keys() {
                fs.unlink(path).await.unwrap();
            }
            prop_assert_eq!(fs.statfs().1, 0);
            Ok(())
        })?;
    }
}
