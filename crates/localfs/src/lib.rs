//! # e10-localfs
//!
//! The node-local file system holding the E10 cache files — the
//! simulated equivalent of the 30 GB ext4 `/scratch` partition on each
//! DEEP-ER compute node's SATA SSD.
//!
//! Behavioural points that matter to the paper:
//!
//! * **`fallocate` support.** `ADIOI_Cache_alloc()` reserves cache
//!   space with `fallocate(2)`; file systems without it fall back to
//!   physically writing zeroes "at the cost of time efficiency"
//!   (paper, §III-A footnote). Both paths are modelled.
//! * **Page-cache interaction.** Writes land in the node page cache
//!   (memory speed until the dirty limit), and the flush thread's
//!   read-back is a cache hit for recently written data — this is what
//!   makes the cache-enabled runs burst far above raw SATA bandwidth.
//! * **Capacity.** The partition is small (30 GB); cache allocation
//!   fails with `NoSpace` when it fills, which ROMIO must handle by
//!   falling back to the non-cached path.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::rc::Rc;

use e10_simcore::{SimDuration, SimRng};
use e10_storesim::{DeviceModel, ExtentMap, PageCache, Payload, Source, Ssd};

/// Errors from local file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The partition is full.
    NoSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// No such file.
    NotFound(String),
    /// File already exists (exclusive create).
    Exists(String),
    /// The backing device has permanently failed (a planned
    /// `DeviceFail` fault): every data command is refused.
    DeviceFailed {
        /// Hosting compute node.
        node: usize,
        /// Device class that died.
        class: e10_faultsim::DeviceClass,
    },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NoSpace {
                requested,
                available,
            } => {
                write!(
                    f,
                    "no space: requested {requested} B, {available} B available"
                )
            }
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
            FsError::DeviceFailed { node, class } => {
                write!(
                    f,
                    "device failed: {class:?} device on node {node} is offline"
                )
            }
        }
    }
}

impl std::error::Error for FsError {}

/// Mount-time parameters.
#[derive(Debug, Clone)]
pub struct LocalFsParams {
    /// Partition capacity in bytes.
    pub capacity: u64,
    /// Whether `fallocate(2)` is supported (ext4: yes). When false,
    /// preallocation physically writes zeroes.
    pub supports_fallocate: bool,
    /// Cost of a metadata operation (create/unlink/fallocate syscall).
    pub meta_op: SimDuration,
}

impl LocalFsParams {
    /// The DEEP-ER `/scratch` partition: 30 GB ext4 with fallocate.
    pub fn scratch_30g() -> Self {
        LocalFsParams {
            capacity: 30 * (1 << 30),
            supports_fallocate: true,
            meta_op: SimDuration::from_micros(30),
        }
    }
}

struct FileState {
    data: ExtentMap,
    /// Write-ordering log: file offset → position in the node's write
    /// stream, used to decide page-cache residency on read-back.
    stream_log: BTreeMap<u64, u64>,
    unlinked: bool,
    /// Raw append-only byte log (the substrate for small manifest /
    /// journal files, whose *contents* matter across a crash, unlike
    /// the generator-backed extent data).
    append_log: Vec<u8>,
}

impl FileState {
    fn size(&self) -> u64 {
        self.data.high_water().max(self.append_log.len() as u64)
    }

    /// Bytes charged against the partition (sparse files only pay for
    /// covered ranges, as on ext4; append-log bytes pay in full).
    fn used(&self) -> u64 {
        self.data.covered_bytes() + self.append_log.len() as u64
    }

    fn stream_pos(&self, offset: u64) -> u64 {
        match self.stream_log.range(..=offset).next_back() {
            Some((&o, &pos)) => pos + (offset - o),
            None => 0,
        }
    }
}

/// A write that has been issued but whose completion the caller has not
/// yet observed — the bytes at risk when the node loses power.
enum InFlight {
    Write {
        state: Rc<RefCell<FileState>>,
        offset: u64,
        payload: Payload,
    },
    Append {
        state: Rc<RefCell<FileState>>,
        bytes: Vec<u8>,
    },
}

struct VolumeState {
    files: HashMap<String, Rc<RefCell<FileState>>>,
    used: u64,
    stream: u64,
    /// Outstanding writes, keyed by issue ticket (BTreeMap: power-loss
    /// tearing must visit them in deterministic issue order).
    in_flight: BTreeMap<u64, InFlight>,
    next_ticket: u64,
}

/// Deregisters an in-flight write when its future completes — or when a
/// killed task's future is dropped.
struct InFlightGuard {
    vol: Rc<RefCell<VolumeState>>,
    ticket: u64,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.vol.borrow_mut().in_flight.remove(&self.ticket);
    }
}

/// One node's local file system.
#[derive(Clone)]
pub struct LocalFs {
    params: LocalFsParams,
    dev: DeviceModel,
    cache: PageCache,
    vol: Rc<RefCell<VolumeState>>,
    /// Volume-wide attachment slot (see [`LocalFs::attachment`]).
    attachment: Rc<RefCell<Option<Rc<dyn Any>>>>,
}

/// An open file on a [`LocalFs`].
#[derive(Clone)]
pub struct LocalFile {
    fs: LocalFs,
    path: String,
    state: Rc<RefCell<FileState>>,
}

impl LocalFs {
    /// Mount a volume over the given SSD and page cache.
    pub fn new(params: LocalFsParams, ssd: Ssd, cache: PageCache) -> Self {
        Self::with_device(params, DeviceModel::Ssd(ssd), cache)
    }

    /// Mount a volume over any backing device (SSD or byte-addressable
    /// NVM) and page cache.
    pub fn with_device(params: LocalFsParams, dev: DeviceModel, cache: PageCache) -> Self {
        LocalFs {
            params,
            dev,
            cache,
            vol: Rc::new(RefCell::new(VolumeState {
                files: HashMap::new(),
                used: 0,
                stream: 0,
                in_flight: BTreeMap::new(),
                next_ticket: 0,
            })),
            attachment: Rc::new(RefCell::new(None)),
        }
    }

    /// The backing device of this volume.
    pub fn device(&self) -> &DeviceModel {
        &self.dev
    }

    /// Get-or-create the volume-wide attachment of type `T`, shared by
    /// every clone of this `LocalFs`. Higher layers use this to keep
    /// exactly one piece of per-volume state (e.g. a cache arbiter)
    /// without the volume knowing its type; the slot holds one value,
    /// and asking for a different type replaces it.
    pub fn attachment<T: Any>(&self, make: impl FnOnce() -> T) -> Rc<T> {
        if let Some(existing) = self.attachment.borrow().as_ref() {
            if let Ok(t) = Rc::clone(existing).downcast::<T>() {
                return t;
            }
        }
        let made = Rc::new(make());
        *self.attachment.borrow_mut() = Some(Rc::clone(&made) as Rc<dyn Any>);
        made
    }

    /// Create (or truncate-open) a file.
    pub async fn create(&self, path: &str) -> Result<LocalFile, FsError> {
        e10_simcore::sleep(self.params.meta_op).await;
        let state = Rc::new(RefCell::new(FileState {
            data: ExtentMap::new(),
            stream_log: BTreeMap::new(),
            unlinked: false,
            append_log: Vec::new(),
        }));
        let mut vol = self.vol.borrow_mut();
        if let Some(old) = vol.files.insert(path.to_string(), Rc::clone(&state)) {
            // Truncation releases the old allocation.
            let old_used = old.borrow().used();
            vol.used = vol.used.saturating_sub(old_used);
            self.cache.evict(old_used);
        }
        Ok(LocalFile {
            fs: self.clone(),
            path: path.to_string(),
            state,
        })
    }

    /// Open an existing file.
    pub async fn open(&self, path: &str) -> Result<LocalFile, FsError> {
        e10_simcore::sleep(self.params.meta_op).await;
        let vol = self.vol.borrow();
        let state = vol
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        Ok(LocalFile {
            fs: self.clone(),
            path: path.to_string(),
            state,
        })
    }

    /// Remove a file, releasing its space.
    pub async fn unlink(&self, path: &str) -> Result<(), FsError> {
        e10_simcore::sleep(self.params.meta_op).await;
        let mut vol = self.vol.borrow_mut();
        let state = vol
            .files
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let used = state.borrow().used();
        state.borrow_mut().unlinked = true;
        vol.used = vol.used.saturating_sub(used);
        self.cache.evict(used);
        Ok(())
    }

    /// `(capacity, used)` in bytes.
    pub fn statfs(&self) -> (u64, u64) {
        (self.params.capacity, self.vol.borrow().used)
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.vol.borrow().files.contains_key(path)
    }

    /// The page cache backing this volume.
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// Refuse the command if the backing device has permanently failed.
    /// Injected at the top of every *data* command (writes, reads,
    /// preallocation, journal appends); metadata ops (create/open/
    /// unlink/punch) stay available so the layer above can tear down a
    /// retired volume's bookkeeping.
    fn check_device(&self) -> Result<(), FsError> {
        if self.dev.failed() {
            return Err(FsError::DeviceFailed {
                node: self.dev.node(),
                class: self.dev.fault_class(),
            });
        }
        Ok(())
    }

    fn reserve(&self, bytes: u64) -> Result<(), FsError> {
        let mut vol = self.vol.borrow_mut();
        let available = self.params.capacity.saturating_sub(vol.used);
        if bytes > available {
            return Err(FsError::NoSpace {
                requested: bytes,
                available,
            });
        }
        vol.used += bytes;
        Ok(())
    }

    fn register_in_flight(&self, entry: InFlight) -> InFlightGuard {
        let mut vol = self.vol.borrow_mut();
        let ticket = vol.next_ticket;
        vol.next_ticket += 1;
        vol.in_flight.insert(ticket, entry);
        InFlightGuard {
            vol: Rc::clone(&self.vol),
            ticket,
        }
    }

    /// Cut power to the node *right now*.
    ///
    /// Durability model (the NVM premise of the paper, see DESIGN.md §8):
    /// a write whose call has completed is durable on the device; a
    /// write still in flight is torn at a multiple of `atomicity` bytes
    /// — a deterministic, `rng`-sampled prefix survives, the rest is
    /// lost. The page cache comes back cold, so post-restart reads pay
    /// device time. File-system metadata survives (journalled ext4).
    ///
    /// Call this *before* killing the node's crash group: killing first
    /// would run the in-flight drop guards and silently discard the
    /// torn prefixes.
    pub fn power_loss(&self, atomicity: u64, rng: &mut SimRng) {
        let atom = atomicity.max(1);
        let entries: Vec<InFlight> = {
            let mut vol = self.vol.borrow_mut();
            std::mem::take(&mut vol.in_flight).into_values().collect()
        };
        for entry in entries {
            match entry {
                InFlight::Write {
                    state,
                    offset,
                    payload,
                } => {
                    let keep = rng.below(payload.len + 1) / atom * atom;
                    if keep > 0 {
                        let torn = payload.slice(0, keep);
                        state.borrow_mut().data.insert(offset, keep, torn.src);
                    }
                }
                InFlight::Append { state, bytes } => {
                    let keep = (rng.below(bytes.len() as u64 + 1) / atom * atom) as usize;
                    state
                        .borrow_mut()
                        .append_log
                        .extend_from_slice(&bytes[..keep]);
                }
            }
        }
        // Reconcile the partition accounting: reservations were made
        // for full in-flight lengths, but only torn prefixes landed.
        let mut vol = self.vol.borrow_mut();
        vol.used = vol.files.values().map(|f| f.borrow().used()).sum();
        self.cache.power_cycle();
    }
}

impl LocalFile {
    /// File path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Current size (max of written high-water and preallocation).
    pub fn size(&self) -> u64 {
        self.state.borrow().size()
    }

    /// Preallocate the byte range `[offset, offset + len)` (the shape
    /// of `fallocate(2)` used by `ADIOI_Cache_alloc`). Only the
    /// currently-uncovered holes of the range are charged. With
    /// `fallocate` support this is metadata-only; otherwise it
    /// physically writes zeroes (the paper's fallback, "at the cost of
    /// time efficiency").
    pub async fn fallocate(&self, offset: u64, len: u64) -> Result<(), FsError> {
        self.fs.check_device()?;
        let grow = {
            let st = self.state.borrow();
            len - st.data.covered_bytes_in(offset, len)
        };
        if grow > 0 {
            self.fs.reserve(grow)?;
        }
        e10_simcore::sleep(self.fs.params.meta_op).await;
        if grow == 0 {
            return Ok(());
        }
        if !self.fs.params.supports_fallocate {
            // Zero-fill fallback: real writes through the page cache.
            self.fs.cache.write(grow).await;
        }
        // Fill the holes one at a time (each fill is covered afterwards,
        // so the scan resumes past it) — no scratch list on this path.
        let end = offset + len;
        let mut pos = offset;
        while let Some(h) = {
            let st = self.state.borrow();
            st.data.next_hole(pos, end)
        } {
            self.write_extent_bookkeeping(h.start, h.end - h.start);
            self.state
                .borrow_mut()
                .data
                .insert(h.start, h.end - h.start, Source::Zero);
            pos = h.end;
        }
        Ok(())
    }

    fn write_extent_bookkeeping(&self, offset: u64, len: u64) {
        let mut vol = self.fs.vol.borrow_mut();
        let pos = vol.stream;
        vol.stream += len;
        self.state.borrow_mut().stream_log.insert(offset, pos);
    }

    /// Write `payload` at `offset`. Charges page-cache time and updates
    /// the extent map; grows the allocation (and fails with `NoSpace`)
    /// as needed.
    pub async fn write(&self, offset: u64, payload: Payload) -> Result<(), FsError> {
        self.fs.check_device()?;
        let len = payload.len;
        if len == 0 {
            return Ok(());
        }
        let grow = {
            let st = self.state.borrow();
            len - st.data.covered_bytes_in(offset, len)
        };
        if grow > 0 {
            self.fs.reserve(grow)?;
        }
        let _in_flight = self.fs.register_in_flight(InFlight::Write {
            state: Rc::clone(&self.state),
            offset,
            payload: payload.clone(),
        });
        // A stalled device back-pressures the page cache it drains into.
        self.fs.dev.stall_point().await;
        self.fs.cache.write(len).await;
        self.write_extent_bookkeeping(offset, len);
        self.state
            .borrow_mut()
            .data
            .insert(offset, len, payload.src);
        // Injected silent corruption: the device acks the write but the
        // medium holds a flipped bit or a torn sector. The extent map
        // mutation breaks generator identity and structural digests,
        // exactly like real bit rot under a checksumming reader.
        for c in e10_faultsim::ssd_corruption(self.fs.dev.node(), len) {
            let mut st = self.state.borrow_mut();
            match c {
                e10_faultsim::Corruption::BitFlip { offset: rel, mask } => {
                    let pos = offset + rel;
                    if let Some(b) = st.data.byte_at(pos) {
                        st.data.insert(pos, 1, Source::literal(vec![b ^ mask]));
                    }
                }
                e10_faultsim::Corruption::TornSector {
                    offset: rel,
                    len: tlen,
                } => {
                    st.data
                        .insert(offset + rel, tlen.min(len - rel), Source::Zero);
                }
            }
        }
        Ok(())
    }

    /// Byte-granular direct write: the payload goes straight to the
    /// backing device at its exact length — no page-cache staging, no
    /// prior `fallocate` required (allocation grows here, charged at
    /// byte granularity). This is the write shape of a byte-addressable
    /// NVM front-end; on a block SSD it would be `O_DIRECT` and slow,
    /// so callers gate it on [`DeviceModel::byte_granular`]. Durability
    /// and corruption semantics match [`write`](Self::write): completed
    /// calls survive power loss, in-flight calls are torn, injected
    /// device corruption lands in the extent map.
    pub async fn write_direct(&self, offset: u64, payload: Payload) -> Result<(), FsError> {
        self.fs.check_device()?;
        let len = payload.len;
        if len == 0 {
            return Ok(());
        }
        let grow = {
            let st = self.state.borrow();
            len - st.data.covered_bytes_in(offset, len)
        };
        if grow > 0 {
            self.fs.reserve(grow)?;
        }
        let _in_flight = self.fs.register_in_flight(InFlight::Write {
            state: Rc::clone(&self.state),
            offset,
            payload: payload.clone(),
        });
        self.fs.dev.stall_point().await;
        self.fs.dev.write(len).await;
        self.state
            .borrow_mut()
            .data
            .insert(offset, len, payload.src);
        for c in e10_faultsim::ssd_corruption(self.fs.dev.node(), len) {
            let mut st = self.state.borrow_mut();
            match c {
                e10_faultsim::Corruption::BitFlip { offset: rel, mask } => {
                    let pos = offset + rel;
                    if let Some(b) = st.data.byte_at(pos) {
                        st.data.insert(pos, 1, Source::literal(vec![b ^ mask]));
                    }
                }
                e10_faultsim::Corruption::TornSector {
                    offset: rel,
                    len: tlen,
                } => {
                    st.data
                        .insert(offset + rel, tlen.min(len - rel), Source::Zero);
                }
            }
        }
        Ok(())
    }

    /// Byte-granular direct read of `[offset, offset+len)`: always
    /// charges the backing device (direct writes never populate the
    /// page cache, so classifying them through the write-stream
    /// residency model would be wrong). Returns covered pieces like
    /// [`read`](Self::read).
    pub async fn read_direct(
        &self,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(Range<u64>, Option<Source>)>, FsError> {
        self.fs.check_device()?;
        if len == 0 {
            return Ok(Vec::new());
        }
        self.fs.dev.read(len).await;
        Ok(self.state.borrow().data.lookup(offset, len))
    }

    /// Append raw bytes to the file's byte log (journal substrate).
    /// Charges the same page-cache/partition costs as [`write`](Self::write);
    /// the log offset of the appended record is returned. Unlike extent
    /// writes, these bytes keep their literal contents across a
    /// [`LocalFs::power_loss`] (modulo tearing of the in-flight tail).
    pub async fn append_bytes(&self, bytes: &[u8]) -> Result<u64, FsError> {
        self.fs.check_device()?;
        let len = bytes.len() as u64;
        if len == 0 {
            return Ok(self.state.borrow().append_log.len() as u64);
        }
        self.fs.reserve(len)?;
        let _in_flight = self.fs.register_in_flight(InFlight::Append {
            state: Rc::clone(&self.state),
            bytes: bytes.to_vec(),
        });
        let at = self.state.borrow().append_log.len() as u64;
        self.write_extent_bookkeeping(at, len);
        self.fs.dev.stall_point().await;
        self.fs.cache.write(len).await;
        self.state.borrow_mut().append_log.extend_from_slice(bytes);
        Ok(at)
    }

    /// Read the whole byte log, charging page-cache or device time.
    pub async fn read_log(&self) -> Vec<u8> {
        let len = self.state.borrow().append_log.len() as u64;
        if len > 0 {
            let stream_pos = self.state.borrow().stream_pos(0);
            let hit = self.fs.cache.read_at(stream_pos, len).await;
            if !hit {
                self.fs.dev.read(len).await;
            }
        }
        self.state.borrow().append_log.clone()
    }

    /// Current length of the byte log.
    pub fn log_len(&self) -> u64 {
        self.state.borrow().append_log.len() as u64
    }

    /// Read `[offset, offset+len)`: charges page-cache or device time
    /// and returns the covered pieces (holes as `None`).
    pub async fn read(
        &self,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(Range<u64>, Option<Source>)>, FsError> {
        let mut out = Vec::new();
        self.read_into(offset, len, &mut out).await?;
        Ok(out)
    }

    /// [`read`](Self::read) appending into a caller-provided buffer, so
    /// steady-state readers (the cache sync path) can reuse one
    /// allocation across calls.
    pub async fn read_into(
        &self,
        offset: u64,
        len: u64,
        out: &mut Vec<(Range<u64>, Option<Source>)>,
    ) -> Result<(), FsError> {
        self.fs.check_device()?;
        if len == 0 {
            return Ok(());
        }
        let stream_pos = self.state.borrow().stream_pos(offset);
        let hit = self.fs.cache.read_at(stream_pos, len).await;
        if !hit {
            self.fs.dev.read(len).await;
        }
        self.state.borrow().data.lookup_into(offset, len, out);
        Ok(())
    }

    /// fsync: wait for writeback of all dirty node data.
    pub async fn sync(&self) {
        // Writeback drains through the device; a planned stall delays it.
        self.fs.dev.stall_point().await;
        self.fs.cache.flush().await;
    }

    /// Punch a hole (`fallocate(FALLOC_FL_PUNCH_HOLE)`): drop
    /// `[offset, offset+len)` from the file, releasing its blocks back
    /// to the partition. Metadata-only cost.
    pub async fn punch(&self, offset: u64, len: u64) {
        e10_simcore::sleep(self.fs.params.meta_op).await;
        let freed = {
            let st = self.state.borrow();
            st.data.covered_bytes_in(offset, len)
        };
        if freed == 0 {
            return;
        }
        {
            let mut st = self.state.borrow_mut();
            st.data.remove(offset, len);
            // Drop stream-position records for the punched range so the
            // log stays bounded under streaming eviction (punch → write
            // → punch forever must not grow any index).
            while let Some((&k, _)) = st.stream_log.range(offset..offset + len).next() {
                st.stream_log.remove(&k);
            }
        }
        let mut vol = self.fs.vol.borrow_mut();
        vol.used = vol.used.saturating_sub(freed);
        self.fs.cache.evict(freed);
    }

    /// Direct access to the extent map (verification in tests).
    pub fn extents(&self) -> ExtentMap {
        self.state.borrow().data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{now, run, SimRng};
    use e10_storesim::{PageCacheParams, SsdParams};

    fn fast_node() -> (Ssd, PageCache) {
        let ssd = Ssd::new(
            SsdParams {
                read_bw: 1000.0,
                write_bw: 500.0,
                read_latency: SimDuration::ZERO,
                write_latency: SimDuration::ZERO,
                jitter_cv: 0.0,
            },
            SimRng::new(1),
        );
        let pc = PageCache::new(PageCacheParams {
            mem_bw: 10_000.0,
            dirty_limit: 2000,
            capacity: 4000,
            drain_bw: 500.0,
        });
        (ssd, pc)
    }

    fn small_fs() -> LocalFs {
        let (ssd, pc) = fast_node();
        LocalFs::new(
            LocalFsParams {
                capacity: 10_000,
                supports_fallocate: true,
                meta_op: SimDuration::ZERO,
            },
            ssd,
            pc,
        )
    }

    #[test]
    fn create_write_read_roundtrip() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/scratch/cache.0").await.unwrap();
            f.write(100, Payload::gen(7, 100, 50)).await.unwrap();
            let pieces = f.read(90, 70).await.unwrap();
            assert_eq!(pieces.len(), 3);
            assert!(pieces[0].1.is_none());
            assert!(pieces[1].1.is_some());
            assert!(pieces[2].1.is_none());
            assert!(f.extents().verify_gen(7, 100, 50).is_ok());
            assert_eq!(f.size(), 150);
        });
    }

    #[test]
    fn capacity_enforced() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::zero(9000)).await.unwrap();
            let err = f.write(9000, Payload::zero(2000)).await.unwrap_err();
            assert!(matches!(err, FsError::NoSpace { .. }));
            let (cap, used) = fs.statfs();
            assert_eq!(cap, 10_000);
            assert_eq!(used, 9000);
        });
    }

    #[test]
    fn unlink_releases_space() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::zero(5000)).await.unwrap();
            fs.unlink("/a").await.unwrap();
            assert_eq!(fs.statfs().1, 0);
            assert!(!fs.exists("/a"));
            let err = match fs.open("/a").await {
                Err(e) => e,
                Ok(_) => panic!("open of unlinked file must fail"),
            };
            assert!(matches!(err, FsError::NotFound(_)));
        });
    }

    #[test]
    fn fallocate_is_cheap_with_support() {
        let t = run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.fallocate(0, 8000).await.unwrap();
            assert_eq!(f.size(), 8000);
            assert_eq!(fs.statfs().1, 8000);
            now().as_secs_f64()
        });
        assert!(t < 0.001, "fallocate must be metadata-only, took {t}s");
    }

    #[test]
    fn fallocate_zero_fill_fallback_costs_io_time() {
        let t = run(async {
            let (ssd, pc) = fast_node();
            let fs = LocalFs::new(
                LocalFsParams {
                    capacity: 10_000,
                    supports_fallocate: false,
                    meta_op: SimDuration::ZERO,
                },
                ssd,
                pc,
            );
            let f = fs.create("/a").await.unwrap();
            f.fallocate(0, 4000).await.unwrap();
            // Zero content must actually be readable.
            assert!(f.extents().covered(0, 4000));
            now().as_secs_f64()
        });
        assert!(t > 0.5, "zero-fill must cost real time, took {t}s");
    }

    #[test]
    fn fallocate_nospace() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            let err = f.fallocate(0, 20_000).await.unwrap_err();
            assert!(matches!(err, FsError::NoSpace { .. }));
        });
    }

    #[test]
    fn recreate_truncates_and_releases() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::zero(6000)).await.unwrap();
            let f2 = fs.create("/a").await.unwrap();
            assert_eq!(fs.statfs().1, 0);
            assert_eq!(f2.size(), 0);
        });
    }

    #[test]
    fn read_back_of_recent_write_is_fast_cache_hit() {
        let (t_hit, t_cold) = run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::zero(1000)).await.unwrap();
            let t0 = now();
            f.read(0, 1000).await.unwrap();
            let t_hit = now().since(t0).as_secs_f64();

            // Push enough data through to evict the early bytes
            // (page-cache capacity is 4000).
            f.write(1000, Payload::zero(8000)).await.unwrap();
            let t1 = now();
            f.read(0, 1000).await.unwrap();
            (t_hit, now().since(t1).as_secs_f64())
        });
        assert!(t_hit < t_cold, "hit={t_hit} cold={t_cold}");
    }

    #[test]
    fn sync_waits_for_writeback() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::zero(1500)).await.unwrap();
            f.sync().await;
            assert_eq!(fs.page_cache().dirty(), 0);
        });
    }

    #[test]
    fn append_log_roundtrips_and_charges_capacity() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/scratch/x.jnl").await.unwrap();
            assert_eq!(f.append_bytes(b"rec-one.").await.unwrap(), 0);
            assert_eq!(f.append_bytes(b"rec-two.").await.unwrap(), 8);
            assert_eq!(f.log_len(), 16);
            assert_eq!(f.read_log().await, b"rec-one.rec-two.");
            assert_eq!(fs.statfs().1, 16);
            fs.unlink("/scratch/x.jnl").await.unwrap();
            assert_eq!(fs.statfs().1, 0, "unlink must release log bytes");
        });
    }

    #[test]
    fn completed_writes_survive_power_loss_and_cache_goes_cold() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::gen(3, 0, 1000)).await.unwrap();
            f.append_bytes(b"0123456789abcdef").await.unwrap();
            let t0 = now();
            f.read(0, 1000).await.unwrap();
            let warm = now().since(t0).as_secs_f64();

            fs.power_loss(512, &mut SimRng::new(1));
            assert!(
                f.extents().verify_gen(3, 0, 1000).is_ok(),
                "acked data is durable"
            );
            assert_eq!(f.read_log().await, b"0123456789abcdef");
            assert_eq!(fs.statfs().1, 1016, "accounting must be intact");

            let t1 = now();
            f.read(0, 1000).await.unwrap();
            let cold = now().since(t1).as_secs_f64();
            assert!(cold > warm, "post-restart read must be a device read");
        });
    }

    #[test]
    fn in_flight_write_is_torn_at_the_atomicity_unit() {
        run(async {
            let fs = small_fs();
            let f = fs.create("/a").await.unwrap();
            let gid = e10_simcore::new_group();
            let f2 = f.clone();
            e10_simcore::spawn_in_group(gid, async move {
                // 5000 B at 10 000 B/s memory speed: 0.5 s in flight.
                f2.write(0, Payload::gen(9, 0, 5000)).await.unwrap();
                unreachable!("the node dies before the write completes");
            });
            sleep_quarter().await;
            // Power loss FIRST, then the crash-group kill (the contract
            // documented on power_loss).
            fs.power_loss(512, &mut SimRng::new(7));
            e10_simcore::kill_group(gid);

            let kept = f.extents().covered_bytes();
            assert!(kept < 5000, "a torn write must not be complete");
            assert_eq!(kept % 512, 0, "tear must respect the atomicity unit");
            if kept > 0 {
                assert!(
                    f.extents().verify_gen(9, 0, kept).is_ok(),
                    "prefix is real data"
                );
            }
            assert_eq!(
                fs.statfs().1,
                kept,
                "reservation must shrink to the torn prefix"
            );
            // A second power loss with nothing in flight changes nothing.
            fs.power_loss(512, &mut SimRng::new(8));
            assert_eq!(f.extents().covered_bytes(), kept);
        });
    }

    #[test]
    fn dead_device_refuses_data_commands_with_a_typed_error() {
        run(async {
            let fs = small_fs();
            fs.device().set_node(3);
            let f = fs.create("/a").await.unwrap();
            f.write(0, Payload::gen(1, 0, 100)).await.unwrap();
            let _g =
                e10_faultsim::FaultSchedule::install(e10_faultsim::FaultPlan::new(1).device_fail(
                    3,
                    e10_faultsim::DeviceClass::Ssd,
                    e10_simcore::SimTime::ZERO,
                ));
            let err = f.write(100, Payload::zero(100)).await.unwrap_err();
            assert!(matches!(
                err,
                FsError::DeviceFailed {
                    node: 3,
                    class: e10_faultsim::DeviceClass::Ssd
                }
            ));
            assert!(err.to_string().contains("node 3"));
            // Every data command is refused...
            assert!(f.read(0, 100).await.is_err());
            assert!(f.fallocate(0, 200).await.is_err());
            assert!(f.append_bytes(b"x").await.is_err());
            assert!(f.read_direct(0, 100).await.is_err());
            // ...while metadata stays available for teardown, and data
            // written before the failure is still accounted.
            assert!(fs.exists("/a"));
            assert_eq!(fs.statfs().1, 100);
            fs.unlink("/a").await.unwrap();
        });
    }

    #[test]
    fn nvm_device_fail_spares_the_ssd_class() {
        run(async {
            let fs = small_fs(); // SSD-backed
            let f = fs.create("/a").await.unwrap();
            let _g =
                e10_faultsim::FaultSchedule::install(e10_faultsim::FaultPlan::new(1).device_fail(
                    0,
                    e10_faultsim::DeviceClass::Nvm,
                    e10_simcore::SimTime::ZERO,
                ));
            // The SSD partition on the same node is unaffected.
            f.write(0, Payload::gen(1, 0, 100)).await.unwrap();
            let nfs = small_nvm_fs();
            let nf = nfs.create("/nvm/a").await.unwrap();
            let err = nf.write_direct(0, Payload::zero(10)).await.unwrap_err();
            assert!(matches!(err, FsError::DeviceFailed { .. }));
        });
    }

    #[test]
    fn power_loss_tearing_is_deterministic() {
        let kept_with = |seed: u64| {
            run(async move {
                let fs = small_fs();
                let f = fs.create("/a").await.unwrap();
                let gid = e10_simcore::new_group();
                let f2 = f.clone();
                e10_simcore::spawn_in_group(gid, async move {
                    let _ = f2.write(0, Payload::gen(9, 0, 5000)).await;
                });
                sleep_quarter().await;
                fs.power_loss(64, &mut SimRng::new(seed));
                e10_simcore::kill_group(gid);
                f.extents().covered_bytes()
            })
        };
        assert_eq!(kept_with(3), kept_with(3));
    }

    async fn sleep_quarter() {
        e10_simcore::sleep(SimDuration::from_millis(250)).await;
    }

    fn small_nvm_fs() -> LocalFs {
        let dev = e10_storesim::Nvm::new(
            e10_storesim::NvmParams {
                read_bw: 1000.0,
                write_bw: 500.0,
                read_latency: SimDuration::ZERO,
                write_latency: SimDuration::ZERO,
                channels: 2,
                jitter_cv: 0.0,
            },
            SimRng::new(2),
        );
        let (_, pc) = fast_node();
        LocalFs::with_device(
            LocalFsParams {
                capacity: 10_000,
                supports_fallocate: true,
                meta_op: SimDuration::ZERO,
            },
            DeviceModel::Nvm(dev),
            pc,
        )
    }

    #[test]
    fn direct_write_charges_the_device_not_the_page_cache() {
        run(async {
            let fs = small_nvm_fs();
            assert!(fs.device().byte_granular());
            let f = fs.create("/nvm/cache.0").await.unwrap();
            f.write_direct(100, Payload::gen(7, 100, 50)).await.unwrap();
            assert_eq!(fs.page_cache().dirty(), 0, "direct writes skip the cache");
            assert_eq!(fs.statfs().1, 50, "allocation is byte-granular");
            assert!(f.extents().verify_gen(7, 100, 50).is_ok());
            let pieces = f.read_direct(100, 50).await.unwrap();
            assert_eq!(pieces.len(), 1);
            assert!(pieces[0].1.is_some());
        });
    }

    #[test]
    fn direct_write_enforces_capacity() {
        run(async {
            let fs = small_nvm_fs();
            let f = fs.create("/nvm/cache.0").await.unwrap();
            f.write_direct(0, Payload::zero(9000)).await.unwrap();
            let err = f.write_direct(9000, Payload::zero(2000)).await.unwrap_err();
            assert!(matches!(err, FsError::NoSpace { .. }));
        });
    }

    #[test]
    fn completed_direct_writes_survive_power_loss() {
        run(async {
            let fs = small_nvm_fs();
            let f = fs.create("/nvm/cache.0").await.unwrap();
            f.write_direct(0, Payload::gen(3, 0, 1000)).await.unwrap();
            fs.power_loss(512, &mut SimRng::new(1));
            assert!(f.extents().verify_gen(3, 0, 1000).is_ok());
            assert_eq!(fs.statfs().1, 1000);
        });
    }

    #[test]
    fn in_flight_direct_write_is_torn_like_a_staged_one() {
        run(async {
            let fs = small_nvm_fs();
            let f = fs.create("/a").await.unwrap();
            let gid = e10_simcore::new_group();
            let f2 = f.clone();
            e10_simcore::spawn_in_group(gid, async move {
                // 5000 B at 500 B/s aggregate (250 B/s per channel,
                // single stream): 20 s in flight.
                f2.write_direct(0, Payload::gen(9, 0, 5000)).await.unwrap();
                unreachable!("the node dies before the write completes");
            });
            sleep_quarter().await;
            fs.power_loss(512, &mut SimRng::new(7));
            e10_simcore::kill_group(gid);
            let kept = f.extents().covered_bytes();
            assert!(kept < 5000, "a torn direct write must not be complete");
            assert_eq!(kept % 512, 0, "tear must respect the atomicity unit");
            assert_eq!(fs.statfs().1, kept);
        });
    }
}
