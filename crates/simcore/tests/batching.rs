//! Edge-case tests for batched same-instant event delivery.
//!
//! The executor drains every calendar event sharing the current
//! `SimTime` into a reusable dispatch buffer in one heap pass, then
//! fires them one at a time with a full ready-queue drain between
//! fires — so the observable interleaving is byte-identical to the
//! unbatched executor. These tests pin the hazards of that design:
//! FIFO tie-breaks, cancels landing *after* a body is buffered, stale
//! calendar entries under cancel storms, and the counters `RunStats`
//! grew for the batching work.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::task::Waker;

use e10_simcore::{
    now, run, run_with_stats, schedule_call, schedule_call_at, sleep, sleep_until, spawn,
    EventHandle, FairShare, SimDuration,
};

#[test]
fn duplicate_deadlines_fire_in_seq_order_across_event_kinds() {
    // Ten callbacks scheduled synchronously by main, then ten tasks
    // whose sleeps register later (they first run once main parks):
    // at the shared deadline, all twenty events fire in scheduling-seq
    // order — callbacks first, then the task wakes, each FIFO.
    let order = run(async {
        let order = Rc::new(RefCell::new(Vec::new()));
        let t = now() + SimDuration::from_secs(1);
        for i in 0..10u32 {
            let o = Rc::clone(&order);
            schedule_call_at(t, move || o.borrow_mut().push(i));
        }
        for i in 10..20u32 {
            let o = Rc::clone(&order);
            spawn(async move {
                sleep_until(t).await;
                o.borrow_mut().push(i);
            });
        }
        sleep(SimDuration::from_secs(2)).await;
        Rc::try_unwrap(order).unwrap().into_inner()
    });
    assert_eq!(order, (0..20).collect::<Vec<_>>());
}

#[test]
fn same_instant_cancel_of_an_already_batched_body_is_honoured() {
    // Both events share one instant, so the second body is already in
    // the dispatch buffer when the first fires and cancels it. The
    // fire-time flag re-check must suppress it.
    let fired = run(async {
        let fired = Rc::new(Cell::new(0u32));
        let holder: Rc<RefCell<Option<EventHandle>>> = Rc::new(RefCell::new(None));
        let h = Rc::clone(&holder);
        schedule_call(SimDuration::from_secs(1), move || {
            if let Some(h2) = h.borrow_mut().take() {
                h2.cancel();
            }
        });
        let f = Rc::clone(&fired);
        let h2 = schedule_call(SimDuration::from_secs(1), move || f.set(f.get() + 1));
        *holder.borrow_mut() = Some(h2);
        sleep(SimDuration::from_secs(2)).await;
        fired.get()
    });
    assert_eq!(fired, 0, "a mid-batch cancel must still suppress the body");
}

#[test]
fn cancel_storm_interleaved_with_batched_pops_keeps_heap_bounded() {
    // 50 rounds × 100 armed-then-cancelled timeouts leave 5000 stale
    // calendar entries behind; the batched-drain purge must keep the
    // heap near the live population instead of accumulating them.
    let ((), stats) = run_with_stats(async {
        for round in 0..50u64 {
            let handles: Vec<EventHandle> = (0..100)
                .map(|i| {
                    schedule_call(SimDuration::from_secs(1_000 + round * 100 + i), || {
                        unreachable!("cancelled timeout must never fire")
                    })
                })
                .collect();
            for h in &handles {
                h.cancel();
            }
            sleep(SimDuration::from_secs(1)).await;
        }
    });
    assert!(
        stats.heap_peak < 300,
        "stale entries must be purged: heap_peak={}",
        stats.heap_peak
    );
}

#[test]
fn run_stats_count_batched_events() {
    let ((), stats) = run_with_stats(async {
        let hs: Vec<_> = (0..10)
            .map(|_| spawn(async { sleep(SimDuration::from_secs(1)).await }))
            .collect();
        for h in hs {
            h.await;
        }
    });
    // All ten sleep wakes share t=1s and form one batch.
    assert!(
        stats.events_batched >= 10,
        "expected a batch of >= 10, stats={stats:?}"
    );
    assert!(stats.heap_peak >= 10, "stats={stats:?}");
}

#[test]
fn run_stats_count_coalesced_wakes() {
    // A callback that wakes the same parked task twice in one instant:
    // the second wake finds the task already queued and is absorbed.
    struct Park {
        done: Rc<Cell<bool>>,
        waker_out: Rc<RefCell<Option<Waker>>>,
    }
    impl std::future::Future for Park {
        type Output = ();
        fn poll(
            self: std::pin::Pin<&mut Self>,
            cx: &mut std::task::Context<'_>,
        ) -> std::task::Poll<()> {
            if self.done.get() {
                std::task::Poll::Ready(())
            } else {
                *self.waker_out.borrow_mut() = Some(cx.waker().clone());
                std::task::Poll::Pending
            }
        }
    }
    let ((), stats) = run_with_stats(async {
        let done = Rc::new(Cell::new(false));
        let stash: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        let s = Rc::clone(&stash);
        let h = spawn(Park {
            done: d,
            waker_out: s,
        });
        let d2 = Rc::clone(&done);
        schedule_call(SimDuration::from_secs(1), move || {
            d2.set(true);
            let w = stash.borrow_mut().take().unwrap();
            w.wake_by_ref();
            w.wake();
        });
        h.await;
    });
    assert!(stats.wakes_coalesced >= 1, "stats={stats:?}");
}

#[test]
fn fair_share_timer_superseded_mid_batch_is_inert() {
    // Task B's sleep wake (earlier seq) and A's completion timer (later
    // seq) share t=1s. B fires first, joins the resource, and its
    // reschedule supersedes the buffered timer; the stale body must be
    // a no-op. A bug here double-settles or re-arms a ghost timer.
    let (ta, tb) = run(async {
        let link = FairShare::new(100.0);
        let l2 = link.clone();
        let hb = spawn(async move {
            sleep(SimDuration::from_secs(1)).await;
            l2.serve(100.0).await;
            now().as_secs_f64()
        });
        let l1 = link.clone();
        let ha = spawn(async move {
            l1.serve(100.0).await;
            now().as_secs_f64()
        });
        (ha.await, hb.await)
    });
    assert!((ta - 1.0).abs() < 1e-9, "ta={ta}");
    assert!((tb - 2.0).abs() < 1e-9, "tb={tb}");
}

#[test]
fn batched_runs_remain_reproducible() {
    // Belt-and-braces determinism anchor over a mixed workload:
    // identical inputs, identical event trace statistics.
    fn experiment() -> (f64, u64, u64) {
        let (end, stats) = run_with_stats(async {
            let link = FairShare::new(1e6);
            let hs: Vec<_> = (0..32)
                .map(|i| {
                    let l = link.clone();
                    spawn(async move {
                        sleep(SimDuration::from_millis(i % 7)).await;
                        l.serve(1e4 * (i + 1) as f64).await;
                    })
                })
                .collect();
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        (end, stats.events_fired, stats.events_batched)
    }
    assert_eq!(experiment(), experiment());
}
