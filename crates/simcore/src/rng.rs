//! Deterministic random numbers and the distributions used by the device
//! and jitter models.
//!
//! Every model owns its own [`SimRng`], seeded from the experiment seed
//! plus a stable stream id, so adding a model never perturbs the draws of
//! another (the "independent streams" discipline common in simulation
//! codebases).

use crate::chacha::StdRng;

/// A seeded random number generator for one model/stream.
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream from a base seed and a stream id.
    /// Uses SplitMix64 finalisation so nearby ids give unrelated seeds.
    pub fn stream(base_seed: u64, stream: u64) -> Self {
        SimRng::new(splitmix64(base_seed ^ splitmix64(stream)))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Exponential with the given mean (inverse-transform sampling).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = 1.0 - self.uniform(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal parameterised by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Bounded Pareto-ish heavy tail with minimum `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        let u = 1.0 - self.uniform();
        xm / u.powf(1.0 / alpha)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A multiplicative jitter model: draws service-time multipliers with
/// mean 1.0 and a configurable coefficient of variation, log-normally
/// distributed (the standard model for storage-server response-time
/// variability, which is the phenomenon driving the paper's global-
/// synchronisation cost).
pub struct Jitter {
    rng: SimRng,
    mu: f64,
    sigma: f64,
}

impl Jitter {
    /// `cv` is the coefficient of variation (std-dev / mean) of the
    /// multiplier; `cv = 0` disables jitter.
    pub fn new(rng: SimRng, cv: f64) -> Self {
        assert!(cv >= 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        Jitter {
            rng,
            mu: -sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draw a multiplier (mean 1.0).
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            1.0
        } else {
            self.rng.lognormal(self.mu, self.sigma)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::stream(42, 7);
        let mut b = SimRng::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = SimRng::stream(42, 1);
        let mut b = SimRng::stream(42, 2);
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(1);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = s / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn jitter_mean_is_one_and_cv_matches() {
        let mut j = Jitter::new(SimRng::new(3), 0.5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| j.sample()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
        assert!((cv - 0.5).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn zero_cv_jitter_is_identity() {
        let mut j = Jitter::new(SimRng::new(4), 0.0);
        for _ in 0..10 {
            assert_eq!(j.sample(), 1.0);
        }
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
