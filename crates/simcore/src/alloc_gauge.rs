//! A counting global allocator for allocation-regression gates.
//!
//! The simulation is deterministic and single-threaded, so the number
//! of allocator calls for a fixed scenario is a stable, reproducible
//! metric — and "zero allocations per steady-state round" is a property
//! a test can assert exactly. This module promotes the PR-3 counting
//! allocator (formerly private to `e10-romio/tests/alloc_count.rs`)
//! into a reusable gauge that any bin or test can install:
//!
//! ```ignore
//! use e10_simcore::alloc_gauge::{self, CountingAlloc};
//!
//! #[global_allocator]
//! static A: CountingAlloc = CountingAlloc;
//!
//! let (n, _) = alloc_gauge::count(|| expensive_scenario());
//! println!("allocator calls: {n}");
//! ```
//!
//! Counting covers `alloc` and `realloc` (a `realloc` is a fresh
//! allocator round-trip even when it resizes in place); `dealloc` is
//! free. The counter is atomic and process-global, so it also works
//! under the bench worker pool — but per-scenario counts are only
//! meaningful when exactly one simulation thread runs inside the
//! counted window (`E10_JOBS=1`), which is how the gates invoke it.
//!
//! When `CountingAlloc` is *not* installed as the global allocator the
//! helpers still run the closure; they just report 0 — callers that
//! require real numbers can check [`is_installed`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static BT_LO: AtomicU64 = AtomicU64::new(u64::MAX);
static BT_HI: AtomicU64 = AtomicU64::new(u64::MAX);

thread_local! {
    static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Debug aid for allocation hunts: print a backtrace for every counted
/// allocation whose ordinal falls in `[lo, hi)`. `RUST_BACKTRACE=1`
/// must be set for symbols. Disabled (the default) it costs one atomic
/// load per counted allocation.
pub fn trace_range(lo: u64, hi: u64) {
    BT_LO.store(lo, Ordering::Relaxed);
    BT_HI.store(hi, Ordering::Relaxed);
}

fn note_alloc() {
    let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
    if n >= BT_LO.load(Ordering::Relaxed) && n < BT_HI.load(Ordering::Relaxed) {
        IN_HOOK.with(|f| {
            if !f.get() {
                f.set(true);
                eprintln!(
                    "alloc #{n} at:\n{}",
                    std::backtrace::Backtrace::force_capture()
                );
                f.set(false);
            }
        });
    }
}

/// A `System`-backed allocator that counts `alloc`/`realloc` calls
/// while counting is enabled. Install with `#[global_allocator]`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            note_alloc();
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            note_alloc();
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

impl CountingAlloc {
    /// `const` constructor so the static can note its installation.
    /// (Installation detection relies on the first `alloc` call; this
    /// exists for symmetry and future flags.)
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

/// Record that a `CountingAlloc` is the process allocator. Called by
/// [`count`]'s self-check; bins may call it once at startup.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Whether counting observed any traffic yet (a proxy for "the gauge
/// allocator is really installed").
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Allocator calls observed since the last [`reset`], regardless of
/// whether counting is currently enabled.
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Zero the counter.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
}

/// Enable counting (idempotent).
pub fn enable() {
    COUNTING.store(true, Ordering::Relaxed);
}

/// Disable counting (idempotent).
pub fn disable() {
    COUNTING.store(false, Ordering::Relaxed);
}

/// Count allocator calls across `f`, returning `(calls, f())`.
///
/// Resets the counter, so it measures `f` alone; nesting is not
/// supported (the inner `count` would clobber the outer window).
pub fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    reset();
    enable();
    let out = f();
    disable();
    let n = allocs();
    if n > 0 {
        mark_installed();
    }
    (n, out)
}
