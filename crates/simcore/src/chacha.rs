//! A self-contained reimplementation of the `rand 0.8` `StdRng`
//! (ChaCha with 12 rounds, 64-bit block counter, block-buffered output)
//! so the workspace builds with no external dependencies.
//!
//! Bit-compatibility with the original generator matters: every figure
//! in `results/` was produced with `StdRng`, and the committed outputs
//! double as regression vectors. The pieces that must match exactly:
//!
//! * `seed_from_u64` — rand_core's PCG32-based seed expansion,
//! * the ChaCha12 block function with the `RngCore` word layout
//!   (64-bit counter in words 12–13, zero stream in words 14–15),
//! * the four-blocks-per-refill buffering and the `next_u64` word
//!   pairing of rand_core's `BlockRng`, including the odd-index
//!   straddle case,
//! * the `[0, 1)` `f64` conversion (53 high bits / 2^53) and the
//!   widening-multiply rejection sampling behind `gen_range`.

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 64-byte ChaCha12 block for the given key/counter, written as 16
/// little-endian u32 words.
fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    let mut x: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = x;
    for _ in 0..6 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(initial.iter())) {
        *o = w.wrapping_add(*i);
    }
}

const BUF_WORDS: usize = 64; // four blocks per refill, as in rand_chacha

/// Drop-in equivalent of `rand::rngs::StdRng` (rand 0.8 / rand_chacha
/// 0.3): ChaCha12 keyed from the seed, buffered four blocks at a time.
#[derive(Clone)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means "empty".
    index: usize,
}

impl StdRng {
    /// rand_core's `SeedableRng::from_seed` for ChaCha: the 32 seed
    /// bytes become the key, counter and stream start at zero.
    pub fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// rand_core's default `seed_from_u64`: a PCG32 stream expands the
    /// 64-bit seed into the 32-byte ChaCha key.
    pub fn seed_from_u64(state: u64) -> StdRng {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        StdRng::from_seed(seed)
    }

    fn refill(&mut self) {
        for b in 0..4 {
            chacha12_block(
                &self.key,
                self.counter + b as u64,
                &mut self.buf[b * 16..(b + 1) * 16],
            );
        }
        self.counter += 4;
    }

    /// `BlockRng::next_u32`.
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    /// `BlockRng::next_u64`, including the straddle case where the low
    /// half is the last word of one refill and the high half the first
    /// word of the next.
    pub fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    /// `Standard` distribution for `f64`: 53 high bits over 2^53,
    /// uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * ((self.next_u64() >> 11) as f64)
    }

    /// `gen_range(0..n)` for `u64`: widening-multiply rejection
    /// sampling (`UniformInt::sample_single`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = u128::from(v) * u128::from(n);
            let (hi, lo) = ((m >> 64) as u64, m as u64);
            if lo <= zone {
                return hi;
            }
        }
    }
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StdRng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_expansion_is_stable() {
        // The PCG32 expansion of seed 0 must never change: every jitter
        // stream in the committed figures derives from it.
        let a = StdRng::seed_from_u64(0);
        let b = StdRng::seed_from_u64(0);
        assert_eq!(a.key, b.key);
        let c = StdRng::seed_from_u64(1);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn u32_and_u64_streams_interleave_like_block_rng() {
        // next_u64 == (buf[i+1] << 32) | buf[i] over the same buffer
        // that next_u32 walks one word at a time.
        let mut words = StdRng::seed_from_u64(42);
        let mut pairs = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let lo = words.next_u32();
            let hi = words.next_u32();
            assert_eq!(pairs.next_u64(), (u64::from(hi) << 32) | u64::from(lo));
        }
    }

    #[test]
    fn straddle_case_consumes_last_word_then_next_block() {
        let mut r = StdRng::seed_from_u64(7);
        // Walk to an odd index so next_u64 straddles the refill.
        r.next_u32();
        for _ in 0..31 {
            r.next_u64();
        }
        assert_eq!(r.index, BUF_WORDS - 1);
        let mut probe = r.clone();
        let lo = probe.next_u32();
        let hi = probe.next_u32();
        assert_eq!(r.next_u64(), (u64::from(hi) << 32) | u64::from(lo));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniformish_and_in_range() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        for _ in 0..7000 {
            counts[r.below(7) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }
}
