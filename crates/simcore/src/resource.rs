//! Queueing resources: the building blocks for device and network models.
//!
//! Two service disciplines are provided:
//!
//! * [`FifoServer`] — `k` identical servers, one job at a time each,
//!   FIFO queue. Matches request-at-a-time devices (a disk head, an RPC
//!   handler thread).
//! * [`FairShare`] — a capacity shared among all in-flight jobs
//!   (processor sharing), with optional per-job rate caps resolved by
//!   water-filling. Matches links and storage targets where concurrent
//!   streams split bandwidth.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{now, with_kernel};
use crate::sync::Semaphore;
use crate::time::{SimDuration, SimTime};

/// A station of `k` identical FIFO servers.
///
/// Service times are supplied by the caller, either up front
/// ([`serve`](FifoServer::serve)) or computed at the moment service
/// begins ([`serve_with`](FifoServer::serve_with)) — the latter matters
/// for devices whose cost depends on state at service start (e.g. disk
/// head position).
#[derive(Clone)]
pub struct FifoServer {
    sem: Semaphore,
    stats: Rc<RefCell<ServerStats>>,
}

/// Usage counters for a [`FifoServer`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerStats {
    /// Jobs fully served.
    pub jobs: u64,
    /// Total busy time across all servers.
    pub busy: SimDuration,
    /// Total time jobs spent queued before service.
    pub queued: SimDuration,
}

impl FifoServer {
    /// Create a station with `servers` parallel servers.
    pub fn new(servers: usize) -> Self {
        FifoServer {
            sem: Semaphore::new(servers),
            stats: Rc::new(RefCell::new(ServerStats::default())),
        }
    }

    /// Queue for a server, then hold it for `service`.
    pub async fn serve(&self, service: SimDuration) {
        self.serve_with(|| service).await;
    }

    /// Queue for a server, then hold it for the duration computed by
    /// `service` *at the instant service begins*.
    pub async fn serve_with(&self, service: impl FnOnce() -> SimDuration) {
        let enq = now();
        let _g = self.sem.acquire().await;
        let start = now();
        let dur = service();
        crate::executor::sleep(dur).await;
        let mut st = self.stats.borrow_mut();
        st.jobs += 1;
        st.busy += dur;
        st.queued += start.since(enq);
    }

    /// Current queue length (jobs waiting, not in service).
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }

    /// Snapshot of usage counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.borrow()
    }
}

const WORK_EPS: f64 = 1e-6;

struct FsJob {
    /// Per-resource identifier; the serving [`FsServe`] future finds
    /// its job by id (the job may move as earlier completions shift
    /// the order-preserving `jobs` vector).
    id: u64,
    remaining: f64,
    cap: Option<f64>,
    /// Waker of the serving task, stored intrusively — no per-job
    /// `Flag` (and its `Rc<RefCell<..>>` + waiter vector) is allocated.
    /// Waking a task that was killed mid-transfer is a harmless stale
    /// wake; the job itself keeps consuming bandwidth to completion,
    /// matching real hardware draining a DMA a crashed client posted.
    waker: Waker,
}

pub(crate) struct FsState {
    rate: f64,
    jobs: Vec<FsJob>,
    last_settle: SimTime,
    /// `(kernel id, seq, slot)` of the armed completion timer (an
    /// unboxed `EventAction::FsTimer` calendar entry). A firing timer
    /// whose seq no longer matches is stale — superseded by a
    /// reschedule after its body was already drained into the
    /// executor's same-instant dispatch batch.
    pending: Option<(u64, u64, u32)>,
    next_job: u64,
    /// Total work units completed (stats).
    work_done: f64,
    jobs_done: u64,
    /// Scratch for the general (mixed-caps) water-fill; reused across
    /// settles so the steady state allocates nothing.
    rates: Vec<f64>,
    open: Vec<u32>,
    open_next: Vec<u32>,
}

/// A processor-sharing resource of fixed total capacity (work units per
/// second — typically bytes/s).
///
/// All in-flight jobs progress simultaneously, each at the water-filling
/// fair share of the capacity subject to its optional per-job rate cap.
#[derive(Clone)]
pub struct FairShare {
    inner: Rc<RefCell<FsState>>,
}

impl FairShare {
    /// Create a resource with total capacity `rate` work-units/second.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "FairShare capacity must be positive");
        FairShare {
            inner: Rc::new(RefCell::new(FsState {
                rate,
                jobs: Vec::new(),
                last_settle: SimTime::ZERO,
                pending: None,
                next_job: 0,
                work_done: 0.0,
                jobs_done: 0,
                rates: Vec::new(),
                open: Vec::new(),
                open_next: Vec::new(),
            })),
        }
    }

    /// Process `work` units, sharing capacity with concurrent jobs.
    pub fn serve(&self, work: f64) -> FsServe {
        self.serve_capped(work, None)
    }

    /// Process `work` units, never exceeding `cap` units/second for this
    /// job even when spare capacity exists.
    ///
    /// The returned future registers the job at its first poll (like
    /// any lazy future) and completes when the job's work has drained.
    /// Dropping the future after the first poll does *not* withdraw the
    /// job: the transfer keeps consuming bandwidth to completion, which
    /// is how crash-kill of a client mid-transfer is modelled.
    pub fn serve_capped(&self, work: f64, cap: Option<f64>) -> FsServe {
        FsServe {
            fs: Rc::clone(&self.inner),
            work,
            cap,
            job: None,
        }
    }

    /// Number of in-flight jobs.
    pub fn active(&self) -> usize {
        self.inner.borrow().jobs.len()
    }

    /// Total work completed so far.
    pub fn work_done(&self) -> f64 {
        self.inner.borrow().work_done
    }

    /// Total jobs completed so far.
    pub fn jobs_done(&self) -> u64 {
        self.inner.borrow().jobs_done
    }

    /// Total capacity in work-units/second.
    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }
}

impl FsState {
    /// Per-job service rates under water-filling fair sharing.
    ///
    /// Returns `Some(r)` — the **bulk fast path** — when every active
    /// job has the same cap, which is the shape every collective
    /// shuffle round produces (N identical streams joining and leaving
    /// together): the allocation is then the single analytic value
    /// `min(cap, rate/n)` instead of an O(active) water-fill. The
    /// expressions are the very ones [`water_fill`]'s first round
    /// evaluates, so the fast path is bit-identical to the oracle.
    ///
    /// Returns `None` for mixed caps, with `self.rates` filled by a
    /// scratch-buffer water-fill (same arithmetic, same order, no
    /// allocation in steady state).
    fn compute_rates(&mut self) -> Option<f64> {
        let n = self.jobs.len();
        debug_assert!(n > 0);
        let share = self.rate / n as f64;
        let cap0 = self.jobs[0].cap;
        if self.jobs.iter().all(|j| j.cap == cap0) {
            return Some(match cap0 {
                Some(c) if c < share => c,
                _ => share,
            });
        }
        let FsState {
            rate,
            jobs,
            rates,
            open,
            open_next,
            ..
        } = self;
        rates.clear();
        rates.resize(n, 0.0);
        open.clear();
        open.extend(0..n as u32);
        let mut remaining = *rate;
        loop {
            let share = remaining / open.len() as f64;
            open_next.clear();
            let mut any_capped = false;
            // Cap everyone whose limit is below the current equal
            // share; subtraction order matches `water_fill`'s
            // partition order (both preserve job order).
            for &i in open.iter() {
                match jobs[i as usize].cap {
                    Some(c) if c < share => {
                        rates[i as usize] = c;
                        remaining -= c;
                        any_capped = true;
                    }
                    _ => open_next.push(i),
                }
            }
            if !any_capped {
                for &i in open_next.iter() {
                    rates[i as usize] = share;
                }
                break;
            }
            if open_next.is_empty() {
                break;
            }
            std::mem::swap(open, open_next);
        }
        None
    }

    /// Advance job progress from `last_settle` to `to`, completing any
    /// jobs that finish in the interval boundary.
    fn settle(&mut self, to: SimTime) {
        let dt = to.since(self.last_settle).as_secs_f64();
        self.last_settle = to;
        if dt > 0.0 && !self.jobs.is_empty() {
            match self.compute_rates() {
                Some(r) => {
                    let FsState {
                        jobs, work_done, ..
                    } = self;
                    for job in jobs.iter_mut() {
                        let step = r * dt;
                        let used = step.min(job.remaining);
                        job.remaining -= used;
                        *work_done += used;
                    }
                }
                None => {
                    let FsState {
                        jobs,
                        rates,
                        work_done,
                        ..
                    } = self;
                    for (job, r) in jobs.iter_mut().zip(rates.iter()) {
                        let step = r * dt;
                        let used = step.min(job.remaining);
                        job.remaining -= used;
                        *work_done += used;
                    }
                }
            }
        }
        // Complete finished jobs (preserving order for determinism).
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].remaining <= WORK_EPS {
                let job = self.jobs.remove(i);
                self.jobs_done += 1;
                job.waker.wake();
            } else {
                i += 1;
            }
        }
    }

    /// Schedule the next completion event. The cancel + re-arm cycle
    /// runs on every job join/leave, so it is allocation-free: the
    /// timer body is an `Rc` clone carried by a dedicated calendar
    /// variant, and cancellation is a direct slab vacate.
    fn reschedule(&mut self, me: &Rc<RefCell<FsState>>, t: SimTime) {
        if let Some((kernel, seq, slot)) = self.pending.take() {
            // The returned body is just an `Rc<RefCell<FsState>>`
            // clone; dropping it under our own borrow is fine (no
            // destructor re-enters this RefCell).
            let stale = with_kernel(|k| k.cancel_fs_timer(kernel, seq, slot));
            drop(stale);
        }
        if self.jobs.is_empty() {
            return;
        }
        let mut horizon = f64::INFINITY;
        match self.compute_rates() {
            Some(r) => {
                if r > 0.0 {
                    for job in self.jobs.iter() {
                        horizon = horizon.min(job.remaining / r);
                    }
                }
            }
            None => {
                for (job, r) in self.jobs.iter().zip(self.rates.iter()) {
                    if *r > 0.0 {
                        horizon = horizon.min(job.remaining / r);
                    }
                }
            }
        }
        assert!(
            horizon.is_finite(),
            "FairShare stalled: all jobs have zero rate"
        );
        // Round up to a whole nanosecond so virtual time always advances.
        let mut dt = SimDuration::from_secs_f64(horizon);
        if dt.is_zero() {
            dt = SimDuration::from_nanos(1);
        }
        let at = t + dt;
        self.pending = Some(with_kernel(|k| k.schedule_fs_timer(at, Rc::clone(me))));
    }
}

/// Executor hook: a [`FsState`] completion timer fired. Returns whether
/// the timer was still live (a stale seq means a reschedule superseded
/// it after its body was drained into the dispatch batch — the event
/// must not count as fired, matching the unbatched executor, which
/// skipped vacated slots before delivery).
pub(crate) fn fs_timer_fired(fs: Rc<RefCell<FsState>>, seq: u64) -> bool {
    let t = now();
    let mut st = fs.borrow_mut();
    match st.pending {
        Some((_, s, _)) if s == seq => {}
        _ => return false,
    }
    st.pending = None;
    st.settle(t);
    st.reschedule(&fs, t);
    true
}

/// Future returned by [`FairShare::serve`] / [`FairShare::serve_capped`].
pub struct FsServe {
    fs: Rc<RefCell<FsState>>,
    work: f64,
    cap: Option<f64>,
    /// Id of the registered job; `None` until first poll.
    job: Option<u64>,
}

impl Future for FsServe {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.job {
            None => {
                if this.work <= 0.0 {
                    return Poll::Ready(());
                }
                let t = now();
                let mut st = this.fs.borrow_mut();
                st.settle(t);
                let id = st.next_job;
                st.next_job += 1;
                st.jobs.push(FsJob {
                    id,
                    remaining: this.work,
                    cap: this.cap,
                    waker: cx.waker().clone(),
                });
                st.reschedule(&this.fs, t);
                drop(st);
                this.job = Some(id);
                Poll::Pending
            }
            Some(id) => {
                let mut st = this.fs.borrow_mut();
                match st.jobs.iter_mut().find(|j| j.id == id) {
                    Some(j) => {
                        // Keep the stored waker current (a cheap
                        // vtable-aware clone_from; no allocation).
                        j.waker.clone_from(cx.waker());
                        Poll::Pending
                    }
                    None => Poll::Ready(()),
                }
            }
        }
    }
}

/// A precomputed round-robin dispatch schedule over a channel group.
///
/// Multi-channel device models pick a channel per command in issue
/// order. The cycle is laid out once at construction (today the
/// identity rotation `0..n`; the table is the extension point for
/// weighted or striped schedules), so the steady-state pick is a table
/// read plus a compare-and-wrap — no modulo and no `RefCell` borrow on
/// the hot path. Clones share the cursor, matching device handles that
/// share the underlying hardware.
#[derive(Clone)]
pub struct RoundRobin {
    inner: Rc<RrInner>,
}

struct RrInner {
    schedule: Box<[u32]>,
    cursor: Cell<u32>,
}

impl RoundRobin {
    /// The identity rotation over `n` channels.
    pub fn new(n: usize) -> Self {
        Self::from_schedule((0..n as u32).collect())
    }

    /// A custom dispatch cycle (entries are channel indices).
    pub fn from_schedule(schedule: Vec<u32>) -> Self {
        assert!(!schedule.is_empty(), "empty dispatch schedule");
        RoundRobin {
            inner: Rc::new(RrInner {
                schedule: schedule.into_boxed_slice(),
                cursor: Cell::new(0),
            }),
        }
    }

    /// Next channel in the cycle.
    pub fn next(&self) -> usize {
        let c = self.inner.cursor.get();
        let pick = self.inner.schedule[c as usize];
        let c1 = c + 1;
        self.inner
            .cursor
            .set(if c1 as usize == self.inner.schedule.len() {
                0
            } else {
                c1
            });
        pick as usize
    }

    /// Length of the dispatch cycle.
    pub fn cycle_len(&self) -> usize {
        self.inner.schedule.len()
    }
}

/// Water-filling allocation: distribute `total` capacity over jobs with
/// optional caps so every job gets `min(cap, fair share)`, with spare
/// capacity from capped jobs re-distributed among the rest.
pub fn water_fill(total: f64, caps: &[Option<f64>]) -> Vec<f64> {
    let n = caps.len();
    let mut rates = vec![0.0; n];
    if n == 0 {
        return rates;
    }
    let mut remaining = total;
    let mut open: Vec<usize> = (0..n).collect();
    loop {
        let share = remaining / open.len() as f64;
        // Cap everyone whose limit is below the current equal share.
        let (capped, uncapped): (Vec<usize>, Vec<usize>) = open
            .iter()
            .partition(|&&i| caps[i].is_some_and(|c| c < share));
        if capped.is_empty() {
            for &i in &open {
                rates[i] = share;
            }
            break;
        }
        for &i in &capped {
            let c = caps[i].unwrap();
            rates[i] = c;
            remaining -= c;
        }
        if uncapped.is_empty() {
            break;
        }
        open = uncapped;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, sleep, spawn};

    #[test]
    fn water_fill_no_caps_is_equal_split() {
        let r = water_fill(12.0, &[None, None, None]);
        assert_eq!(r, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn water_fill_redistributes_capped_slack() {
        let r = water_fill(12.0, &[Some(2.0), None, None]);
        assert_eq!(r, vec![2.0, 5.0, 5.0]);
    }

    #[test]
    fn water_fill_all_capped_below_share() {
        let r = water_fill(100.0, &[Some(1.0), Some(2.0)]);
        assert_eq!(r, vec![1.0, 2.0]);
    }

    #[test]
    fn water_fill_empty() {
        assert!(water_fill(5.0, &[]).is_empty());
    }

    #[test]
    fn fifo_server_serialises_jobs() {
        let end = run(async {
            let srv = FifoServer::new(1);
            let mut hs = Vec::new();
            for _ in 0..4 {
                let srv = srv.clone();
                hs.push(spawn(async move {
                    srv.serve(SimDuration::from_secs(2)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            let st = srv.stats();
            assert_eq!(st.jobs, 4);
            assert_eq!(st.busy.as_secs_f64(), 8.0);
            // Jobs 2..4 queued 2,4,6 seconds respectively.
            assert_eq!(st.queued.as_secs_f64(), 12.0);
            now().as_secs_f64()
        });
        assert_eq!(end, 8.0);
    }

    #[test]
    fn fifo_server_parallelism() {
        let end = run(async {
            let srv = FifoServer::new(2);
            let mut hs = Vec::new();
            for _ in 0..4 {
                let srv = srv.clone();
                hs.push(spawn(async move {
                    srv.serve(SimDuration::from_secs(2)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        assert_eq!(end, 4.0);
    }

    #[test]
    fn fair_share_single_job_runs_at_full_rate() {
        let end = run(async {
            let link = FairShare::new(100.0);
            link.serve(500.0).await;
            now().as_secs_f64()
        });
        assert!((end - 5.0).abs() < 1e-6, "end={end}");
    }

    #[test]
    fn fair_share_two_equal_jobs_halve_throughput() {
        let (t1, t2) = run(async {
            let link = FairShare::new(100.0);
            let l1 = link.clone();
            let h1 = spawn(async move {
                l1.serve(500.0).await;
                now().as_secs_f64()
            });
            let l2 = link.clone();
            let h2 = spawn(async move {
                l2.serve(500.0).await;
                now().as_secs_f64()
            });
            (h1.await, h2.await)
        });
        // Both active the whole time: each gets 50 u/s → 10 s.
        assert!((t1 - 10.0).abs() < 1e-6, "t1={t1}");
        assert!((t2 - 10.0).abs() < 1e-6, "t2={t2}");
    }

    #[test]
    fn fair_share_late_arrival_shares_remaining() {
        let (t1, t2) = run(async {
            let link = FairShare::new(100.0);
            let l1 = link.clone();
            let h1 = spawn(async move {
                l1.serve(1000.0).await;
                now().as_secs_f64()
            });
            let l2 = link.clone();
            let h2 = spawn(async move {
                sleep(SimDuration::from_secs(5)).await;
                l2.serve(250.0).await;
                now().as_secs_f64()
            });
            (h1.await, h2.await)
        });
        // Job1 alone 0-5s (500 done). From t=5 both at 50 u/s; job2
        // finishes at t=10 (250 done), job1 has 250 left at 100 u/s → 12.5.
        assert!((t2 - 10.0).abs() < 1e-5, "t2={t2}");
        assert!((t1 - 12.5).abs() < 1e-5, "t1={t1}");
    }

    #[test]
    fn fair_share_respects_per_job_cap() {
        let end = run(async {
            let link = FairShare::new(1000.0);
            link.serve_capped(100.0, Some(10.0)).await;
            now().as_secs_f64()
        });
        assert!((end - 10.0).abs() < 1e-6, "end={end}");
    }

    #[test]
    fn fair_share_zero_work_is_instant() {
        run(async {
            let link = FairShare::new(1.0);
            link.serve(0.0).await;
            assert_eq!(now(), SimTime::ZERO);
            assert_eq!(link.jobs_done(), 0);
        });
    }

    /// Build a probe state with the given caps (work amounts are
    /// irrelevant to rate computation).
    fn probe_state(rate: f64, caps: &[Option<f64>]) -> FsState {
        FsState {
            rate,
            jobs: caps
                .iter()
                .enumerate()
                .map(|(i, &cap)| FsJob {
                    id: i as u64,
                    remaining: 1.0,
                    cap,
                    waker: Waker::noop().clone(),
                })
                .collect(),
            last_settle: SimTime::ZERO,
            pending: None,
            next_job: caps.len() as u64,
            work_done: 0.0,
            jobs_done: 0,
            rates: Vec::new(),
            open: Vec::new(),
            open_next: Vec::new(),
        }
    }

    #[test]
    fn compute_rates_is_bit_identical_to_water_fill_oracle() {
        // Random join/leave sequences over a mixed cap population: at
        // every step the incremental computation (fast path or scratch
        // water-fill) must match the allocating oracle bit for bit —
        // this is the property that keeps every committed golden
        // byte-identical across the fast-path rewrite.
        let mut rng = crate::rng::SimRng::new(0xE10);
        let mut caps: Vec<Option<f64>> = Vec::new();
        let total = 256.0;
        let mut fast = 0u32;
        let mut general = 0u32;
        // Phase 1: uniform populations — the shape every shuffle round
        // produces — must take the O(1) path and still match the oracle.
        for step in 0..300 {
            let n = 1 + rng.below(32) as usize;
            let cap = match rng.below(4) {
                0 => None,
                1 => Some(64.0),
                2 => Some(1e9),
                _ => Some(rng.uniform_range(0.1, 90.0)),
            };
            let uniform = vec![cap; n];
            let oracle = water_fill(total, &uniform);
            let mut st = probe_state(total, &uniform);
            let r = st
                .compute_rates()
                .unwrap_or_else(|| panic!("uniform caps {cap:?} x{n} must take the fast path"));
            fast += 1;
            for (i, o) in oracle.iter().enumerate() {
                assert_eq!(
                    r.to_bits(),
                    o.to_bits(),
                    "fast path diverged at uniform step {step}, job {i}: {r} vs {o}"
                );
            }
        }
        // Phase 2: random join/leave walk over a mixed cap population.
        for step in 0..2_000 {
            if caps.is_empty() || rng.below(100) < 55 {
                caps.push(match rng.below(4) {
                    0 => None,
                    // A uniform candidate below and above the share.
                    1 => Some(64.0),
                    2 => Some(1e9),
                    _ => Some(rng.uniform_range(0.1, 90.0)),
                });
            } else {
                let i = rng.below(caps.len() as u64) as usize;
                caps.remove(i);
            }
            if caps.is_empty() {
                continue;
            }
            let oracle = water_fill(total, &caps);
            let mut st = probe_state(total, &caps);
            match st.compute_rates() {
                Some(r) => {
                    fast += 1;
                    for (i, o) in oracle.iter().enumerate() {
                        assert_eq!(
                            r.to_bits(),
                            o.to_bits(),
                            "fast path diverged at step {step}, job {i}: {r} vs {o} (caps {caps:?})"
                        );
                    }
                }
                None => {
                    general += 1;
                    assert_eq!(st.rates.len(), oracle.len());
                    for (i, (a, o)) in st.rates.iter().zip(&oracle).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            o.to_bits(),
                            "water-fill scratch diverged at step {step}, job {i}: {a} vs {o} (caps {caps:?})"
                        );
                    }
                }
            }
        }
        // The sequence must actually exercise both paths.
        assert!(fast > 100, "fast path untested ({fast})");
        assert!(general > 100, "general path untested ({general})");
    }

    #[test]
    fn uniform_caps_fast_path_applies_to_identical_streams() {
        // The shape every shuffle round produces: N identical streams.
        for cap in [None, Some(10.0), Some(1e9)] {
            let mut st = probe_state(100.0, &[cap; 8]);
            assert!(
                st.compute_rates().is_some(),
                "identical caps {cap:?} must take the O(1) path"
            );
        }
        let mut st = probe_state(100.0, &[Some(10.0), None]);
        assert!(st.compute_rates().is_none(), "mixed caps need water-fill");
    }

    #[test]
    fn round_robin_cycles_deterministically_and_shares_cursor() {
        let rr = RoundRobin::new(3);
        let rr2 = rr.clone();
        let picks: Vec<usize> = (0..7)
            .map(|i| if i % 2 == 0 { rr.next() } else { rr2.next() })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(rr.cycle_len(), 3);
    }

    #[test]
    fn fair_share_counters() {
        run(async {
            let link = FairShare::new(10.0);
            link.serve(30.0).await;
            link.serve(20.0).await;
            assert_eq!(link.jobs_done(), 2);
            assert!((link.work_done() - 50.0).abs() < 1e-6);
            assert_eq!(link.active(), 0);
        });
    }
}
