//! Queueing resources: the building blocks for device and network models.
//!
//! Two service disciplines are provided:
//!
//! * [`FifoServer`] — `k` identical servers, one job at a time each,
//!   FIFO queue. Matches request-at-a-time devices (a disk head, an RPC
//!   handler thread).
//! * [`FairShare`] — a capacity shared among all in-flight jobs
//!   (processor sharing), with optional per-job rate caps resolved by
//!   water-filling. Matches links and storage targets where concurrent
//!   streams split bandwidth.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::{now, schedule_call_at, EventHandle};
use crate::sync::{Flag, Semaphore};
use crate::time::{SimDuration, SimTime};

/// A station of `k` identical FIFO servers.
///
/// Service times are supplied by the caller, either up front
/// ([`serve`](FifoServer::serve)) or computed at the moment service
/// begins ([`serve_with`](FifoServer::serve_with)) — the latter matters
/// for devices whose cost depends on state at service start (e.g. disk
/// head position).
#[derive(Clone)]
pub struct FifoServer {
    sem: Semaphore,
    stats: Rc<RefCell<ServerStats>>,
}

/// Usage counters for a [`FifoServer`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerStats {
    /// Jobs fully served.
    pub jobs: u64,
    /// Total busy time across all servers.
    pub busy: SimDuration,
    /// Total time jobs spent queued before service.
    pub queued: SimDuration,
}

impl FifoServer {
    /// Create a station with `servers` parallel servers.
    pub fn new(servers: usize) -> Self {
        FifoServer {
            sem: Semaphore::new(servers),
            stats: Rc::new(RefCell::new(ServerStats::default())),
        }
    }

    /// Queue for a server, then hold it for `service`.
    pub async fn serve(&self, service: SimDuration) {
        self.serve_with(|| service).await;
    }

    /// Queue for a server, then hold it for the duration computed by
    /// `service` *at the instant service begins*.
    pub async fn serve_with(&self, service: impl FnOnce() -> SimDuration) {
        let enq = now();
        let _g = self.sem.acquire().await;
        let start = now();
        let dur = service();
        crate::executor::sleep(dur).await;
        let mut st = self.stats.borrow_mut();
        st.jobs += 1;
        st.busy += dur;
        st.queued += start.since(enq);
    }

    /// Current queue length (jobs waiting, not in service).
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }

    /// Snapshot of usage counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.borrow()
    }
}

const WORK_EPS: f64 = 1e-6;

struct FsJob {
    remaining: f64,
    cap: Option<f64>,
    done: Flag,
}

struct FsState {
    rate: f64,
    jobs: Vec<FsJob>,
    last_settle: SimTime,
    pending: Option<EventHandle>,
    /// Total work units completed (stats).
    work_done: f64,
    jobs_done: u64,
}

/// A processor-sharing resource of fixed total capacity (work units per
/// second — typically bytes/s).
///
/// All in-flight jobs progress simultaneously, each at the water-filling
/// fair share of the capacity subject to its optional per-job rate cap.
#[derive(Clone)]
pub struct FairShare {
    inner: Rc<RefCell<FsState>>,
}

impl FairShare {
    /// Create a resource with total capacity `rate` work-units/second.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "FairShare capacity must be positive");
        FairShare {
            inner: Rc::new(RefCell::new(FsState {
                rate,
                jobs: Vec::new(),
                last_settle: SimTime::ZERO,
                pending: None,
                work_done: 0.0,
                jobs_done: 0,
            })),
        }
    }

    /// Process `work` units, sharing capacity with concurrent jobs.
    pub async fn serve(&self, work: f64) {
        self.serve_capped(work, None).await;
    }

    /// Process `work` units, never exceeding `cap` units/second for this
    /// job even when spare capacity exists.
    pub async fn serve_capped(&self, work: f64, cap: Option<f64>) {
        if work <= 0.0 {
            return;
        }
        let done = Flag::new();
        {
            let mut st = self.inner.borrow_mut();
            let t = now();
            st.settle(t);
            st.jobs.push(FsJob {
                remaining: work,
                cap,
                done: done.clone(),
            });
            st.reschedule(&self.inner, t);
        }
        done.wait().await;
    }

    /// Number of in-flight jobs.
    pub fn active(&self) -> usize {
        self.inner.borrow().jobs.len()
    }

    /// Total work completed so far.
    pub fn work_done(&self) -> f64 {
        self.inner.borrow().work_done
    }

    /// Total jobs completed so far.
    pub fn jobs_done(&self) -> u64 {
        self.inner.borrow().jobs_done
    }

    /// Total capacity in work-units/second.
    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }
}

impl FsState {
    /// Per-job service rates under water-filling fair sharing.
    fn rates(&self) -> Vec<f64> {
        water_fill(
            self.rate,
            &self.jobs.iter().map(|j| j.cap).collect::<Vec<_>>(),
        )
    }

    /// Advance job progress from `last_settle` to `to`, completing any
    /// jobs that finish in the interval boundary.
    fn settle(&mut self, to: SimTime) {
        let dt = to.since(self.last_settle).as_secs_f64();
        self.last_settle = to;
        if dt > 0.0 && !self.jobs.is_empty() {
            let rates = self.rates();
            for (job, r) in self.jobs.iter_mut().zip(&rates) {
                let step = r * dt;
                let used = step.min(job.remaining);
                job.remaining -= used;
                self.work_done += used;
            }
        }
        // Complete finished jobs (preserving order for determinism).
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].remaining <= WORK_EPS {
                let job = self.jobs.remove(i);
                self.jobs_done += 1;
                job.done.set();
            } else {
                i += 1;
            }
        }
    }

    /// Schedule the next completion event.
    fn reschedule(&mut self, me: &Rc<RefCell<FsState>>, t: SimTime) {
        if let Some(h) = self.pending.take() {
            h.cancel();
        }
        if self.jobs.is_empty() {
            return;
        }
        let rates = self.rates();
        let mut horizon = f64::INFINITY;
        for (job, r) in self.jobs.iter().zip(&rates) {
            if *r > 0.0 {
                horizon = horizon.min(job.remaining / r);
            }
        }
        assert!(
            horizon.is_finite(),
            "FairShare stalled: all jobs have zero rate"
        );
        // Round up to a whole nanosecond so virtual time always advances.
        let mut dt = SimDuration::from_secs_f64(horizon);
        if dt.is_zero() {
            dt = SimDuration::from_nanos(1);
        }
        let at = t + dt;
        let inner = Rc::clone(me);
        self.pending = Some(schedule_call_at(at, move || {
            let mut st = inner.borrow_mut();
            let t = now();
            st.settle(t);
            st.reschedule(&inner, t);
        }));
    }
}

/// Water-filling allocation: distribute `total` capacity over jobs with
/// optional caps so every job gets `min(cap, fair share)`, with spare
/// capacity from capped jobs re-distributed among the rest.
pub fn water_fill(total: f64, caps: &[Option<f64>]) -> Vec<f64> {
    let n = caps.len();
    let mut rates = vec![0.0; n];
    if n == 0 {
        return rates;
    }
    let mut remaining = total;
    let mut open: Vec<usize> = (0..n).collect();
    loop {
        let share = remaining / open.len() as f64;
        // Cap everyone whose limit is below the current equal share.
        let (capped, uncapped): (Vec<usize>, Vec<usize>) = open
            .iter()
            .partition(|&&i| caps[i].is_some_and(|c| c < share));
        if capped.is_empty() {
            for &i in &open {
                rates[i] = share;
            }
            break;
        }
        for &i in &capped {
            let c = caps[i].unwrap();
            rates[i] = c;
            remaining -= c;
        }
        if uncapped.is_empty() {
            break;
        }
        open = uncapped;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, sleep, spawn};

    #[test]
    fn water_fill_no_caps_is_equal_split() {
        let r = water_fill(12.0, &[None, None, None]);
        assert_eq!(r, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn water_fill_redistributes_capped_slack() {
        let r = water_fill(12.0, &[Some(2.0), None, None]);
        assert_eq!(r, vec![2.0, 5.0, 5.0]);
    }

    #[test]
    fn water_fill_all_capped_below_share() {
        let r = water_fill(100.0, &[Some(1.0), Some(2.0)]);
        assert_eq!(r, vec![1.0, 2.0]);
    }

    #[test]
    fn water_fill_empty() {
        assert!(water_fill(5.0, &[]).is_empty());
    }

    #[test]
    fn fifo_server_serialises_jobs() {
        let end = run(async {
            let srv = FifoServer::new(1);
            let mut hs = Vec::new();
            for _ in 0..4 {
                let srv = srv.clone();
                hs.push(spawn(async move {
                    srv.serve(SimDuration::from_secs(2)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            let st = srv.stats();
            assert_eq!(st.jobs, 4);
            assert_eq!(st.busy.as_secs_f64(), 8.0);
            // Jobs 2..4 queued 2,4,6 seconds respectively.
            assert_eq!(st.queued.as_secs_f64(), 12.0);
            now().as_secs_f64()
        });
        assert_eq!(end, 8.0);
    }

    #[test]
    fn fifo_server_parallelism() {
        let end = run(async {
            let srv = FifoServer::new(2);
            let mut hs = Vec::new();
            for _ in 0..4 {
                let srv = srv.clone();
                hs.push(spawn(async move {
                    srv.serve(SimDuration::from_secs(2)).await;
                }));
            }
            for h in hs {
                h.await;
            }
            now().as_secs_f64()
        });
        assert_eq!(end, 4.0);
    }

    #[test]
    fn fair_share_single_job_runs_at_full_rate() {
        let end = run(async {
            let link = FairShare::new(100.0);
            link.serve(500.0).await;
            now().as_secs_f64()
        });
        assert!((end - 5.0).abs() < 1e-6, "end={end}");
    }

    #[test]
    fn fair_share_two_equal_jobs_halve_throughput() {
        let (t1, t2) = run(async {
            let link = FairShare::new(100.0);
            let l1 = link.clone();
            let h1 = spawn(async move {
                l1.serve(500.0).await;
                now().as_secs_f64()
            });
            let l2 = link.clone();
            let h2 = spawn(async move {
                l2.serve(500.0).await;
                now().as_secs_f64()
            });
            (h1.await, h2.await)
        });
        // Both active the whole time: each gets 50 u/s → 10 s.
        assert!((t1 - 10.0).abs() < 1e-6, "t1={t1}");
        assert!((t2 - 10.0).abs() < 1e-6, "t2={t2}");
    }

    #[test]
    fn fair_share_late_arrival_shares_remaining() {
        let (t1, t2) = run(async {
            let link = FairShare::new(100.0);
            let l1 = link.clone();
            let h1 = spawn(async move {
                l1.serve(1000.0).await;
                now().as_secs_f64()
            });
            let l2 = link.clone();
            let h2 = spawn(async move {
                sleep(SimDuration::from_secs(5)).await;
                l2.serve(250.0).await;
                now().as_secs_f64()
            });
            (h1.await, h2.await)
        });
        // Job1 alone 0-5s (500 done). From t=5 both at 50 u/s; job2
        // finishes at t=10 (250 done), job1 has 250 left at 100 u/s → 12.5.
        assert!((t2 - 10.0).abs() < 1e-5, "t2={t2}");
        assert!((t1 - 12.5).abs() < 1e-5, "t1={t1}");
    }

    #[test]
    fn fair_share_respects_per_job_cap() {
        let end = run(async {
            let link = FairShare::new(1000.0);
            link.serve_capped(100.0, Some(10.0)).await;
            now().as_secs_f64()
        });
        assert!((end - 10.0).abs() < 1e-6, "end={end}");
    }

    #[test]
    fn fair_share_zero_work_is_instant() {
        run(async {
            let link = FairShare::new(1.0);
            link.serve(0.0).await;
            assert_eq!(now(), SimTime::ZERO);
            assert_eq!(link.jobs_done(), 0);
        });
    }

    #[test]
    fn fair_share_counters() {
        run(async {
            let link = FairShare::new(10.0);
            link.serve(30.0).await;
            link.serve(20.0).await;
            assert_eq!(link.jobs_done(), 2);
            assert!((link.work_done() - 50.0).abs() < 1e-6);
            assert_eq!(link.active(), 0);
        });
    }
}
