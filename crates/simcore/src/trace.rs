//! Structured tracing and metrics for the whole simulator.
//!
//! The paper's evaluation is an exercise in *instrumentation*: MPE
//! phase logging is what produces the Fig. 5/6/8/10 breakdowns. This
//! module generalises that idea from one profiler in `e10-romio` to a
//! sim-wide event stream: the executor, netsim, pfs and the cache-sync
//! machinery all emit [`Event`] records onto one ambient [`TraceSink`],
//! stamped with the same virtual clock the figures are computed from.
//!
//! ## Determinism and overhead
//!
//! The sink is ambient (a thread-local, like the executor kernel) and
//! **disabled by default**. Instrumentation sites go through
//! [`emit`]/[`span`], which check a single thread-local flag and build
//! the event lazily, so a disabled trace costs one predictable branch —
//! no allocation, no formatting, no I/O. Nothing in the simulation ever
//! *reads* the trace, so enabling it cannot perturb virtual time:
//! timings are bit-identical with tracing on or off (asserted by
//! `tests/tracing.rs`).
//!
//! ## Event schema
//!
//! An [`Event`] is `{sim_time, layer, span, kind, rank?, node?, fields}`
//! where `fields` is a small list of typed key/values. [`JsonlSink`]
//! serialises one event per line as JSON:
//!
//! ```json
//! {"t_ns":1523000,"layer":"pfs","span":"write_chunk","kind":"end","rank":3,"bytes":65536}
//! ```
//!
//! ## Metrics
//!
//! A [`MetricsRegistry`] of named counters and [`Tally`] instruments
//! rides on the same enable flag; [`counter`]/[`sample`] are the
//! ambient entry points and [`MetricsRegistry::snapshot`] exports the
//! result for the bench binaries.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::executor::try_now;
use crate::stats::Tally;
use crate::time::SimTime;

/// Which subsystem emitted an event. One enum (rather than free-form
/// strings) so traces stay greppable and the taxonomy is documented in
/// one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Task lifecycle in the DES executor (spawn/wake/block/finish).
    Executor,
    /// Fabric transfers and link occupancy.
    Netsim,
    /// Device models: SSD, page cache.
    Storesim,
    /// Parallel file system servers (chunk I/O, queue depth).
    Pfs,
    /// MPI machinery (collectives, generalized requests).
    Mpi,
    /// ROMIO ADIO layer: collective phases and the NVM cache.
    Romio,
    /// Workload driver (per-phase workflow progress).
    Workload,
    /// Fault injection: injected faults, retries, recovery.
    Faultsim,
}

impl Layer {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Executor => "executor",
            Layer::Netsim => "netsim",
            Layer::Storesim => "storesim",
            Layer::Pfs => "pfs",
            Layer::Mpi => "mpi",
            Layer::Romio => "romio",
            Layer::Workload => "workload",
            Layer::Faultsim => "faultsim",
        }
    }
}

/// Point events mark an instant; Begin/End bracket a span on the
/// virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous occurrence.
    Point,
    /// Span start.
    Begin,
    /// Span end.
    End,
}

impl EventKind {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Point => "point",
            EventKind::Begin => "begin",
            EventKind::End => "end",
        }
    }
}

/// A typed field value. Conversions exist for the common primitives so
/// call sites can write `("bytes", len.into())`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialised with enough digits to round-trip).
    F64(f64),
    /// Static string (no allocation on the hot path).
    Str(&'static str),
    /// Owned string.
    String(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! value_from {
    ($($t:ty => $v:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(x: $t) -> Value { Value::$v(x as $conv) }
        })*
    };
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<&'static str> for Value {
    fn from(x: &'static str) -> Value {
        Value::Str(x)
    }
}
impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::String(x)
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Virtual time of the event.
    pub sim_time: SimTime,
    /// Emitting subsystem.
    pub layer: Layer,
    /// Span/event name within the layer (stable, lowercase, dotted).
    pub span: &'static str,
    /// Point, begin or end.
    pub kind: EventKind,
    /// MPI rank, when the event is attributable to one.
    pub rank: Option<u32>,
    /// Node id (compute or server), when attributable.
    pub node: Option<u32>,
    /// Additional typed key/values.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Build an event stamped with the current virtual time (zero when
    /// called outside a running simulation, e.g. during teardown).
    pub fn new(layer: Layer, span: &'static str, kind: EventKind) -> Event {
        Event {
            sim_time: try_now().unwrap_or(SimTime::ZERO),
            layer,
            span,
            kind,
            rank: None,
            node: None,
            fields: Vec::new(),
        }
    }

    /// Attach a rank.
    pub fn rank(mut self, rank: usize) -> Event {
        self.rank = Some(rank as u32);
        self
    }

    /// Attach a node id.
    pub fn node(mut self, node: usize) -> Event {
        self.node = Some(node as u32);
        self
    }

    /// Attach a field.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Serialise as one JSON object (the JSONL schema).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        let _ = write!(
            s,
            "\"t_ns\":{},\"layer\":\"{}\",\"span\":\"{}\",\"kind\":\"{}\"",
            self.sim_time.as_nanos(),
            self.layer.name(),
            self.span,
            self.kind.name()
        );
        if let Some(r) = self.rank {
            let _ = write!(s, ",\"rank\":{r}");
        }
        if let Some(n) = self.node {
            let _ = write!(s, ",\"node\":{n}");
        }
        for (k, v) in &self.fields {
            s.push(',');
            json_escape_into(&mut s, k);
            s.push(':');
            match v {
                Value::U64(x) => {
                    let _ = write!(s, "{x}");
                }
                Value::I64(x) => {
                    let _ = write!(s, "{x}");
                }
                Value::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(s, "{x:?}");
                    } else {
                        s.push_str("null");
                    }
                }
                Value::Str(x) => json_escape_into(&mut s, x),
                Value::String(x) => json_escape_into(&mut s, x),
                Value::Bool(x) => {
                    let _ = write!(s, "{x}");
                }
            }
        }
        s.push('}');
        s
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Destination for trace events.
pub trait TraceSink {
    /// Record one event.
    fn record(&self, event: Event);
    /// Flush buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// Bounded in-memory sink: keeps the most recent `capacity` events,
/// counts the rest as dropped. The default for tests and for the
/// determinism assertions (its presence must not change timings).
pub struct RingSink {
    capacity: usize,
    buf: RefCell<VecDeque<Event>>,
    recorded: Cell<u64>,
    dropped: Cell<u64>,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: RefCell::new(VecDeque::with_capacity(capacity.min(4096))),
            recorded: Cell::new(0),
            dropped: Cell::new(0),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Total events offered to the sink.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: Event) {
        self.recorded.set(self.recorded.get() + 1);
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buf.push_back(event);
    }
}

/// Newline-delimited JSON file sink (one [`Event::to_json`] per line).
pub struct JsonlSink {
    out: RefCell<BufWriter<File>>,
    path: PathBuf,
    recorded: Cell<u64>,
}

impl JsonlSink {
    /// Create (truncate) `path`, creating parent directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(JsonlSink {
            out: RefCell::new(BufWriter::new(file)),
            path,
            recorded: Cell::new(0),
        })
    }

    /// Where the trace is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events written so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: Event) {
        self.recorded.set(self.recorded.get() + 1);
        let mut out = self.out.borrow_mut();
        let _ = out.write_all(event.to_json().as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.out.borrow_mut().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.borrow_mut().flush();
    }
}

// ---------------------------------------------------------------------------
// Ambient installation
// ---------------------------------------------------------------------------

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Rc<dyn TraceSink>>> = const { RefCell::new(None) };
    static METRICS: RefCell<Option<Rc<MetricsRegistry>>> = const { RefCell::new(None) };
}

/// Is a sink installed? Instrumentation sites branch on this and do no
/// other work when it is false.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Install `sink` (and a fresh metrics registry) as the ambient trace
/// destination for this thread. Returns a guard that uninstalls on
/// drop, restoring whatever was installed before — so tests and bench
/// runs can nest cleanly.
pub fn install(sink: Rc<dyn TraceSink>) -> TraceGuard {
    install_with_metrics(sink, Rc::new(MetricsRegistry::new()))
}

/// [`install`] with a caller-owned registry (so the caller can keep a
/// handle and snapshot it after the run).
pub fn install_with_metrics(sink: Rc<dyn TraceSink>, metrics: Rc<MetricsRegistry>) -> TraceGuard {
    let prev_sink = SINK.with(|s| s.borrow_mut().replace(sink));
    let prev_metrics = METRICS.with(|m| m.borrow_mut().replace(metrics));
    let prev_enabled = ENABLED.with(|e| e.replace(true));
    TraceGuard {
        prev_sink,
        prev_metrics,
        prev_enabled,
    }
}

/// Uninstalls the trace sink installed by [`install`] when dropped.
pub struct TraceGuard {
    prev_sink: Option<Rc<dyn TraceSink>>,
    prev_metrics: Option<Rc<MetricsRegistry>>,
    prev_enabled: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(sink) = SINK.with(|s| s.borrow_mut().take()) {
            sink.flush();
        }
        SINK.with(|s| *s.borrow_mut() = self.prev_sink.take());
        METRICS.with(|m| *m.borrow_mut() = self.prev_metrics.take());
        ENABLED.with(|e| e.set(self.prev_enabled));
    }
}

/// Record an event built by `build`, iff tracing is enabled. The
/// closure is not called otherwise, so call sites pay one branch.
#[inline]
pub fn emit(build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let event = build();
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.record(event);
        }
    });
}

/// Emit a `Begin` event and return a guard that emits the matching
/// `End` (same layer/span/rank/node) when dropped. When tracing is
/// disabled this is a no-op carrying no allocation.
pub fn span(layer: Layer, name: &'static str) -> SpanGuard {
    SpanGuard::begin(layer, name, None, None, Vec::new())
}

/// [`span`] attributed to a rank.
pub fn span_for_rank(layer: Layer, name: &'static str, rank: usize) -> SpanGuard {
    SpanGuard::begin(layer, name, Some(rank as u32), None, Vec::new())
}

/// RAII span: emits `End` on drop.
pub struct SpanGuard {
    active: bool,
    layer: Layer,
    name: &'static str,
    rank: Option<u32>,
    node: Option<u32>,
}

impl SpanGuard {
    fn begin(
        layer: Layer,
        name: &'static str,
        rank: Option<u32>,
        node: Option<u32>,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let active = enabled();
        if active {
            emit(|| {
                let mut e = Event::new(layer, name, EventKind::Begin);
                e.rank = rank;
                e.node = node;
                e.fields = fields;
                e
            });
        }
        SpanGuard {
            active,
            layer,
            name,
            rank,
            node,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let (layer, name, rank, node) = (self.layer, self.name, self.rank, self.node);
            emit(|| {
                let mut e = Event::new(layer, name, EventKind::End);
                e.rank = rank;
                e.node = node;
                e
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Named counters and [`Tally`] instruments, snapshot-exportable.
///
/// Uses `BTreeMap` so snapshots iterate in a stable order — metric
/// output is diffable across runs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<&'static str, u64>>,
    tallies: RefCell<BTreeMap<&'static str, Tally>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter.
    pub fn incr(&self, name: &'static str, by: u64) {
        *self.counters.borrow_mut().entry(name).or_insert(0) += by;
    }

    /// Push one observation onto the named tally.
    pub fn observe(&self, name: &'static str, x: f64) {
        self.tallies.borrow_mut().entry(name).or_default().push(x);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .borrow()
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            tallies: self
                .tallies
                .borrow()
                .iter()
                .map(|(k, t)| (*k, t.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Tally name → statistics, sorted by name.
    pub tallies: Vec<(&'static str, Tally)>,
}

impl MetricsSnapshot {
    /// Render as aligned text (for bench binaries' stdout reports).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(s, "{k:<44} {v}");
        }
        for (k, t) in &self.tallies {
            let _ = writeln!(
                s,
                "{k:<44} n={} mean={:.6} min={:.6} max={:.6}",
                t.count(),
                t.mean(),
                t.min(),
                t.max()
            );
        }
        s
    }
}

/// Ambient counter increment (no-op unless tracing is enabled).
#[inline]
pub fn counter(name: &'static str, by: u64) {
    if !enabled() {
        return;
    }
    METRICS.with(|m| {
        if let Some(reg) = m.borrow().as_ref() {
            reg.incr(name, by);
        }
    });
}

/// Ambient tally observation (no-op unless tracing is enabled).
#[inline]
pub fn sample(name: &'static str, x: f64) {
    if !enabled() {
        return;
    }
    METRICS.with(|m| {
        if let Some(reg) = m.borrow().as_ref() {
            reg.observe(name, x);
        }
    });
}

/// Snapshot the ambient registry, if one is installed.
pub fn metrics_snapshot() -> Option<MetricsSnapshot> {
    METRICS.with(|m| m.borrow().as_ref().map(|r| r.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::{run, sleep};

    #[test]
    fn disabled_trace_records_nothing_and_calls_no_closure() {
        assert!(!enabled());
        emit(|| panic!("closure must not run while disabled"));
        counter("x", 1);
        assert!(metrics_snapshot().is_none());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = Rc::new(RingSink::new(3));
        let _g = install(ring.clone());
        for i in 0..5u64 {
            emit(|| Event::new(Layer::Executor, "tick", EventKind::Point).field("i", i));
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].fields[0], ("i", Value::U64(2)));
        assert_eq!(evs[2].fields[0], ("i", Value::U64(4)));
    }

    #[test]
    fn guard_restores_previous_sink() {
        let outer = Rc::new(RingSink::new(8));
        let _g1 = install(outer.clone());
        {
            let inner = Rc::new(RingSink::new(8));
            let _g2 = install(inner.clone());
            emit(|| Event::new(Layer::Pfs, "inner", EventKind::Point));
            assert_eq!(inner.recorded(), 1);
        }
        emit(|| Event::new(Layer::Pfs, "outer", EventKind::Point));
        assert_eq!(outer.recorded(), 1);
        assert_eq!(outer.events()[0].span, "outer");
    }

    #[test]
    fn span_guard_brackets_virtual_time() {
        let ring = Rc::new(RingSink::new(16));
        let _g = install(ring.clone());
        run(async {
            let _s = span_for_rank(Layer::Romio, "phase", 3);
            sleep(SimDuration::from_secs(2)).await;
        });
        // The executor's own task events land on the sink too; look at
        // the romio span only.
        let evs: Vec<Event> = ring
            .events()
            .into_iter()
            .filter(|e| e.layer == Layer::Romio)
            .collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[1].kind, EventKind::End);
        assert_eq!(evs[0].rank, Some(3));
        assert_eq!(
            evs[1].sim_time.since(evs[0].sim_time),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn event_json_schema_is_stable() {
        let e = Event {
            sim_time: SimTime::from_nanos(1_523_000),
            layer: Layer::Pfs,
            span: "write_chunk",
            kind: EventKind::End,
            rank: Some(3),
            node: None,
            fields: vec![
                ("bytes", Value::U64(65536)),
                ("load", Value::F64(0.25)),
                ("policy", Value::Str("urgent")),
                ("ok", Value::Bool(true)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":1523000,\"layer\":\"pfs\",\"span\":\"write_chunk\",\
             \"kind\":\"end\",\"rank\":3,\"bytes\":65536,\"load\":0.25,\
             \"policy\":\"urgent\",\"ok\":true}"
        );
    }

    #[test]
    fn event_json_escapes_strings() {
        let e = Event {
            sim_time: SimTime::ZERO,
            layer: Layer::Romio,
            span: "open",
            kind: EventKind::Point,
            rank: None,
            node: None,
            fields: vec![("path", Value::String("/a\"b\\c\nd".into()))],
        };
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":0,\"layer\":\"romio\",\"span\":\"open\",\"kind\":\"point\",\
             \"path\":\"/a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("e10-trace-test");
        let path = dir.join("t.jsonl");
        let sink = Rc::new(JsonlSink::create(&path).unwrap());
        {
            let _g = install(sink.clone());
            emit(|| Event::new(Layer::Netsim, "transfer", EventKind::Begin).field("bytes", 10u64));
            emit(|| Event::new(Layer::Netsim, "transfer", EventKind::End).field("bytes", 10u64));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"layer\":\"netsim\""));
            assert!(line.contains("\"span\":\"transfer\""));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_registry_snapshots_in_stable_order() {
        let reg = Rc::new(MetricsRegistry::new());
        let _g = install_with_metrics(Rc::new(RingSink::new(1)), reg.clone());
        counter("z.last", 1);
        counter("a.first", 2);
        counter("a.first", 3);
        sample("lat", 1.0);
        sample("lat", 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a.first", 5), ("z.last", 1)]);
        assert_eq!(snap.tallies.len(), 1);
        assert_eq!(snap.tallies[0].1.count(), 2);
        assert_eq!(snap.tallies[0].1.mean(), 2.0);
        let text = snap.render();
        assert!(text.contains("a.first"));
        assert!(text.contains("n=2"));
    }
}
