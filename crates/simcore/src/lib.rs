//! # e10-simcore
//!
//! A deterministic, single-threaded, `async`-based discrete-event
//! simulation kernel. It is the substrate on which the rest of the E10
//! reproduction runs: MPI ranks, file-system servers, background flush
//! threads and device models are all ordinary Rust `async` tasks whose
//! awaits advance a virtual clock.
//!
//! Design points:
//!
//! * **Determinism.** Events are ordered by `(virtual time, sequence)`;
//!   wake-ups are FIFO; all randomness flows through explicitly seeded
//!   [`rng::SimRng`] streams. Two runs with the same inputs produce
//!   identical traces.
//! * **Ambient kernel.** While [`run`] executes, the kernel lives in a
//!   thread-local so model code can call [`now`], [`sleep`] or [`spawn`]
//!   without plumbing a handle through ten layers — mirroring how real
//!   MPI/ROMIO code relies on process-global runtime state.
//! * **Queueing resources.** [`resource::FifoServer`] and
//!   [`resource::FairShare`] model request-at-a-time devices and
//!   bandwidth-shared links/targets respectively; device models in
//!   `e10-storesim` and `e10-netsim` compose them.
//!
//! ## Example
//!
//! ```
//! use e10_simcore::{run, spawn, sleep, now, SimDuration};
//!
//! let end = run(async {
//!     let worker = spawn(async {
//!         sleep(SimDuration::from_secs(3)).await;
//!         42
//!     });
//!     assert_eq!(worker.await, 42);
//!     now().as_secs_f64()
//! });
//! assert_eq!(end, 3.0);
//! ```

pub mod alloc_gauge;
pub mod chacha;
pub mod channel;
pub mod executor;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;

pub use channel::{channel, Receiver, Sender};
pub use executor::{
    current_group, kill_group, live_counts, new_group, now, run, run_with_stats, schedule_call,
    schedule_call_at, sleep, sleep_until, spawn, spawn_in_group, yield_now, EventHandle,
    JoinHandle, LiveCounts, RunStats, TaskId,
};
pub use pool::{run_jobs, run_jobs_on, worker_threads, Job};
pub use resource::{water_fill, FairShare, FifoServer, RoundRobin};
pub use rng::{Jitter, SimRng};
pub use stats::{LogHistogram, Tally};
pub use sync::{Barrier, Flag, Semaphore, SemaphoreGuard};
pub use time::{transfer_time, SimDuration, SimTime};

/// Await all join handles in a vector, returning their outputs in order.
///
/// The await order is sequential but, because tasks run concurrently in
/// virtual time, the completion instant is the max over all handles.
pub async fn join_all<T: 'static>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_waits_for_slowest() {
        let (vals, end) = run(async {
            let hs = (0..5u64)
                .map(|i| {
                    spawn(async move {
                        sleep(SimDuration::from_secs(i)).await;
                        i * 10
                    })
                })
                .collect();
            let vals = join_all(hs).await;
            (vals, now().as_secs_f64())
        });
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
        assert_eq!(end, 4.0);
    }

    #[test]
    fn runs_are_reproducible() {
        fn experiment() -> Vec<u64> {
            run(async {
                let mut rng = SimRng::new(99);
                let mut out = Vec::new();
                for _ in 0..20 {
                    let d = SimDuration::from_secs_f64(rng.exponential(0.5));
                    sleep(d).await;
                    out.push(now().as_nanos());
                }
                out
            })
        }
        assert_eq!(experiment(), experiment());
    }
}
