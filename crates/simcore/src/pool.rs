//! A dependency-free scoped worker pool for *host-parallel* execution
//! of independent simulations.
//!
//! The discrete-event kernel itself is strictly single-threaded and
//! `Rc`-based; what IS embarrassingly parallel is a *sweep*: dozens of
//! independent, deterministic runs whose only shared state is the
//! grid description. This module executes `Box<dyn FnOnce() -> T +
//! Send>` jobs across [`worker_threads`] OS threads (`std::thread` +
//! `std::sync::mpsc` only — the workspace is offline). Each job
//! constructs its simulation *inside* its worker thread, so no
//! `Rc`-based sim state ever crosses a thread boundary; only the
//! job's `Send` result does.
//!
//! Determinism: results are keyed by submission index and returned in
//! submission order, so a parallel sweep is indistinguishable from a
//! sequential one to everything downstream. `E10_JOBS=1` bypasses
//! thread spawning entirely and runs the jobs inline, byte-identical
//! to the historical sequential path.
//!
//! Panics: a panicking job does not poison the pool — remaining jobs
//! still run — but the first panic (in submission order) is re-raised
//! on the caller's thread once every worker has drained, preserving
//! `cargo test` / CI failure semantics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// A unit of work: built on the caller's thread, executed on a worker.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// Worker-thread count: `E10_JOBS` if set (minimum 1), otherwise the
/// host's available parallelism. `E10_JOBS=1` forces the sequential
/// inline path.
pub fn worker_threads() -> usize {
    match std::env::var("E10_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Run `jobs` across [`worker_threads`] threads; results are returned
/// in submission order. See [`run_jobs_on`].
pub fn run_jobs<T: Send>(jobs: Vec<Job<T>>) -> Vec<T> {
    run_jobs_on(worker_threads(), jobs)
}

/// Run `jobs` across at most `threads` worker threads and return the
/// results keyed by submission index.
///
/// With `threads <= 1` (or fewer than two jobs) the jobs run inline on
/// the calling thread in submission order — the exact historical
/// sequential path, with no threads spawned at all.
pub fn run_jobs_on<T: Send>(threads: usize, jobs: Vec<Job<T>>) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let threads = threads.min(n);

    // Job dispatch is a shared atomic cursor over the job list; result
    // collection is a channel back to the caller. Workers are scoped,
    // so jobs may borrow the caller's stack (no `'static` needed on T).
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Job<T>>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, thread::Result<T>)>();

    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let slots = &slots;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("job dispatched twice");
                let result = catch_unwind(AssertUnwindSafe(job));
                // The receiver only disappears if the caller's thread is
                // itself unwinding; dropping the result is fine then.
                let _ = tx.send((i, result));
            });
        }
        drop(tx);

        let mut out: Vec<Option<thread::Result<T>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for (i, slot) in out.into_iter().enumerate() {
            match slot.expect("worker dropped a job result") {
                Ok(v) => results.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some((i, p));
                    }
                }
            }
        }
        if let Some((_, p)) = first_panic {
            resume_unwind(p);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_squaring(n: usize) -> Vec<Job<usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Job<usize>)
            .collect()
    }

    #[test]
    fn results_are_keyed_by_submission_index() {
        for threads in [1, 2, 4, 8] {
            let out = run_jobs_on(threads, jobs_squaring(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_path_runs_inline() {
        // Jobs returning the executing thread id: with threads=1 every
        // job must run on the caller's thread.
        let me = thread::current().id();
        let jobs: Vec<Job<thread::ThreadId>> = (0..5)
            .map(|_| Box::new(|| thread::current().id()) as Job<thread::ThreadId>)
            .collect();
        let out = run_jobs_on(1, jobs);
        assert!(out.iter().all(|id| *id == me));
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_jobs_on(64, jobs_squaring(3));
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_jobs_on(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_can_run_simulations_in_parallel() {
        // Each job builds its own single-threaded sim inside its worker.
        let jobs: Vec<Job<f64>> = (1..=6u64)
            .map(|secs| {
                Box::new(move || {
                    crate::run(async move {
                        crate::sleep(crate::SimDuration::from_secs(secs)).await;
                        crate::now().as_secs_f64()
                    })
                }) as Job<f64>
            })
            .collect();
        let out = run_jobs_on(3, jobs);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn panicking_job_propagates_after_drain() {
        let finished = std::sync::Arc::new(AtomicUsize::new(0));
        let f2 = std::sync::Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<u32>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("boom in job 1")),
                Box::new(move || {
                    f2.fetch_add(1, Ordering::Relaxed);
                    3
                }),
            ];
            run_jobs_on(2, jobs)
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("boom"), "unexpected payload {msg:?}");
        // The pool drained the remaining jobs before re-raising.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_threads_env_contract() {
        // Do not mutate the real environment (tests run concurrently);
        // just pin the default floor.
        assert!(worker_threads() >= 1);
    }
}
