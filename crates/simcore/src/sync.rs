//! Synchronisation primitives for simulated tasks.
//!
//! All primitives are single-threaded (the simulation runs on one OS
//! thread) but coordinate *tasks*: waiting parks the task and lets virtual
//! time advance.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A one-shot, multi-waiter event flag ("manual reset event").
///
/// Tasks `wait()` until some other task calls `set()`. Once set it stays
/// set; later waits resolve immediately. Cloning shares the flag.
#[derive(Clone, Default)]
pub struct Flag {
    inner: Rc<RefCell<FlagState>>,
}

#[derive(Default)]
struct FlagState {
    set: bool,
    waiters: Vec<Waker>,
}

impl Flag {
    /// Create a new, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag, waking all current waiters. Idempotent.
    pub fn set(&self) {
        let mut st = self.inner.borrow_mut();
        if !st.set {
            st.set = true;
            for w in st.waiters.drain(..) {
                w.wake();
            }
        }
    }

    /// True if the flag has been set.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Wait until the flag is set.
    pub fn wait(&self) -> FlagWait {
        FlagWait { flag: self.clone() }
    }
}

/// Future returned by [`Flag::wait`].
pub struct FlagWait {
    flag: Flag,
}

impl Future for FlagWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.flag.inner.borrow_mut();
        if st.set {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A counting semaphore with FIFO-fair acquisition.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemState>>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<SemWaiter>,
    /// Recycled grant flags: a contended acquire needs an
    /// `Rc<Cell<bool>>` shared with its queue entry; reusing retired
    /// ones keeps steady-state contention allocation-free.
    spare: Vec<Rc<Cell<bool>>>,
}

struct SemWaiter {
    want: usize,
    granted: Rc<Cell<bool>>,
    waker: Waker,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
                spare: Vec::new(),
            })),
        }
    }

    /// Acquire `n` permits, waiting FIFO-fairly. The returned guard
    /// releases the permits on drop.
    pub async fn acquire_many(&self, n: usize) -> SemaphoreGuard {
        let wait = {
            let mut st = self.inner.borrow_mut();
            if st.waiters.is_empty() && st.permits >= n {
                st.permits -= n;
                None
            } else {
                let g = st.spare.pop().unwrap_or_else(|| Rc::new(Cell::new(false)));
                g.set(false);
                Some(g)
            }
        };
        if let Some(granted) = wait {
            AcquireWait {
                sem: self.inner.clone(),
                want: n,
                granted,
                registered: false,
                finished: false,
            }
            .await;
        }
        SemaphoreGuard {
            sem: self.inner.clone(),
            held: n,
        }
    }

    /// Acquire a single permit.
    pub async fn acquire(&self) -> SemaphoreGuard {
        self.acquire_many(1).await
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of tasks currently queued.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().waiters.len()
    }
}

impl SemState {
    /// Hand permits to queued waiters, strictly in FIFO order.
    fn drain(&mut self) {
        while let Some(front) = self.waiters.front() {
            if self.permits >= front.want {
                let w = self.waiters.pop_front().unwrap();
                self.permits -= w.want;
                w.granted.set(true);
                w.waker.wake();
            } else {
                break;
            }
        }
    }
}

struct AcquireWait {
    sem: Rc<RefCell<SemState>>,
    want: usize,
    granted: Rc<Cell<bool>>,
    registered: bool,
    finished: bool,
}

impl Future for AcquireWait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.granted.get() {
            self.finished = true;
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            {
                let mut st = self.sem.borrow_mut();
                st.waiters.push_back(SemWaiter {
                    want: self.want,
                    granted: Rc::clone(&self.granted),
                    waker: cx.waker().clone(),
                });
                // We may be at the head with permits already free.
                st.drain();
            }
            if self.granted.get() {
                self.finished = true;
                return Poll::Ready(());
            }
        }
        Poll::Pending
    }
}

impl Drop for AcquireWait {
    /// Cancel safety: a waiter whose task dies (e.g. its crash group is
    /// killed) must neither leak a queue slot nor swallow permits that
    /// were already handed to it but never observed.
    fn drop(&mut self) {
        if self.finished {
            // Retired cleanly: the queue entry's clone is gone, so the
            // flag can be recycled for the next contended acquire.
            if Rc::strong_count(&self.granted) == 1 {
                self.sem.borrow_mut().spare.push(Rc::clone(&self.granted));
            }
            return;
        }
        let mut st = self.sem.borrow_mut();
        if self.granted.get() {
            // Granted between our last poll and the drop: hand back.
            st.permits += self.want;
        } else if let Some(i) = st
            .waiters
            .iter()
            .position(|w| Rc::ptr_eq(&w.granted, &self.granted))
        {
            st.waiters.remove(i);
        } else {
            return;
        }
        // Our departure may unblock smaller requests behind us.
        st.drain();
    }
}

/// Guard holding semaphore permits; releases on drop.
pub struct SemaphoreGuard {
    sem: Rc<RefCell<SemState>>,
    held: usize,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut st = self.sem.borrow_mut();
        st.permits += self.held;
        st.drain();
    }
}

/// A reusable rendezvous barrier for a fixed party count.
///
/// The `n`-th arriving task releases everyone; the barrier then resets for
/// the next generation, so it can be used in loops.
#[derive(Clone)]
pub struct Barrier {
    inner: Rc<RefCell<BarrierState>>,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

impl Barrier {
    /// Create a barrier for `parties` tasks. `parties` must be > 0.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "Barrier requires at least one party");
        Barrier {
            inner: Rc::new(RefCell::new(BarrierState {
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
            parties,
        }
    }

    /// Arrive and wait for all parties. Returns `true` for the task that
    /// tripped the barrier (the "leader" of this generation).
    pub async fn wait(&self) -> bool {
        let (gen, leader) = {
            let mut st = self.inner.borrow_mut();
            st.arrived += 1;
            if st.arrived == self.parties {
                st.arrived = 0;
                st.generation += 1;
                for w in st.waiters.drain(..) {
                    w.wake();
                }
                (st.generation, true)
            } else {
                (st.generation, false)
            }
        };
        if !leader {
            BarrierWait {
                inner: self.inner.clone(),
                generation: gen,
            }
            .await;
        }
        leader
    }
}

struct BarrierWait {
    inner: Rc<RefCell<BarrierState>>,
    generation: u64,
}

impl Future for BarrierWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.inner.borrow_mut();
        if st.generation != self.generation {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, run, sleep, spawn};
    use crate::time::SimDuration;

    #[test]
    fn flag_wakes_all_waiters() {
        let times = run(async {
            let flag = Flag::new();
            let mut handles = Vec::new();
            for _ in 0..3 {
                let f = flag.clone();
                handles.push(spawn(async move {
                    f.wait().await;
                    now().as_secs_f64()
                }));
            }
            spawn({
                let f = flag.clone();
                async move {
                    sleep(SimDuration::from_secs(4)).await;
                    f.set();
                }
            });
            let mut out = Vec::new();
            for h in handles {
                out.push(h.await);
            }
            assert!(flag.is_set());
            out
        });
        assert_eq!(times, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn flag_set_before_wait_resolves_immediately() {
        run(async {
            let flag = Flag::new();
            flag.set();
            flag.set(); // idempotent
            flag.wait().await;
            assert_eq!(now().as_secs_f64(), 0.0);
        });
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let max_seen = run(async {
            let sem = Semaphore::new(2);
            let active = Rc::new(Cell::new(0usize));
            let max_seen = Rc::new(Cell::new(0usize));
            let mut hs = Vec::new();
            for _ in 0..6 {
                let sem = sem.clone();
                let active = Rc::clone(&active);
                let max_seen = Rc::clone(&max_seen);
                hs.push(spawn(async move {
                    let _g = sem.acquire().await;
                    active.set(active.get() + 1);
                    max_seen.set(max_seen.get().max(active.get()));
                    sleep(SimDuration::from_secs(1)).await;
                    active.set(active.get() - 1);
                }));
            }
            for h in hs {
                h.await;
            }
            assert_eq!(now().as_secs_f64(), 3.0); // 6 jobs, 2 at a time, 1s each
            max_seen.get()
        });
        assert_eq!(max_seen, 2);
    }

    #[test]
    fn semaphore_fifo_order_with_acquire_many() {
        let order = run(async {
            let sem = Semaphore::new(3);
            let order = Rc::new(RefCell::new(Vec::new()));
            let g = sem.acquire_many(3).await;
            let mut hs = Vec::new();
            // First waiter wants 2, second wants 1: FIFO means the
            // 1-permit waiter must NOT jump ahead when only 1 is free.
            for (i, want) in [(0, 2usize), (1, 1usize)] {
                let sem = sem.clone();
                let order = Rc::clone(&order);
                hs.push(spawn(async move {
                    let _g = sem.acquire_many(want).await;
                    order.borrow_mut().push(i);
                    sleep(SimDuration::from_secs(1)).await;
                }));
            }
            sleep(SimDuration::from_secs(1)).await;
            drop(g);
            for h in hs {
                h.await;
            }
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn barrier_releases_all_and_reuses() {
        run(async {
            let bar = Barrier::new(4);
            let mut hs = Vec::new();
            for i in 0..4u64 {
                let bar = bar.clone();
                hs.push(spawn(async move {
                    for round in 0..3u64 {
                        sleep(SimDuration::from_secs(i + 1)).await;
                        bar.wait().await;
                        // Everyone leaves the barrier at the time the
                        // slowest participant arrived.
                        assert_eq!(now().as_secs_f64() % 4.0, 0.0, "round {round}");
                    }
                }));
            }
            for h in hs {
                h.await;
            }
            assert_eq!(now().as_secs_f64(), 12.0);
        });
    }

    #[test]
    fn killed_semaphore_waiter_leaks_nothing() {
        run(async {
            let sem = Semaphore::new(1);
            let holder = sem.acquire().await;
            // A queued waiter in a crash group dies while parked.
            let gid = crate::executor::new_group();
            let s = sem.clone();
            crate::executor::spawn_in_group(gid, async move {
                let _g = s.acquire().await;
                unreachable!("waiter must be killed before acquiring");
            });
            sleep(SimDuration::from_secs(1)).await;
            assert_eq!(sem.queue_len(), 1);
            crate::executor::kill_group(gid);
            assert_eq!(sem.queue_len(), 0, "dead waiter must leave the queue");
            drop(holder);
            // The permit must still be acquirable afterwards.
            let _g = sem.acquire().await;
            assert_eq!(sem.available(), 0);
        });
    }

    #[test]
    fn killed_permit_holder_releases_on_drop() {
        run(async {
            let sem = Semaphore::new(1);
            let gid = crate::executor::new_group();
            let s = sem.clone();
            crate::executor::spawn_in_group(gid, async move {
                let _g = s.acquire().await;
                sleep(SimDuration::from_secs(100)).await;
            });
            sleep(SimDuration::from_secs(1)).await;
            assert_eq!(sem.available(), 0);
            crate::executor::kill_group(gid);
            assert_eq!(sem.available(), 1, "guard drop must return the permit");
        });
    }

    #[test]
    fn dead_waiter_departure_unblocks_smaller_requests() {
        run(async {
            let sem = Semaphore::new(2);
            let holder = sem.acquire_many(2).await;
            let gid = crate::executor::new_group();
            let s = sem.clone();
            // Head of queue wants 2; a later task wants 1.
            crate::executor::spawn_in_group(gid, async move {
                let _g = s.acquire_many(2).await;
                unreachable!();
            });
            sleep(SimDuration::from_secs(1)).await;
            let s2 = sem.clone();
            let small = spawn(async move {
                let _g = s2.acquire().await;
                now().as_secs_f64()
            });
            sleep(SimDuration::from_secs(1)).await;
            drop(holder); // 2 free, but FIFO head still wants 2... then dies:
            crate::executor::kill_group(gid);
            let t = small.await;
            assert_eq!(t, 2.0, "small request must be granted when head dies");
        });
    }

    #[test]
    fn barrier_reports_exactly_one_leader() {
        let leaders = run(async {
            let bar = Barrier::new(3);
            let mut hs = Vec::new();
            for i in 0..3u64 {
                let bar = bar.clone();
                hs.push(spawn(async move {
                    sleep(SimDuration::from_secs(i)).await;
                    bar.wait().await
                }));
            }
            let mut n = 0;
            for h in hs {
                if h.await {
                    n += 1;
                }
            }
            n
        });
        assert_eq!(leaders, 1);
    }
}
