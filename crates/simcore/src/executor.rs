//! The discrete-event executor.
//!
//! The simulation runs on a single OS thread. Simulated activities are
//! ordinary Rust `async` tasks; whenever a task awaits a timed operation
//! (a [`sleep`], a queueing resource, a message arrival, ...) it parks and
//! the kernel advances the virtual clock to the next scheduled event.
//!
//! Determinism: events are ordered by `(time, sequence-number)` and the
//! ready queue is FIFO, so a run is a pure function of its inputs (including
//! any RNG seeds used by the models).
//!
//! The kernel is installed in a thread-local while [`run`] executes, which
//! lets deeply nested model code call [`now`], [`spawn`] or [`schedule_call`]
//! without threading a handle through every layer — the same pattern a real
//! MPI implementation gets from its process-global runtime state.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDuration, SimTime};
use crate::trace::{self, Event, EventKind, Layer};

/// Identifier of a spawned task.
pub type TaskId = u64;

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

pub(crate) enum EventAction {
    /// Wake a parked future.
    Wake(Waker),
    /// Run an arbitrary callback.
    Call(Box<dyn FnOnce()>),
    /// A [`crate::resource::FairShare`] completion timer. A dedicated
    /// variant (instead of a boxed closure) so the hottest reschedule
    /// path in the simulator — cancel + re-arm on every job join and
    /// leave — costs two slab operations and an `Rc` clone, no heap
    /// allocation. Staleness is detected by the owner comparing the
    /// firing seq against its recorded pending seq.
    FsTimer(Rc<RefCell<crate::resource::FsState>>),
}

pub(crate) struct ScheduledEvent {
    /// Sequence number of the calendar entry pointing at this slot.
    /// A popped heap entry whose seq doesn't match is stale (the slot
    /// was freed by a cancel and possibly reused) and is skipped.
    seq: u64,
    action: EventAction,
    cancelled: Option<Rc<Cell<bool>>>,
}

/// Distinguishes kernels across nested/sequential/parallel runs so an
/// [`EventHandle`] outliving its simulation can never free a slot of a
/// different kernel that happens to reuse the same indices.
static KERNEL_IDS: AtomicU64 = AtomicU64::new(1);

/// Handle to a scheduled callback; dropping it does NOT cancel the event,
/// call [`EventHandle::cancel`] explicitly.
#[derive(Clone)]
pub struct EventHandle {
    cancelled: Rc<Cell<bool>>,
    kernel: u64,
    slot: u32,
    seq: u64,
}

impl EventHandle {
    /// Prevent the event from firing. Idempotent; has no effect if the
    /// event already fired.
    ///
    /// The event body (boxed callback and its captures) is dropped
    /// *now*, not when the calendar reaches the event's time — a
    /// cancelled timeout scheduled far in the future costs one stale
    /// 24-byte heap entry instead of retaining its closure for the
    /// rest of the run.
    pub fn cancel(&self) {
        if self.cancelled.replace(true) {
            return;
        }
        // Take the body out under the kernel borrow, drop it after:
        // captured values may re-enter the kernel from their own Drop.
        let body = CTX.with(|ctx| {
            let guard = ctx.borrow();
            let rc = guard.as_ref()?;
            let mut k = rc.borrow_mut();
            if k.id != self.kernel {
                return None;
            }
            k.free_event(self.slot, self.seq)
        });
        drop(body);
    }

    /// True if [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
    queued: AtomicBool,
    /// Shared run-wide tally of redundant wakes (wake on an
    /// already-queued task): the waker is the only place that can see
    /// the coalescing happen.
    coalesced: Arc<AtomicU64>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::Relaxed) {
            self.ready.lock().unwrap().push_back(self.id);
        } else {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A spawned task's kernel-side state. Tasks live in a slab indexed by
/// the low 32 bits of their [`TaskId`]; the high 32 bits carry the
/// slot's generation so stale ready-queue entries and wakers of
/// completed tasks are detected by a mismatch instead of a hash lookup.
struct TaskSlot {
    generation: u32,
    /// The parked future. `None` while the task is being polled (the
    /// run loop takes it out) — and permanently for a slot being freed.
    fut: Option<LocalFuture>,
    waker: Arc<TaskWaker>,
    /// Crash group (0 = ungrouped pool, which can never be killed).
    group: u64,
}

fn task_id(slot: u32, generation: u32) -> TaskId {
    ((generation as u64) << 32) | slot as u64
}

fn task_slot(id: TaskId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

pub(crate) struct Kernel {
    id: u64,
    now: SimTime,
    seq: u64,
    /// The calendar: `(time, seq, slot)` min-entries. `(time, seq)` is
    /// the deterministic total order (identical to the pre-slab
    /// executor); `slot` indexes the event body in `slots`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Slab of event bodies; `free_slots` recycles vacancies so the
    /// slab's length is bounded by the peak number of *live* events,
    /// not by the number ever scheduled.
    slots: Vec<Option<ScheduledEvent>>,
    free_slots: Vec<u32>,
    live_events: usize,
    /// Task slab + free list (see [`TaskSlot`]).
    tasks: Vec<Option<TaskSlot>>,
    free_tasks: Vec<u32>,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
    events_fired: u64,
    events_batched: u64,
    heap_peak: usize,
    wakes_coalesced: Arc<AtomicU64>,
    tasks_spawned: u64,
    /// Group of the task currently being polled; new spawns inherit it.
    current_group: u64,
    next_group: u64,
}

impl Kernel {
    fn new() -> Self {
        Kernel {
            id: KERNEL_IDS.fetch_add(1, Ordering::Relaxed),
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            live_events: 0,
            tasks: Vec::new(),
            free_tasks: Vec::new(),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            events_fired: 0,
            events_batched: 0,
            heap_peak: 0,
            wakes_coalesced: Arc::new(AtomicU64::new(0)),
            tasks_spawned: 0,
            current_group: 0,
            next_group: 1,
        }
    }

    fn schedule(
        &mut self,
        at: SimTime,
        action: EventAction,
        cancelled: Option<Rc<Cell<bool>>>,
    ) -> (u64, u32) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slab overflow");
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(ScheduledEvent {
            seq,
            action,
            cancelled,
        });
        self.live_events += 1;
        self.heap.push(Reverse((at, seq, slot)));
        if self.heap.len() > self.heap_peak {
            self.heap_peak = self.heap.len();
        }
        (seq, slot)
    }

    /// Vacate `slot` if it still holds the event scheduled as `seq`,
    /// returning the body for the caller to drop outside any borrow.
    fn free_event(&mut self, slot: u32, seq: u64) -> Option<ScheduledEvent> {
        match self.slots.get(slot as usize)? {
            Some(ev) if ev.seq == seq => {
                let ev = self.slots[slot as usize].take();
                self.free_slots.push(slot);
                self.live_events -= 1;
                ev
            }
            _ => None,
        }
    }

    /// Drop lazily-deleted (stale) calendar entries when they dominate
    /// the heap, so `heap_peak` reflects live load — without this, a
    /// cancel-heavy fault schedule grows the heap without bound even
    /// though every body was vacated eagerly.
    fn purge_stale_heap_entries(&mut self) {
        if self.heap.len() <= 64 || self.heap.len() <= 2 * self.live_events {
            return;
        }
        let slots = &self.slots;
        self.heap.retain(|&Reverse((_, seq, slot))| {
            slots
                .get(slot as usize)
                .and_then(|s| s.as_ref())
                .is_some_and(|ev| ev.seq == seq)
        });
    }

    fn spawn_raw(&mut self, fut: LocalFuture) -> TaskId {
        self.tasks_spawned += 1;
        let slot = match self.free_tasks.pop() {
            Some(s) => s,
            None => {
                assert!(self.tasks.len() < u32::MAX as usize, "task slab overflow");
                self.tasks.push(None);
                (self.tasks.len() - 1) as u32
            }
        };
        // The generation only needs to differ from any id a previous
        // occupant of this slot may have left in the ready queue; the
        // strictly-increasing spawn counter guarantees that.
        let generation = (self.tasks_spawned - 1) as u32;
        let id = task_id(slot, generation);
        let waker = Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
            queued: AtomicBool::new(true),
            coalesced: Arc::clone(&self.wakes_coalesced),
        });
        self.tasks[slot as usize] = Some(TaskSlot {
            generation,
            fut: Some(fut),
            waker,
            group: self.current_group,
        });
        self.ready.lock().unwrap().push_back(id);
        id
    }

    /// The slot's occupant, if `id`'s generation still matches.
    fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskSlot> {
        let (slot, generation) = task_slot(id);
        self.tasks
            .get_mut(slot as usize)?
            .as_mut()
            .filter(|t| t.generation == generation)
    }

    /// Schedule a [`FairShare`](crate::resource::FairShare) completion
    /// timer, returning `(kernel id, seq, slot)` for the owner's
    /// staleness bookkeeping.
    pub(crate) fn schedule_fs_timer(
        &mut self,
        at: SimTime,
        fs: Rc<RefCell<crate::resource::FsState>>,
    ) -> (u64, u64, u32) {
        let (seq, slot) = self.schedule(at, EventAction::FsTimer(fs), None);
        (self.id, seq, slot)
    }

    /// Cancel a fair-share timer scheduled by this kernel; inert for a
    /// foreign kernel id (a resource outliving its simulation). The
    /// returned body is just an `Rc` clone — safe to drop anywhere.
    pub(crate) fn cancel_fs_timer(
        &mut self,
        kernel: u64,
        seq: u64,
        slot: u32,
    ) -> Option<ScheduledEvent> {
        if self.id != kernel {
            return None;
        }
        self.free_event(slot, seq)
    }

    /// Free a task slot (completion or kill).
    fn free_task(&mut self, id: TaskId) -> Option<TaskSlot> {
        let (slot, generation) = task_slot(id);
        match self.tasks.get(slot as usize) {
            Some(Some(t)) if t.generation == generation => {
                let t = self.tasks[slot as usize].take();
                self.free_tasks.push(slot);
                t
            }
            _ => None,
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<Rc<RefCell<Kernel>>>> = const { RefCell::new(None) };
}

pub(crate) fn with_kernel<R>(f: impl FnOnce(&mut Kernel) -> R) -> R {
    CTX.with(|ctx| {
        let guard = ctx.borrow();
        let rc = guard
            .as_ref()
            .expect("simcore primitive used outside of simcore::run()");
        let mut k = rc.borrow_mut();
        f(&mut k)
    })
}

/// Current simulated time. Panics outside of [`run`].
pub fn now() -> SimTime {
    with_kernel(|k| k.now)
}

/// Current simulated time, or `None` outside of [`run`] (for drop
/// implementations that must not panic during unwinding).
pub fn try_now() -> Option<SimTime> {
    CTX.with(|ctx| ctx.borrow().as_ref().map(|rc| rc.borrow().now))
}

/// Schedule `f` to run at absolute simulated time `at`.
///
/// Returns a handle that can cancel the callback before it fires.
pub fn schedule_call_at(at: SimTime, f: impl FnOnce() + 'static) -> EventHandle {
    let cancelled = Rc::new(Cell::new(false));
    let (kernel, (seq, slot)) = with_kernel(|k| {
        (
            k.id,
            k.schedule(
                at,
                EventAction::Call(Box::new(f)),
                Some(Rc::clone(&cancelled)),
            ),
        )
    });
    EventHandle {
        cancelled,
        kernel,
        slot,
        seq,
    }
}

/// Schedule `f` to run after `delay`.
pub fn schedule_call(delay: SimDuration, f: impl FnOnce() + 'static) -> EventHandle {
    let at = now() + delay;
    schedule_call_at(at, f)
}

pub(crate) fn schedule_wake_at(at: SimTime, waker: Waker) {
    with_kernel(|k| k.schedule(at, EventAction::Wake(waker), None));
}

struct JoinState<T> {
    result: Option<T>,
    waiters: Vec<Waker>,
    finished: bool,
}

/// Handle to a spawned task; awaiting it yields the task's output.
///
/// Unlike `std::thread::JoinHandle`, dropping it detaches the task (the
/// task keeps running).
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// Identifier of the underlying task.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the task has completed.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.finished {
            match st.result.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("JoinHandle polled after completion was taken"),
            }
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Spawn a new simulated task. The task starts at the current virtual time.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Rc::new(RefCell::new(JoinState {
        result: None,
        waiters: Vec::new(),
        finished: false,
    }));
    let st2 = Rc::clone(&state);
    let wrapped = Box::pin(async move {
        let out = fut.await;
        let mut st = st2.borrow_mut();
        st.result = Some(out);
        st.finished = true;
        for w in st.waiters.drain(..) {
            w.wake();
        }
    });
    let id = with_kernel(|k| k.spawn_raw(wrapped));
    // Outside the kernel borrow: event construction reads the clock.
    trace::emit(|| Event::new(Layer::Executor, "task.spawn", EventKind::Point).field("task", id));
    JoinHandle { state, id }
}

/// Allocate a fresh crash-group identifier (never 0).
///
/// Groups model a fault domain: every task spawned (transitively) from a
/// task in group `g` joins `g`, and [`kill_group`] removes the whole tree
/// at once — the simulated equivalent of a node losing power mid-run.
pub fn new_group() -> u64 {
    with_kernel(|k| {
        let g = k.next_group;
        k.next_group += 1;
        g
    })
}

/// Group of the currently running task (0 = ungrouped).
pub fn current_group() -> u64 {
    with_kernel(|k| k.current_group)
}

/// Spawn a task rooted in crash group `gid` (see [`new_group`]); its
/// descendants inherit the group.
pub fn spawn_in_group<F>(gid: u64, fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let prev = with_kernel(|k| std::mem::replace(&mut k.current_group, gid));
    let h = spawn(fut);
    with_kernel(|k| k.current_group = prev);
    h
}

/// Kill every task in crash group `gid`, returning how many were
/// destroyed. Their futures are dropped immediately, so destructors run
/// (held locks and semaphore permits are released — a crashed client's
/// server-side state is revoked). `JoinHandle`s of killed tasks never
/// complete; a crash harness must not await them. The calling task
/// itself is never killed, even if it belongs to `gid`.
pub fn kill_group(gid: u64) -> usize {
    assert!(
        gid != 0,
        "group 0 is the ungrouped pool and cannot be killed"
    );
    let victims: Vec<LocalFuture> = with_kernel(|k| {
        let mut futs = Vec::new();
        let mut freed: Vec<u32> = Vec::new();
        for (slot, entry) in k.tasks.iter_mut().enumerate() {
            let Some(t) = entry else { continue };
            if t.group != gid {
                continue;
            }
            // A slot without a parked future is the caller itself
            // (mid-poll); it survives by construction but leaves the
            // group.
            match t.fut.take() {
                Some(f) => {
                    futs.push(f);
                    *entry = None;
                    freed.push(slot as u32);
                }
                None => t.group = 0,
            }
        }
        k.free_tasks.extend(freed);
        futs
    });
    let n = victims.len();
    // Drop outside the kernel borrow: destructors may re-enter the
    // kernel (cancel events, wake other tasks, release resources).
    drop(victims);
    trace::emit(|| {
        Event::new(Layer::Executor, "group.kill", EventKind::Point)
            .field("group", gid)
            .field("tasks", n as u64)
    });
    trace::counter("executor.killed_tasks", n as u64);
    n
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: SimTime,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let t = now();
        if t >= self.deadline {
            return Poll::Ready(());
        }
        if !self.scheduled {
            self.scheduled = true;
            schedule_wake_at(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Suspend the current task for `d` of simulated time.
pub fn sleep(d: SimDuration) -> Sleep {
    Sleep {
        deadline: now() + d,
        scheduled: false,
    }
}

/// Suspend the current task until the absolute instant `t` (no-op if in
/// the past).
pub fn sleep_until(t: SimTime) -> Sleep {
    Sleep {
        deadline: t,
        scheduled: false,
    }
}

/// Yield to other runnable tasks at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Live-object counts of the ambient kernel — the executor's memory
/// footprint in objects. Used by leak-regression tests and the bench
/// baseline's invariant checks; panics outside of [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveCounts {
    /// Scheduled events whose bodies are still held. Cancelled events
    /// are vacated eagerly and do not count (their stale calendar
    /// entries do not retain the body).
    pub events: usize,
    /// Parked tasks (the currently-polled task is not parked).
    pub tasks: usize,
    /// Registered task wakers (parked tasks + the one being polled).
    pub wakers: usize,
    /// Tasks carrying a crash-group membership entry.
    pub grouped_tasks: usize,
}

/// Snapshot the ambient kernel's [`LiveCounts`].
pub fn live_counts() -> LiveCounts {
    with_kernel(|k| {
        let mut tasks = 0;
        let mut wakers = 0;
        let mut grouped_tasks = 0;
        for t in k.tasks.iter().flatten() {
            wakers += 1;
            if t.fut.is_some() {
                tasks += 1;
            }
            if t.group != 0 {
                grouped_tasks += 1;
            }
        }
        LiveCounts {
            events: k.live_events,
            tasks,
            wakers,
            grouped_tasks,
        }
    })
}

/// Statistics about a completed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Virtual time at which the main task completed.
    pub end_time: SimTime,
    /// Number of calendar events fired.
    pub events_fired: u64,
    /// Number of tasks spawned over the whole run.
    pub tasks_spawned: u64,
    /// Events delivered as part of a same-instant batch of ≥ 2 (a
    /// measure of how much heap traffic batching amortised).
    pub events_batched: u64,
    /// High-water mark of calendar entries (live + lazily-deleted).
    pub heap_peak: u64,
    /// Wakes that found their task already queued and were absorbed
    /// without touching the ready queue.
    pub wakes_coalesced: u64,
}

/// Run `main` to completion inside a fresh simulation and return its output.
///
/// Panics with a diagnostic if the simulation deadlocks (no runnable task
/// and no pending event while `main` is incomplete). Background tasks still
/// pending when `main` finishes are dropped.
pub fn run<F, T>(main: F) -> T
where
    F: Future<Output = T> + 'static,
    T: 'static,
{
    run_with_stats(main).0
}

/// Like [`run`] but also returns calendar statistics.
pub fn run_with_stats<F, T>(main: F) -> (T, RunStats)
where
    F: Future<Output = T> + 'static,
    T: 'static,
{
    let kernel = Rc::new(RefCell::new(Kernel::new()));
    CTX.with(|ctx| {
        let mut guard = ctx.borrow_mut();
        assert!(
            guard.is_none(),
            "nested simcore::run() on the same thread is not supported"
        );
        *guard = Some(Rc::clone(&kernel));
    });
    // Make sure the TLS slot is cleared even if the simulation panics.
    struct CtxGuard;
    impl Drop for CtxGuard {
        fn drop(&mut self) {
            CTX.with(|ctx| ctx.borrow_mut().take());
        }
    }
    let _guard = CtxGuard;

    let main_handle = spawn(main);
    let ready = kernel.borrow().ready.clone();

    // Reusable dispatch buffers: `batch` holds the bodies of every
    // event sharing the current instant (in reverse seq order, so
    // `pop()` yields FIFO); `skipped` holds cancelled-but-unvacated
    // bodies until they can be dropped outside the kernel borrow.
    let mut batch: Vec<ScheduledEvent> = Vec::new();
    let mut skipped: Vec<ScheduledEvent> = Vec::new();

    loop {
        // Drain all tasks runnable at the current instant.
        loop {
            let tid = ready.lock().unwrap().pop_front();
            let Some(tid) = tid else { break };
            let (fut, waker) = {
                let mut k = kernel.borrow_mut();
                let Some(t) = k.task_mut(tid) else {
                    continue; // task already completed or killed
                };
                let Some(fut) = t.fut.take() else {
                    continue; // stale duplicate entry
                };
                let w = Arc::clone(&t.waker);
                let group = t.group;
                w.queued.store(false, Ordering::Relaxed);
                k.current_group = group;
                (fut, w)
            };
            let mut fut = fut;
            let waker_obj: Waker = waker.into();
            let mut cx = Context::from_waker(&waker_obj);
            trace::emit(|| {
                Event::new(Layer::Executor, "task.wake", EventKind::Point).field("task", tid)
            });
            trace::counter("executor.polls", 1);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    trace::emit(|| {
                        Event::new(Layer::Executor, "task.finish", EventKind::Point)
                            .field("task", tid)
                    });
                    let mut k = kernel.borrow_mut();
                    k.free_task(tid);
                    k.current_group = 0;
                }
                Poll::Pending => {
                    trace::emit(|| {
                        Event::new(Layer::Executor, "task.block", EventKind::Point)
                            .field("task", tid)
                    });
                    let mut k = kernel.borrow_mut();
                    // The poll may itself have been the killer of its own
                    // group: only re-park the task if it wasn't killed.
                    if let Some(t) = k.task_mut(tid) {
                        t.fut = Some(fut);
                    }
                    k.current_group = 0;
                }
            }
        }

        if main_handle.is_finished() {
            break;
        }

        // Deliver the next batched event, if the current instant still
        // has undelivered ones. Every event is re-checked against its
        // cancel flag at fire time: a task woken earlier in the batch
        // may have cancelled an event whose body is already buffered.
        if let Some(ev) = batch.pop() {
            if ev.cancelled.as_ref().is_some_and(|c| c.get()) {
                drop(ev);
                continue;
            }
            match ev.action {
                EventAction::Wake(w) => {
                    kernel.borrow_mut().events_fired += 1;
                    w.wake();
                }
                EventAction::Call(f) => {
                    kernel.borrow_mut().events_fired += 1;
                    f();
                }
                // A superseded fair-share timer (stale seq) must not
                // count as fired: the unbatched executor would have
                // found its slot vacated and skipped it silently.
                EventAction::FsTimer(fs) => {
                    if crate::resource::fs_timer_fired(fs, ev.seq) {
                        kernel.borrow_mut().events_fired += 1;
                    }
                }
            }
            continue;
        }

        // Refill: advance virtual time to the next live event and drain
        // every event sharing that instant into the dispatch buffer in
        // one heap pass, skipping stale calendar entries (events
        // cancelled since they were pushed). Skipped bodies are dropped
        // outside the kernel borrow: their captures' destructors may
        // re-enter the kernel.
        {
            let mut k = kernel.borrow_mut();
            k.purge_stale_heap_entries();
            let mut batch_time: Option<SimTime> = None;
            while let Some(&Reverse((t, seq, slot))) = k.heap.peek() {
                if batch_time.is_some_and(|bt| t != bt) {
                    break;
                }
                k.heap.pop();
                let Some(ev) = k.free_event(slot, seq) else {
                    continue; // cancelled and already vacated
                };
                if ev.cancelled.as_ref().is_some_and(|c| c.get()) {
                    // Flagged but not vacated (cancel happened outside
                    // this kernel's ambient context).
                    skipped.push(ev);
                    continue;
                }
                if batch_time.is_none() {
                    batch_time = Some(t);
                    k.now = t;
                }
                batch.push(ev);
            }
            if batch.len() >= 2 {
                k.events_batched += batch.len() as u64;
            }
            // `pop()` must yield ascending seq order.
            batch.reverse();
        }
        skipped.clear();

        if batch.is_empty() {
            let k = kernel.borrow();
            let blocked = k.tasks.iter().flatten().filter(|t| t.fut.is_some()).count();
            panic!(
                "simulation deadlock at {}: main task incomplete, \
                 {blocked} task(s) blocked, no pending events",
                k.now
            );
        }
    }

    let stats = {
        let k = kernel.borrow();
        RunStats {
            end_time: k.now,
            events_fired: k.events_fired,
            tasks_spawned: k.tasks_spawned,
            events_batched: k.events_batched,
            heap_peak: k.heap_peak as u64,
            wakes_coalesced: k.wakes_coalesced.load(Ordering::Relaxed),
        }
    };
    // Mirror the run's calendar statistics into the ambient metrics
    // registry (no-ops without an installed trace sink), so trace
    // consumers see the executor counters next to the I/O ones.
    trace::counter("executor.events_fired", stats.events_fired);
    trace::counter("executor.tasks_spawned", stats.tasks_spawned);
    trace::counter("executor.events_batched", stats.events_batched);
    trace::counter("executor.heap_peak", stats.heap_peak);
    trace::counter("executor.wakes_coalesced", stats.wakes_coalesced);
    let out = {
        let mut st = main_handle.state.borrow_mut();
        st.result.take().expect("main task finished without result")
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_starts_at_zero_and_advances() {
        let (end, stats) = run_with_stats(async {
            assert_eq!(now(), SimTime::ZERO);
            sleep(SimDuration::from_secs(5)).await;
            assert_eq!(now().as_secs_f64(), 5.0);
            sleep(SimDuration::from_millis(250)).await;
            now()
        });
        assert_eq!(end.as_secs_f64(), 5.25);
        assert_eq!(stats.end_time, end);
        assert!(stats.events_fired >= 2);
    }

    #[test]
    fn spawn_and_join() {
        let v = run(async {
            let h1 = spawn(async {
                sleep(SimDuration::from_secs(2)).await;
                21u32
            });
            let h2 = spawn(async {
                sleep(SimDuration::from_secs(1)).await;
                21u32
            });
            h1.await + h2.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_completes_at_max_of_children() {
        let t = run(async {
            let h1 = spawn(async { sleep(SimDuration::from_secs(3)).await });
            let h2 = spawn(async { sleep(SimDuration::from_secs(7)).await });
            h1.await;
            h2.await;
            now()
        });
        assert_eq!(t.as_secs_f64(), 7.0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        run(async {
            sleep(SimDuration::ZERO).await;
            assert_eq!(now(), SimTime::ZERO);
        });
    }

    #[test]
    fn yield_now_preserves_time() {
        run(async {
            yield_now().await;
            assert_eq!(now(), SimTime::ZERO);
        });
    }

    #[test]
    fn scheduled_call_fires_and_cancel_works() {
        let fired = run(async {
            let fired = Rc::new(Cell::new(0u32));
            let f1 = Rc::clone(&fired);
            schedule_call(SimDuration::from_secs(1), move || {
                f1.set(f1.get() + 1);
            });
            let f2 = Rc::clone(&fired);
            let h = schedule_call(SimDuration::from_secs(2), move || {
                f2.set(f2.get() + 10);
            });
            h.cancel();
            sleep(SimDuration::from_secs(3)).await;
            fired.get()
        });
        assert_eq!(fired, 1);
    }

    #[test]
    fn events_fire_in_deterministic_fifo_order_at_same_time() {
        let order = run(async {
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10 {
                let o = Rc::clone(&order);
                spawn(async move {
                    sleep(SimDuration::from_secs(1)).await;
                    o.borrow_mut().push(i);
                });
            }
            sleep(SimDuration::from_secs(2)).await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn detached_tasks_are_dropped_at_main_exit() {
        run(async {
            spawn(async {
                sleep(SimDuration::from_secs(1_000_000)).await;
                unreachable!("detached task must not outlive main");
            });
            sleep(SimDuration::from_secs(1)).await;
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        run(async {
            // A future that never wakes.
            struct Never;
            impl Future for Never {
                type Output = ();
                fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                    Poll::Pending
                }
            }
            Never.await;
        });
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn primitives_panic_outside_run() {
        let _ = now();
    }

    #[test]
    fn kill_group_removes_whole_task_tree() {
        let (killed, touched) = run(async {
            let touched = Rc::new(Cell::new(0u32));
            let gid = new_group();
            let t = Rc::clone(&touched);
            spawn_in_group(gid, async move {
                assert_eq!(current_group(), gid);
                // A child spawned inside the group inherits it.
                let t2 = Rc::clone(&t);
                spawn(async move {
                    sleep(SimDuration::from_secs(10)).await;
                    t2.set(t2.get() + 1);
                });
                sleep(SimDuration::from_secs(10)).await;
                t.set(t.get() + 1);
            });
            // An ungrouped bystander keeps running.
            let t3 = Rc::clone(&touched);
            let bystander = spawn(async move {
                sleep(SimDuration::from_secs(2)).await;
                t3.set(t3.get() + 100);
            });
            sleep(SimDuration::from_secs(1)).await;
            let killed = kill_group(gid);
            bystander.await;
            sleep(SimDuration::from_secs(20)).await;
            (killed, touched.get())
        });
        assert_eq!(killed, 2, "parent and child must both die");
        assert_eq!(touched, 100, "only the bystander may run to completion");
    }

    #[test]
    fn killed_tasks_run_their_destructors() {
        struct Canary(Rc<Cell<bool>>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let dropped = run(async {
            let dropped = Rc::new(Cell::new(false));
            let gid = new_group();
            let d = Rc::clone(&dropped);
            spawn_in_group(gid, async move {
                let _c = Canary(d);
                sleep(SimDuration::from_secs(100)).await;
            });
            sleep(SimDuration::from_secs(1)).await;
            kill_group(gid);
            dropped.get()
        });
        assert!(dropped, "drop glue of a killed task must run at kill time");
    }

    #[test]
    fn stale_wakeups_of_killed_tasks_are_ignored() {
        run(async {
            let gid = new_group();
            spawn_in_group(gid, async {
                sleep(SimDuration::from_secs(5)).await;
                unreachable!("killed task must never resume");
            });
            sleep(SimDuration::from_secs(1)).await;
            assert_eq!(kill_group(gid), 1);
            // The pending sleep event for the dead task still fires at
            // t=5; the executor must skip it without incident.
            sleep(SimDuration::from_secs(10)).await;
        });
    }

    #[test]
    fn cancelled_far_future_event_is_vacated_immediately() {
        run(async {
            let h = schedule_call(SimDuration::from_secs(1_000_000), || {
                unreachable!("cancelled event must never fire")
            });
            assert_eq!(live_counts().events, 1);
            h.cancel();
            assert_eq!(
                live_counts().events,
                0,
                "cancel must drop the event body eagerly"
            );
            h.cancel(); // idempotent
            sleep(SimDuration::from_secs(1)).await;
        });
    }

    #[test]
    fn slot_reuse_preserves_cancel_and_reschedule_ordering() {
        // A (t=10) is cancelled, so B (t=5) reuses A's slot and C
        // (t=20) extends the slab. A's stale calendar entry must be
        // skipped without disturbing B or C, in time order.
        let order = run(async {
            let order = Rc::new(RefCell::new(Vec::new()));
            let o = Rc::clone(&order);
            let a = schedule_call(SimDuration::from_secs(10), move || o.borrow_mut().push("a"));
            a.cancel();
            let o = Rc::clone(&order);
            schedule_call(SimDuration::from_secs(5), move || o.borrow_mut().push("b"));
            let o = Rc::clone(&order);
            schedule_call(SimDuration::from_secs(20), move || o.borrow_mut().push("c"));
            sleep(SimDuration::from_secs(30)).await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec!["b", "c"]);
    }

    #[test]
    fn cancel_reschedule_cycle_does_not_accumulate_bodies() {
        // The long-fault-sweep pattern: a timeout armed and re-armed
        // thousands of times. Only the live body may be retained.
        run(async {
            let mut h = schedule_call(SimDuration::from_secs(100), || {});
            for _ in 0..10_000 {
                h.cancel();
                h = schedule_call(SimDuration::from_secs(100), || {});
            }
            assert_eq!(live_counts().events, 1);
            sleep(SimDuration::from_secs(200)).await;
            assert_eq!(live_counts().events, 0);
        });
    }

    #[test]
    fn completed_tasks_leave_no_kernel_residue() {
        run(async {
            let gid = new_group();
            for _ in 0..50 {
                spawn_in_group(gid, async {
                    sleep(SimDuration::from_secs(1)).await;
                });
            }
            sleep(SimDuration::from_secs(2)).await;
            let c = live_counts();
            assert_eq!(c.tasks, 0, "all children completed");
            assert_eq!(c.wakers, 1, "only the running main task remains");
            assert_eq!(c.grouped_tasks, 0, "group entries purged on completion");
        });
    }

    #[test]
    fn cancel_outside_run_only_flags() {
        let h = run(async { schedule_call(SimDuration::from_secs(1), || {}) });
        h.cancel();
        assert!(h.is_cancelled());
    }

    #[test]
    fn cancel_from_a_different_simulation_is_inert() {
        // The foreign handle's (slot, seq) coordinates collide with the
        // second simulation's first event; only the kernel id check
        // keeps the cancel from vacating the wrong body.
        let h = run(async { schedule_call(SimDuration::from_secs(5), || {}) });
        let fired = run(async move {
            let fired = Rc::new(Cell::new(false));
            let f = Rc::clone(&fired);
            let _mine = schedule_call(SimDuration::from_secs(5), move || f.set(true));
            h.cancel();
            sleep(SimDuration::from_secs(10)).await;
            fired.get()
        });
        assert!(fired, "a foreign cancel must not touch this kernel");
    }

    #[test]
    fn group_ids_are_unique_and_nonzero() {
        run(async {
            let a = new_group();
            let b = new_group();
            assert_ne!(a, 0);
            assert_ne!(a, b);
            assert_eq!(current_group(), 0);
        });
    }
}
