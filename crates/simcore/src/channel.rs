//! Unbounded multi-producer single-consumer channels between simulated tasks.
//!
//! Delivery is instantaneous in virtual time (the receiver becomes runnable
//! at the same instant the sender sends); any transport latency should be
//! modelled explicitly by the communication layer on top.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waiters: Vec<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of a channel. Cloneable.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Create an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_waiters: Vec::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value; wakes the receiver if it is waiting.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.state.borrow_mut();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        for w in st.recv_waiters.drain(..) {
            w.wake();
        }
        Ok(())
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.state.borrow().receiver_alive
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            for w in st.recv_waiters.drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Wait for the next value. Resolves to `None` once all senders are
    /// dropped and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.rx.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.recv_waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, sleep, spawn};
    use crate::time::SimDuration;

    #[test]
    fn values_flow_in_order() {
        let got = run(async {
            let (tx, mut rx) = channel();
            spawn(async move {
                for i in 0..5 {
                    sleep(SimDuration::from_secs(1)).await;
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        run(async {
            let (tx, mut rx) = channel::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv().await, Some(7));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        run(async {
            let (tx, rx) = channel::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert!(tx.is_closed());
        });
    }

    #[test]
    fn try_recv_and_len() {
        run(async {
            let (tx, mut rx) = channel();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Some(1));
            assert_eq!(rx.try_recv(), Some(2));
            assert_eq!(rx.try_recv(), None);
        });
    }
}
