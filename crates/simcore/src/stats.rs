//! Lightweight statistics collectors used by the models and the
//! experiment harness.

use std::fmt;

/// Streaming mean/variance/min/max using Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Self {
        Tally {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev / mean; 0 if mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another tally into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-memory quantile sketch over logarithmic buckets.
///
/// Values are bucketed by `log2` with `sub` sub-buckets per octave; this
/// bounds relative quantile error at ~`2^(1/sub) - 1` regardless of the
/// number of observations, which is plenty for latency histograms.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    sub: u32,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    floor: f64,
}

impl LogHistogram {
    /// `floor` is the smallest distinguishable value; anything below it
    /// lands in the underflow bucket. `sub` sub-buckets per power of two.
    pub fn new(floor: f64, sub: u32) -> Self {
        assert!(floor > 0.0 && sub > 0);
        LogHistogram {
            sub,
            counts: vec![0; (64 * sub) as usize],
            underflow: 0,
            total: 0,
            floor,
        }
    }

    fn bucket(&self, x: f64) -> Option<usize> {
        if x < self.floor {
            return None;
        }
        let b = ((x / self.floor).log2() * self.sub as f64).floor() as usize;
        Some(b.min(self.counts.len() - 1))
    }

    fn bucket_value(&self, b: usize) -> f64 {
        // Geometric midpoint of the bucket.
        self.floor * 2f64.powf((b as f64 + 0.5) / self.sub as f64)
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        match self.bucket(x) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (`0.0..=1.0`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return self.floor;
        }
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_value(b);
            }
        }
        self.bucket_value(self.counts.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.push(x);
        }
        assert_eq!(t.count(), 8);
        assert_eq!(t.mean(), 5.0);
        assert_eq!(t.variance(), 4.0);
        assert_eq!(t.std_dev(), 2.0);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.sum(), 40.0);
        assert_eq!(t.cv(), 0.4);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn tally_empty_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.cv(), 0.0);
        let mut a = Tally::new();
        a.merge(&t);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = LogHistogram::new(1e-6, 8);
        for i in 1..=10_000 {
            h.push(i as f64 * 1e-3);
        }
        let med = h.quantile(0.5);
        assert!((med - 5.0).abs() / 5.0 < 0.1, "median={med}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 9.9).abs() / 9.9 < 0.1, "p99={p99}");
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(1.0) >= p99);
    }

    #[test]
    fn histogram_underflow() {
        let mut h = LogHistogram::new(1.0, 4);
        h.push(0.001);
        h.push(0.002);
        h.push(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.3), 1.0); // underflow reported as floor
    }

    #[test]
    fn histogram_empty() {
        let h = LogHistogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
