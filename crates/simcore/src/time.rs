//! Virtual time for the simulation.
//!
//! Time is kept as integer nanoseconds ([`SimTime`]) so that event ordering
//! is exact and runs are bit-for-bit reproducible. Durations are a separate
//! type ([`SimDuration`]) to keep instant/duration arithmetic honest.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant as fractional seconds (lossy for very large values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since an earlier instant. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or NaN inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN must clamp too, so compare via `is_sign_*`-free total check.
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Compute the time to move `bytes` at `bytes_per_sec`, rounded up to a
/// whole nanosecond so a nonzero transfer never takes zero time.
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    assert!(
        bytes_per_sec > 0.0,
        "transfer_time requires positive bandwidth, got {bytes_per_sec}"
    );
    let secs = bytes as f64 / bytes_per_sec;
    let ns = (secs * 1e9).ceil();
    SimDuration::from_nanos(if ns < 1.0 { 1 } else { ns as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 3_500_000_000);
        assert_eq!(t.since(SimTime::ZERO).as_secs_f64(), 3.5);
        assert_eq!(t.since(t + SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn transfer_time_is_positive_for_nonzero_bytes() {
        assert_eq!(transfer_time(0, 1e9), SimDuration::ZERO);
        assert_eq!(transfer_time(1, 1e12).as_nanos(), 1);
        // 1 MiB at 1 GiB/s = ~976.5 us
        let t = transfer_time(1 << 20, (1u64 << 30) as f64);
        assert!((t.as_secs_f64() - 0.0009765625).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_saturation() {
        assert!(SimTime::from_nanos(5) > SimTime::ZERO);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_micros(10) * 3;
        assert_eq!(d.as_nanos(), 30_000);
        assert_eq!((d / 3).as_nanos(), 10_000);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 15_000);
    }
}
