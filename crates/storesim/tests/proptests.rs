//! Property tests for the synthetic-data model: payload slicing,
//! source advancement and extent-map algebra are the foundations the
//! whole correctness oracle rests on.

use proptest::prelude::*;

use e10_storesim::{gen_byte, ExtentMap, Payload, Source};

proptest! {
    /// Slicing a payload commutes with materialisation.
    #[test]
    fn payload_slice_commutes_with_materialize(
        seed in 0u64..50,
        origin in 0u64..10_000,
        len in 1u64..400,
        cut in 0u64..400,
        take in 0u64..400,
    ) {
        let cut = cut.min(len);
        let take = take.min(len - cut);
        let p = Payload::gen(seed, origin, len);
        let whole = p.materialize();
        let piece = p.slice(cut, take);
        prop_assert_eq!(
            piece.materialize(),
            whole[cut as usize..(cut + take) as usize].to_vec()
        );
    }

    /// advance(a).advance(b) == advance(a + b), for all source kinds.
    #[test]
    fn source_advance_is_additive(
        a in 0u64..1000,
        b in 0u64..1000,
        probe in 0u64..100,
        seed in 0u64..10,
    ) {
        let sources = [
            Source::Zero,
            Source::gen_at(seed, 12345),
            Source::literal(vec![7u8; 2200]),
        ];
        for s in sources {
            let two_step = s.advance(a).advance(b);
            let one_step = s.advance(a + b);
            prop_assert_eq!(two_step.byte_at(probe), one_step.byte_at(probe));
        }
    }

    /// Splitting one insert into arbitrary consecutive sub-inserts
    /// yields the same map contents.
    #[test]
    fn split_inserts_equal_single_insert(
        start in 0u64..5000,
        len in 1u64..2000,
        splits in prop::collection::vec(1u64..500, 0..6),
        seed in 0u64..20,
    ) {
        let mut one = ExtentMap::new();
        one.insert(start, len, Source::gen_at(seed, start));

        let mut many = ExtentMap::new();
        let mut pos = start;
        let end = start + len;
        for s in splits {
            if pos >= end { break; }
            let take = s.min(end - pos);
            many.insert(pos, take, Source::gen_at(seed, pos));
            pos += take;
        }
        if pos < end {
            many.insert(pos, end - pos, Source::gen_at(seed, pos));
        }
        // Same coverage, same bytes, and fully merged back to one extent.
        prop_assert_eq!(many.covered_bytes(), one.covered_bytes());
        prop_assert_eq!(many.extent_count(), 1);
        for probe in [start, start + len / 2, start + len - 1] {
            prop_assert_eq!(many.byte_at(probe), one.byte_at(probe));
        }
        prop_assert!(many.verify_gen(seed, start, len).is_ok());
    }

    /// Insert order of non-overlapping extents does not matter.
    #[test]
    fn insert_order_irrelevant_for_disjoint_extents(
        lens in prop::collection::vec(1u64..200, 1..12),
        order_seed in 0u64..1000,
    ) {
        // Build disjoint extents with 1-byte gaps.
        let mut extents = Vec::new();
        let mut pos = 0;
        for (i, &l) in lens.iter().enumerate() {
            extents.push((pos, l, i as u64));
            pos += l + 1;
        }
        let mut sorted = ExtentMap::new();
        for &(o, l, s) in &extents {
            sorted.insert(o, l, Source::gen_at(s, o));
        }
        // Pseudo-shuffle.
        let mut shuffled = extents.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((order_seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) % n as u64) as usize;
            shuffled.swap(i, j);
        }
        let mut other = ExtentMap::new();
        for &(o, l, s) in &shuffled {
            other.insert(o, l, Source::gen_at(s, o));
        }
        prop_assert_eq!(sorted.extent_count(), other.extent_count());
        prop_assert_eq!(sorted.covered_bytes(), other.covered_bytes());
        for &(o, l, _) in &extents {
            for probe in [o, o + l - 1] {
                prop_assert_eq!(sorted.byte_at(probe), other.byte_at(probe));
            }
            prop_assert_eq!(sorted.byte_at(o + l), None);
        }
    }

    /// lookup() pieces always tile the queried range exactly.
    #[test]
    fn lookup_tiles_range(
        writes in prop::collection::vec((0u64..3000, 1u64..500), 0..15),
        q_start in 0u64..3500,
        q_len in 1u64..800,
    ) {
        let mut m = ExtentMap::new();
        for (o, l) in writes {
            m.insert(o, l, Source::gen_at(1, o));
        }
        let pieces = m.lookup(q_start, q_len);
        let mut pos = q_start;
        for (r, _) in &pieces {
            prop_assert_eq!(r.start, pos);
            prop_assert!(r.end > r.start);
            pos = r.end;
        }
        prop_assert_eq!(pos, q_start + q_len);
        // covered_bytes_in agrees with the tiling.
        let covered: u64 = pieces
            .iter()
            .filter(|(_, s)| s.is_some())
            .map(|(r, _)| r.end - r.start)
            .sum();
        prop_assert_eq!(m.covered_bytes_in(q_start, q_len), covered);
    }

    /// gen_byte depends on every bit of the index (sanity: two nearby
    /// indices rarely collide over a window).
    #[test]
    fn gen_stream_not_degenerate(seed in 0u64..1000, base in 0u64..1_000_000) {
        let window: Vec<u8> = (0..256).map(|i| gen_byte(seed, base + i)).collect();
        let distinct = window.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert!(distinct > 64, "only {distinct} distinct bytes in 256");
    }
}
