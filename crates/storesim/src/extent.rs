//! Extent maps: the contents of a simulated file.
//!
//! A file is a set of non-overlapping, sorted extents, each describing
//! its bytes via a [`Source`]. Writes overwrite (later writes win, POSIX
//! style), splitting whatever they overlap; reads return the covered
//! pieces and the holes. Adjacent extents whose sources continue each
//! other are merged, which keeps maps small even after a two-phase run
//! writes a 32 GB file in millions of pieces.

use crate::pattern::{splitmix64, Source};
use std::collections::BTreeMap;
use std::ops::Range;

/// Fold `v` into the running digest `h`.
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Structural digest of an ordered piece tiling (as returned by
/// [`ExtentMap::lookup`]), relative to `base`.
///
/// The digest covers the *content identity* of the range: piece
/// boundaries plus, per piece, the source descriptor (`Zero`, `Gen`
/// seed/origin) or — for literals — the actual bytes. Two maps built by
/// the same insert sequence produce the same canonical tiling and hence
/// the same digest; any descriptor mutation (a flipped bit stored as a
/// literal patch, a torn sector stored as zeroes, a hole) changes it.
/// O(#pieces) except for literal pieces, which hash their bytes.
pub fn pieces_digest(base: u64, pieces: &[(Range<u64>, Option<Source>)]) -> u64 {
    let mut h: u64 = 0xE10D_16E5_7C4E_C551;
    for (r, src) in pieces {
        h = mix(h, r.start - base);
        h = mix(h, r.end - r.start);
        match src {
            None => h = mix(h, 0),
            Some(Source::Zero) => h = mix(h, 1),
            Some(Source::Gen { seed, origin }) => {
                h = mix(h, 2);
                h = mix(h, *seed);
                h = mix(h, *origin);
            }
            Some(lit @ Source::Literal { .. }) => {
                h = mix(h, 3);
                for i in 0..(r.end - r.start) {
                    h = mix(h, lit.byte_at(i) as u64);
                }
            }
        }
    }
    h
}

/// An extent map storing `(range → Source)` with overwrite semantics.
#[derive(Clone, Debug, Default)]
pub struct ExtentMap {
    /// start → (end, source)
    map: BTreeMap<u64, (u64, Source)>,
}

/// Error from [`ExtentMap::verify_gen`], describing the first mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A byte range with no data.
    Hole(Range<u64>),
    /// A byte range whose content does not come from the expected
    /// generator stream at the identity position.
    WrongContent {
        /// The mismatching range.
        range: Range<u64>,
        /// What was found there.
        found: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Hole(r) => write!(f, "hole at [{}, {})", r.start, r.end),
            VerifyError::WrongContent { range, found } => {
                write!(
                    f,
                    "wrong content at [{}, {}): {found}",
                    range.start, range.end
                )
            }
        }
    }
}

impl ExtentMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored extents.
    pub fn extent_count(&self) -> usize {
        self.map.len()
    }

    /// One past the last written byte (0 if empty).
    pub fn high_water(&self) -> u64 {
        self.map
            .iter()
            .next_back()
            .map(|(_, (e, _))| *e)
            .unwrap_or(0)
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.map.iter().map(|(s, (e, _))| e - s).sum()
    }

    /// Bytes of `[start, start + len)` that are covered.
    pub fn covered_bytes_in(&self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = start + len;
        let mut covered = 0;
        if let Some((&s, &(e, _))) = self.map.range(..=start).next_back() {
            if e > start && s < start {
                covered += e.min(end) - start;
            }
        }
        for (&s, &(e, _)) in self.map.range(start..end) {
            covered += e.min(end) - s;
        }
        covered
    }

    /// Write `src` over `[start, start + len)`.
    pub fn insert(&mut self, start: u64, len: u64, src: Source) {
        if len == 0 {
            return;
        }
        let end = start + len;
        // Remove every extent overlapping [start, end), one re-seek at
        // a time (no scratch list — the hot write path must not
        // allocate). A split-off left remainder ends at `start` and a
        // right remainder begins at `end`, so neither is found again.
        loop {
            let mut hit = None;
            // The first candidate may begin before `start`.
            if let Some((&s, &(e, _))) = self.map.range(..=start).next_back() {
                if e > start {
                    hit = Some(s);
                }
            }
            if hit.is_none() {
                hit = self.map.range(start..end).next().map(|(&s, _)| s);
            }
            let Some(s) = hit else { break };
            let (e, old) = self.map.remove(&s).expect("extent vanished");
            if s < start {
                // Left remainder keeps its prefix.
                self.map.insert(s, (start, old.clone()));
            }
            if e > end {
                // Right remainder keeps its suffix, with the source
                // advanced past the overwritten middle.
                self.map.insert(end, (e, old.advance(end - s)));
            }
        }
        self.map.insert(start, (end, src));
        self.coalesce_around(start, end);
    }

    /// Merge `start`'s extent with compatible neighbours.
    fn coalesce_around(&mut self, start: u64, end: u64) {
        // Try merging with the predecessor.
        let mut start = start;
        if let Some((&ps, &(pe, _))) = self.map.range(..start).next_back() {
            if pe == start {
                let (_, psrc) = self.map.get(&ps).unwrap().clone();
                let (ce, csrc) = self.map.get(&start).unwrap().clone();
                if psrc.continues(start - ps, &csrc) {
                    self.map.remove(&start);
                    self.map.insert(ps, (ce, psrc));
                    start = ps;
                }
            }
        }
        // Try merging with the successor.
        if let Some((&ns, &(ne, _))) = self.map.range(end..).next() {
            if ns == end {
                let (ce, csrc) = self.map.get(&start).unwrap().clone();
                debug_assert_eq!(ce, end);
                let (_, nsrc) = self.map.get(&ns).unwrap().clone();
                if csrc.continues(end - start, &nsrc) {
                    self.map.remove(&ns);
                    self.map.insert(start, (ne, csrc));
                }
            }
        }
    }

    /// Remove coverage of `[start, start + len)` (hole punching),
    /// trimming any extents that straddle the boundary.
    pub fn remove(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        // Remove overlapped extents one at a time: re-seek after each
        // removal instead of collecting the touched keys first, so the
        // common punch (one whole extent) allocates nothing.
        loop {
            let mut hit = None;
            if let Some((&s, &(e, _))) = self.map.range(..=start).next_back() {
                if e > start {
                    hit = Some(s);
                }
            }
            if hit.is_none() {
                hit = self.map.range(start..end).next().map(|(&s, _)| s);
            }
            let Some(s) = hit else { break };
            let (e, old) = self.map.remove(&s).expect("extent vanished");
            if s < start {
                self.map.insert(s, (start, old.clone()));
            }
            if e > end {
                self.map.insert(end, (e, old.advance(end - s)));
            }
        }
    }

    /// Read `[start, start + len)`: returns consecutive pieces, `None`
    /// source for holes. Pieces are returned in order and exactly tile
    /// the requested range.
    pub fn lookup(&self, start: u64, len: u64) -> Vec<(Range<u64>, Option<Source>)> {
        let mut out = Vec::new();
        self.lookup_into(start, len, &mut out);
        out
    }

    /// [`Self::lookup`], appending into a caller-provided buffer
    /// (allocation-free once the buffer reached its high-water mark).
    pub fn lookup_into(&self, start: u64, len: u64, out: &mut Vec<(Range<u64>, Option<Source>)>) {
        let end = start + len;
        if len == 0 {
            return;
        }
        let mut pos = start;
        let mut clip = |s: u64, e: u64, src: &Source, pos: &mut u64| {
            let cs = s.max(start);
            let ce = e.min(end);
            if cs > *pos {
                out.push((*pos..cs, None));
            }
            out.push((cs..ce, Some(src.advance(cs - s))));
            *pos = ce;
        };
        // Candidate extents: the one possibly straddling `start`, plus
        // everything beginning inside the range (skipping the straddler
        // if it begins exactly at `start`).
        let mut straddler = None;
        if let Some((&s, &(e, _))) = self.map.range(..=start).next_back() {
            if e > start {
                let (_, src) = self.map.get(&s).unwrap();
                clip(s, e, src, &mut pos);
                straddler = Some(s);
            }
        }
        for (&s, &(e, _)) in self.map.range(start..end) {
            if straddler != Some(s) {
                let (_, src) = self.map.get(&s).unwrap();
                clip(s, e, src, &mut pos);
            }
        }
        if pos < end {
            out.push((pos..end, None));
        }
    }

    /// True if every byte of `[start, start + len)` is covered.
    pub fn covered(&self, start: u64, len: u64) -> bool {
        self.lookup(start, len).iter().all(|(_, s)| s.is_some())
    }

    /// The uncovered sub-ranges of `[start, start + len)`.
    pub fn holes(&self, start: u64, len: u64) -> Vec<Range<u64>> {
        self.lookup(start, len)
            .into_iter()
            .filter_map(|(r, s)| if s.is_none() { Some(r) } else { None })
            .collect()
    }

    /// The first uncovered sub-range of `[start, end)` at or after
    /// `start`, without allocating. Callers that fill holes one at a
    /// time loop on this (each fill moves `start` past the hole).
    pub fn next_hole(&self, start: u64, end: u64) -> Option<Range<u64>> {
        let mut pos = start;
        if pos >= end {
            return None;
        }
        // Skip a straddling extent.
        if let Some((&s, &(e, _))) = self.map.range(..=pos).next_back() {
            if e > pos && s <= pos {
                pos = e;
            }
        }
        if pos >= end {
            return None;
        }
        // Walk covered extents until a gap appears.
        for (&s, &(e, _)) in self.map.range(pos..end) {
            if s > pos {
                return Some(pos..s.min(end));
            }
            pos = e;
        }
        if pos < end {
            Some(pos..end)
        } else {
            None
        }
    }

    /// The byte at `pos`, if covered.
    pub fn byte_at(&self, pos: u64) -> Option<u8> {
        if let Some((&s, &(e, _))) = self.map.range(..=pos).next_back() {
            if pos < e {
                let (_, src) = self.map.get(&s).unwrap();
                return Some(src.byte_at(pos - s));
            }
        }
        None
    }

    /// Materialise `[start, start+len)`; holes read as zero (test sizes
    /// only).
    pub fn materialize(&self, start: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        for (r, src) in self.lookup(start, len) {
            if let Some(src) = src {
                for (i, p) in (r.start..r.end).enumerate() {
                    out[(p - start) as usize] = src.byte_at(i as u64);
                }
            }
        }
        out
    }

    /// Verify that `[start, start + len)` is fully covered by generator
    /// `seed` at the *identity* mapping (file position `p` holds
    /// `gen_byte(seed, p)`). This is the end-to-end correctness oracle
    /// for the whole collective-write pipeline.
    pub fn verify_gen(&self, seed: u64, start: u64, len: u64) -> Result<(), VerifyError> {
        for (r, src) in self.lookup(start, len) {
            match src {
                None => return Err(VerifyError::Hole(r)),
                Some(Source::Gen { seed: s, origin }) if s == seed && origin == r.start => {}
                Some(other) => {
                    return Err(VerifyError::WrongContent {
                        range: r,
                        found: format!("{other:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Iterate over `(start, end, source)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &Source)> {
        self.map.iter().map(|(&s, (e, src))| (s, *e, src))
    }

    /// Structural digest of `[start, start + len)` — see
    /// [`pieces_digest`]. The digest is relative to `start`, so the
    /// same content at a different absolute offset digests the same
    /// only if its sources translate accordingly.
    pub fn digest(&self, start: u64, len: u64) -> u64 {
        pieces_digest(start, &self.lookup(start, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Payload;

    #[test]
    fn insert_and_lookup_roundtrip() {
        let mut m = ExtentMap::new();
        m.insert(10, 5, Source::gen_at(1, 10));
        assert_eq!(m.extent_count(), 1);
        assert!(m.covered(10, 5));
        assert!(!m.covered(9, 5));
        assert_eq!(m.holes(0, 20), vec![0..10, 15..20]);
        assert_eq!(m.high_water(), 15);
        assert_eq!(m.covered_bytes(), 5);
    }

    #[test]
    fn overwrite_splits_and_wins() {
        let mut m = ExtentMap::new();
        m.insert(0, 100, Source::gen_at(1, 0));
        m.insert(40, 20, Source::gen_at(2, 0));
        let pieces = m.lookup(0, 100);
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].0, 0..40);
        assert_eq!(pieces[1].0, 40..60);
        assert_eq!(pieces[2].0, 60..100);
        // The suffix must continue the original stream: byte at 60 is
        // gen(1, 60).
        assert_eq!(m.byte_at(60), Some(crate::pattern::gen_byte(1, 60)));
        assert_eq!(m.byte_at(45), Some(crate::pattern::gen_byte(2, 5)));
    }

    #[test]
    fn overwrite_spanning_multiple_extents() {
        let mut m = ExtentMap::new();
        m.insert(0, 10, Source::gen_at(1, 0));
        m.insert(20, 10, Source::gen_at(2, 0));
        m.insert(40, 10, Source::gen_at(3, 0));
        m.insert(5, 40, Source::Zero); // covers tail of 1st, all 2nd, head of 3rd
        assert_eq!(m.byte_at(4), Some(crate::pattern::gen_byte(1, 4)));
        assert_eq!(m.byte_at(5), Some(0));
        assert_eq!(m.byte_at(44), Some(0));
        assert_eq!(m.byte_at(45), Some(crate::pattern::gen_byte(3, 5)));
        // The zero write filled every former hole in [0, 50).
        assert!(m.holes(0, 50).is_empty());
    }

    #[test]
    fn adjacent_gen_extents_merge() {
        let mut m = ExtentMap::new();
        for i in 0..100u64 {
            m.insert(i * 8, 8, Source::gen_at(7, i * 8));
        }
        assert_eq!(m.extent_count(), 1);
        assert!(m.verify_gen(7, 0, 800).is_ok());
    }

    #[test]
    fn out_of_order_writes_still_merge() {
        let mut m = ExtentMap::new();
        let order = [3u64, 0, 2, 1, 5, 4];
        for &i in &order {
            m.insert(i * 10, 10, Source::gen_at(9, i * 10));
        }
        assert_eq!(m.extent_count(), 1);
        assert!(m.verify_gen(9, 0, 60).is_ok());
    }

    #[test]
    fn non_continuing_extents_do_not_merge() {
        let mut m = ExtentMap::new();
        m.insert(0, 8, Source::gen_at(7, 0));
        m.insert(8, 8, Source::gen_at(7, 100)); // wrong origin
        assert_eq!(m.extent_count(), 2);
        assert!(m.verify_gen(7, 0, 16).is_err());
    }

    #[test]
    fn verify_gen_reports_holes_and_wrong_content() {
        let mut m = ExtentMap::new();
        m.insert(0, 10, Source::gen_at(1, 0));
        m.insert(20, 10, Source::gen_at(1, 20));
        match m.verify_gen(1, 0, 30) {
            Err(VerifyError::Hole(r)) => assert_eq!(r, 10..20),
            other => panic!("expected hole, got {other:?}"),
        }
        m.insert(10, 10, Source::gen_at(2, 10));
        match m.verify_gen(1, 0, 30) {
            Err(VerifyError::WrongContent { range, .. }) => assert_eq!(range, 10..20),
            other => panic!("expected wrong content, got {other:?}"),
        }
    }

    #[test]
    fn materialize_matches_payload_semantics() {
        let mut m = ExtentMap::new();
        let p = Payload::gen(4, 0, 32);
        m.insert(0, 16, p.slice(0, 16).src);
        m.insert(16, 16, p.slice(16, 16).src);
        assert_eq!(m.materialize(0, 32), p.materialize());
    }

    #[test]
    fn zero_len_operations_are_noops() {
        let mut m = ExtentMap::new();
        m.insert(5, 0, Source::Zero);
        assert_eq!(m.extent_count(), 0);
        assert!(m.lookup(5, 0).is_empty());
        assert!(m.covered(5, 0));
        assert!(m.verify_gen(1, 5, 0).is_ok());
    }

    #[test]
    fn exact_overwrite_replaces() {
        let mut m = ExtentMap::new();
        m.insert(0, 10, Source::gen_at(1, 0));
        m.insert(0, 10, Source::gen_at(2, 0));
        assert_eq!(m.extent_count(), 1);
        assert_eq!(m.byte_at(3), Some(crate::pattern::gen_byte(2, 3)));
    }

    #[test]
    fn digest_agrees_for_identical_insert_sequences() {
        let mut a = ExtentMap::new();
        let mut b = ExtentMap::new();
        for m in [&mut a, &mut b] {
            m.insert(0, 64, Source::gen_at(3, 0));
            m.insert(16, 8, Source::Zero);
            m.insert(40, 4, Source::literal(vec![1u8, 2, 3, 4]));
        }
        assert_eq!(a.digest(0, 64), b.digest(0, 64));
        assert_eq!(a.digest(8, 32), b.digest(8, 32));
    }

    #[test]
    fn digest_detects_bit_flip_and_torn_sector() {
        let mut clean = ExtentMap::new();
        clean.insert(0, 128, Source::gen_at(5, 0));
        let base = clean.digest(0, 128);
        // Bit flip: one byte replaced by a literal patch.
        let mut flipped = clean.clone();
        let b = flipped.byte_at(77).unwrap();
        flipped.insert(77, 1, Source::literal(vec![b ^ 0x10]));
        assert_ne!(flipped.digest(0, 128), base);
        // Torn sector: a run zeroed out.
        let mut torn = clean.clone();
        torn.insert(64, 32, Source::Zero);
        assert_ne!(torn.digest(0, 128), base);
        // A hole differs from zeroes.
        let mut holed = clean.clone();
        holed.remove(64, 32);
        assert_ne!(holed.digest(0, 128), torn.digest(0, 128));
    }

    #[test]
    fn digest_of_subrange_ignores_outside_content() {
        let mut a = ExtentMap::new();
        a.insert(100, 50, Source::gen_at(9, 100));
        let d = a.digest(100, 50);
        a.insert(0, 50, Source::Zero);
        a.insert(200, 10, Source::gen_at(1, 0));
        assert_eq!(a.digest(100, 50), d);
    }

    #[test]
    fn literal_digest_hashes_content_not_identity() {
        let mut a = ExtentMap::new();
        let mut b = ExtentMap::new();
        a.insert(0, 4, Source::literal(vec![9u8, 8, 7, 6]));
        // Same bytes, different backing allocation and offset.
        b.insert(0, 4, Source::literal(vec![0u8, 9, 8, 7, 6]).advance(1));
        assert_eq!(a.digest(0, 4), b.digest(0, 4));
        let mut c = ExtentMap::new();
        c.insert(0, 4, Source::literal(vec![9u8, 8, 7, 5]));
        assert_ne!(c.digest(0, 4), a.digest(0, 4));
    }
}
