//! Synthetic data payloads.
//!
//! Moving real gigabytes through the simulator would be pointless and
//! slow; instead, buffers carry a *source descriptor* that names every
//! byte they logically contain. A [`Source`] can be:
//!
//! * [`Source::Gen`] — a deterministic pseudo-random byte stream
//!   `g(seed, index)`. A whole 32 GB benchmark file is "seed 7, bytes
//!   0..32G", and any piece of it is the same seed with a shifted origin.
//! * [`Source::Literal`] — real bytes, for small byte-exact tests.
//! * [`Source::Zero`] — zero fill (e.g. `fallocate` fallback).
//!
//! Because every split/merge performed by the two-phase I/O machinery
//! must keep the origin arithmetic consistent, verifying the final file
//! extent map against the expected generator catches any offset
//! mis-bookkeeping at full benchmark scale with O(#extents) memory.

use crate::bytes::Bytes;
use std::fmt;

/// Cheap deterministic byte generator: 8 bytes per SplitMix64 hash.
pub fn gen_byte(seed: u64, index: u64) -> u8 {
    let word = splitmix64(seed ^ (index >> 3).wrapping_mul(0x9E3779B97F4A7C15));
    (word >> ((index & 7) * 8)) as u8
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Describes the bytes stored in some contiguous region.
///
/// The region's byte at *relative* position `r` (0-based from the start
/// of the region) is defined by the source:
///
/// * `Zero` → `0`
/// * `Gen { seed, origin }` → `gen_byte(seed, origin + r)`
/// * `Literal { data, offset }` → `data[offset + r]`
#[derive(Clone, PartialEq, Eq)]
pub enum Source {
    /// All zeroes.
    Zero,
    /// Pseudo-random stream `gen_byte(seed, origin + r)`.
    Gen {
        /// Stream identity (typically one per benchmark file).
        seed: u64,
        /// Index of the first byte of this region within the stream.
        origin: u64,
    },
    /// Real bytes starting at `data[offset]`.
    Literal {
        /// Backing bytes (cheaply cloneable).
        data: Bytes,
        /// Starting index within `data`.
        offset: usize,
    },
}

impl Source {
    /// Source for the identity-mapped generator: file position `p`
    /// holds `gen_byte(seed, p)` when the region starts at `p`.
    pub fn gen_at(seed: u64, origin: u64) -> Source {
        Source::Gen { seed, origin }
    }

    /// Wrap literal bytes.
    pub fn literal(data: impl Into<Bytes>) -> Source {
        Source::Literal {
            data: data.into(),
            offset: 0,
        }
    }

    /// The byte at relative position `r`.
    pub fn byte_at(&self, r: u64) -> u8 {
        match self {
            Source::Zero => 0,
            Source::Gen { seed, origin } => gen_byte(*seed, origin + r),
            Source::Literal { data, offset } => data[*offset + r as usize],
        }
    }

    /// The same source advanced by `delta` bytes (used when an extent
    /// is split and the right half keeps its content).
    pub fn advance(&self, delta: u64) -> Source {
        match self {
            Source::Zero => Source::Zero,
            Source::Gen { seed, origin } => Source::Gen {
                seed: *seed,
                origin: origin + delta,
            },
            Source::Literal { data, offset } => Source::Literal {
                data: data.clone(),
                offset: offset + delta as usize,
            },
        }
    }

    /// True if `other` placed immediately after `len` bytes of `self`
    /// continues the same stream (so the extents can merge).
    pub fn continues(&self, len: u64, other: &Source) -> bool {
        match (self, other) {
            (Source::Zero, Source::Zero) => true,
            (
                Source::Gen {
                    seed: s1,
                    origin: o1,
                },
                Source::Gen {
                    seed: s2,
                    origin: o2,
                },
            ) => s1 == s2 && o1 + len == *o2,
            _ => false,
        }
    }

    /// Materialise `len` bytes (test sizes only).
    pub fn materialize(&self, len: u64) -> Vec<u8> {
        (0..len).map(|r| self.byte_at(r)).collect()
    }
}

impl fmt::Debug for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Zero => write!(f, "Zero"),
            Source::Gen { seed, origin } => write!(f, "Gen(seed={seed}, origin={origin})"),
            Source::Literal { data, offset } => {
                write!(f, "Literal(len={}, offset={offset})", data.len())
            }
        }
    }
}

/// A sized piece of data: `len` bytes described by `src`.
///
/// This is what actually travels through MPI messages and I/O requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Content descriptor.
    pub src: Source,
    /// Number of bytes.
    pub len: u64,
}

impl Payload {
    /// A payload of generator bytes `gen_byte(seed, origin..origin+len)`.
    pub fn gen(seed: u64, origin: u64, len: u64) -> Payload {
        Payload {
            src: Source::gen_at(seed, origin),
            len,
        }
    }

    /// A payload of literal bytes.
    pub fn literal(data: impl Into<Bytes>) -> Payload {
        let data = data.into();
        let len = data.len() as u64;
        Payload {
            src: Source::literal(data),
            len,
        }
    }

    /// A zero payload.
    pub fn zero(len: u64) -> Payload {
        Payload {
            src: Source::Zero,
            len,
        }
    }

    /// Sub-range `[from, from + len)` of this payload.
    pub fn slice(&self, from: u64, len: u64) -> Payload {
        assert!(
            from + len <= self.len,
            "slice {from}+{len} out of payload of {}",
            self.len
        );
        Payload {
            src: self.src.advance(from),
            len,
        }
    }

    /// Materialise the bytes (test sizes only).
    pub fn materialize(&self) -> Vec<u8> {
        self.src.materialize(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_byte_is_deterministic_and_varied() {
        let a: Vec<u8> = (0..64).map(|i| gen_byte(1, i)).collect();
        let b: Vec<u8> = (0..64).map(|i| gen_byte(1, i)).collect();
        assert_eq!(a, b);
        let c: Vec<u8> = (0..64).map(|i| gen_byte(2, i)).collect();
        assert_ne!(a, c);
        // Not constant.
        assert!(a.iter().any(|&x| x != a[0]));
    }

    #[test]
    fn advance_preserves_content() {
        let s = Source::gen_at(9, 100);
        let adv = s.advance(7);
        for r in 0..32 {
            assert_eq!(s.byte_at(7 + r), adv.byte_at(r));
        }
    }

    #[test]
    fn literal_advance_and_bytes() {
        let s = Source::literal(vec![10u8, 11, 12, 13]);
        assert_eq!(s.byte_at(0), 10);
        let adv = s.advance(2);
        assert_eq!(adv.byte_at(0), 12);
        assert_eq!(adv.byte_at(1), 13);
    }

    #[test]
    fn continues_detects_seams() {
        let a = Source::gen_at(5, 0);
        assert!(a.continues(16, &Source::gen_at(5, 16)));
        assert!(!a.continues(16, &Source::gen_at(5, 17)));
        assert!(!a.continues(16, &Source::gen_at(6, 16)));
        assert!(Source::Zero.continues(3, &Source::Zero));
        assert!(!Source::Zero.continues(3, &a));
    }

    #[test]
    fn payload_slicing_matches_materialized_bytes() {
        let p = Payload::gen(3, 1000, 64);
        let whole = p.materialize();
        let piece = p.slice(10, 20);
        assert_eq!(piece.materialize(), whole[10..30].to_vec());
    }

    #[test]
    #[should_panic(expected = "out of payload")]
    fn slice_out_of_range_panics() {
        Payload::zero(4).slice(2, 3);
    }

    #[test]
    fn zero_payload() {
        assert_eq!(Payload::zero(3).materialize(), vec![0, 0, 0]);
    }
}
