//! Byte-addressable persistent-memory device model (Optane-class NVM
//! on the node's memory bus or an NVMe-attached byte-addressable DIMM).
//!
//! Three properties distinguish it from the block SSD model:
//!
//! * **latency asymmetry** — reads complete in hundreds of nanoseconds
//!   while writes pay the media's persist cost (about a microsecond),
//!   so the model carries independent `read_latency` / `write_latency`;
//! * **byte granularity** — commands are served at their exact byte
//!   length with no block rounding, which is what makes a byte-granular
//!   cache front-end (small strided writes going straight to the
//!   device) worthwhile;
//! * **internal concurrency** — the media is organised as N independent
//!   channels, each a fair-share bandwidth server of `bw / N`. A single
//!   stream sees one channel's bandwidth; N concurrent streams see the
//!   full device. Commands pick channels round-robin in issue order,
//!   which is deterministic under the simulator's run-to-completion
//!   scheduling.
//!
//! Fault injection reuses the SSD stall hook (`e10_faultsim::ssd_stall`
//! keyed by hosting node), so an installed schedule back-pressures both
//! device classes identically.

use std::cell::RefCell;
use std::rc::Rc;

use e10_simcore::rng::Jitter;
use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::{FairShare, RoundRobin, SimRng};
use e10_simcore::{SimDuration, Tally};

use crate::ssd::Ssd;

/// NVM performance parameters.
#[derive(Debug, Clone)]
pub struct NvmParams {
    /// Aggregate sustained read bandwidth across all channels, bytes/s.
    pub read_bw: f64,
    /// Aggregate sustained write bandwidth across all channels, bytes/s.
    pub write_bw: f64,
    /// Per-command read latency (media access, no persist).
    pub read_latency: SimDuration,
    /// Per-command write latency (persist to media).
    pub write_latency: SimDuration,
    /// Independent internal channels; each serves `bw / channels`.
    pub channels: usize,
    /// Coefficient of variation of per-command jitter.
    pub jitter_cv: f64,
}

impl NvmParams {
    /// An Optane-class DC persistent-memory module: ~6.6 GB/s read,
    /// ~2.3 GB/s write, ~300 ns read / ~1 µs write command latency,
    /// four interleaved channels (Liu et al., arXiv:1705.03598 report
    /// this latency asymmetry and concurrency shape for byte-
    /// addressable NVM under HPC I/O loads).
    pub fn optane_scratch() -> Self {
        NvmParams {
            read_bw: 6.6e9,
            write_bw: 2.3e9,
            read_latency: SimDuration::from_nanos(300),
            write_latency: SimDuration::from_micros(1),
            channels: 4,
            jitter_cv: 0.03,
        }
    }

    /// Parameters that make the NVM model behave exactly like `ssd`:
    /// same latencies, same bandwidth, a single channel. Used by the
    /// determinism anchor test — with equal parameters the two device
    /// classes must produce bit-identical simulations.
    pub fn matching_ssd(ssd: &crate::SsdParams) -> Self {
        NvmParams {
            read_bw: ssd.read_bw,
            write_bw: ssd.write_bw,
            read_latency: ssd.read_latency,
            write_latency: ssd.write_latency,
            channels: 1,
            jitter_cv: ssd.jitter_cv,
        }
    }
}

/// A simulated byte-addressable NVM device.
#[derive(Clone)]
pub struct Nvm {
    params: NvmParams,
    read_chans: Rc<Vec<FairShare>>,
    write_chans: Rc<Vec<FairShare>>,
    /// Precomputed round-robin dispatch schedules (deterministic
    /// issue-order channel pick; clones share the cursor).
    read_rr: RoundRobin,
    write_rr: RoundRobin,
    state: Rc<RefCell<NvmState>>,
}

struct NvmState {
    jitter: Jitter,
    write_lat: Tally,
    read_lat: Tally,
    /// Compute node hosting this device (fault-injection identity).
    node: usize,
}

impl Nvm {
    /// Create an NVM device; `rng` drives its jitter stream.
    pub fn new(params: NvmParams, rng: SimRng) -> Self {
        let n = params.channels.max(1);
        let cv = params.jitter_cv;
        let per_chan = |bw: f64| (0..n).map(|_| FairShare::new(bw / n as f64)).collect();
        Nvm {
            read_chans: Rc::new(per_chan(params.read_bw)),
            write_chans: Rc::new(per_chan(params.write_bw)),
            read_rr: RoundRobin::new(n),
            write_rr: RoundRobin::new(n),
            params,
            state: Rc::new(RefCell::new(NvmState {
                jitter: Jitter::new(rng, cv),
                write_lat: Tally::new(),
                read_lat: Tally::new(),
                node: 0,
            })),
        }
    }

    /// Bind the device to its hosting compute node, so an installed
    /// fault schedule can target it.
    pub fn set_node(&self, node: usize) {
        self.state.borrow_mut().node = node;
    }

    /// Hosting compute node (0 until [`Nvm::set_node`] is called).
    pub fn node(&self) -> usize {
        self.state.borrow().node
    }

    /// Fault-injection hook, shared with [`Ssd::stall_point`]: a
    /// planned device stall on this node sleeps the caller out.
    pub async fn stall_point(&self) {
        let node = self.state.borrow().node;
        if let Some(stall) = e10_faultsim::ssd_stall(node) {
            e10_simcore::sleep(stall).await;
        }
    }

    /// Write `len` bytes at byte granularity (no block rounding).
    pub async fn write(&self, len: u64) {
        let t0 = e10_simcore::now();
        self.stall_point().await;
        let chan = self.write_rr.next();
        let j = self.state.borrow_mut().jitter.sample();
        e10_simcore::sleep(self.params.write_latency.mul_f64(j)).await;
        self.write_chans[chan].serve(len as f64 * j).await;
        let lat = e10_simcore::now().since(t0).as_secs_f64();
        self.state.borrow_mut().write_lat.push(lat);
        trace::emit(|| {
            Event::new(Layer::Storesim, "nvm.write", EventKind::Point)
                .field("bytes", len)
                .field("latency_s", lat)
        });
        trace::counter("nvm.write_bytes", len);
        trace::sample("nvm.write_latency_s", lat);
    }

    /// Read `len` bytes at byte granularity.
    pub async fn read(&self, len: u64) {
        let t0 = e10_simcore::now();
        self.stall_point().await;
        let chan = self.read_rr.next();
        let j = self.state.borrow_mut().jitter.sample();
        e10_simcore::sleep(self.params.read_latency.mul_f64(j)).await;
        self.read_chans[chan].serve(len as f64 * j).await;
        let lat = e10_simcore::now().since(t0).as_secs_f64();
        self.state.borrow_mut().read_lat.push(lat);
        trace::emit(|| {
            Event::new(Layer::Storesim, "nvm.read", EventKind::Point)
                .field("bytes", len)
                .field("latency_s", lat)
        });
        trace::counter("nvm.read_bytes", len);
        trace::sample("nvm.read_latency_s", lat);
    }

    /// Device parameters.
    pub fn params(&self) -> &NvmParams {
        &self.params
    }

    /// Service-time statistics for writes.
    pub fn write_latency(&self) -> Tally {
        self.state.borrow().write_lat.clone()
    }

    /// Service-time statistics for reads.
    pub fn read_latency(&self) -> Tally {
        self.state.borrow().read_lat.clone()
    }
}

/// The device interface a node-local file system needs: node binding
/// for fault injection, stall back-pressure, and offset-independent
/// read/write service. Both [`Ssd`] and [`Nvm`] implement it; code
/// that must *own* a device generically holds a [`DeviceModel`].
///
/// The whole simulator is single-threaded (`Rc` task graph), so the
/// futures returned here are intentionally not `Send`.
#[allow(async_fn_in_trait)]
pub trait Device {
    /// Bind to the hosting compute node.
    fn set_node(&self, node: usize);
    /// Hosting compute node.
    fn node(&self) -> usize;
    /// Sleep out a planned stall of this node's device, if any.
    async fn stall_point(&self);
    /// Serve a write of `len` bytes.
    async fn write(&self, len: u64);
    /// Serve a read of `len` bytes.
    async fn read(&self, len: u64);
}

impl Device for Ssd {
    fn set_node(&self, node: usize) {
        Ssd::set_node(self, node)
    }
    fn node(&self) -> usize {
        Ssd::node(self)
    }
    async fn stall_point(&self) {
        Ssd::stall_point(self).await
    }
    async fn write(&self, len: u64) {
        Ssd::write(self, len).await
    }
    async fn read(&self, len: u64) {
        Ssd::read(self, len).await
    }
}

impl Device for Nvm {
    fn set_node(&self, node: usize) {
        Nvm::set_node(self, node)
    }
    fn node(&self) -> usize {
        Nvm::node(self)
    }
    async fn stall_point(&self) {
        Nvm::stall_point(self).await
    }
    async fn write(&self, len: u64) {
        Nvm::write(self, len).await
    }
    async fn read(&self, len: u64) {
        Nvm::read(self, len).await
    }
}

/// A concrete, clonable device chosen at testbed-construction time.
/// `LocalFs` holds one of these: trait objects don't work for async
/// trait methods without boxing every command, and the closed set of
/// device classes makes an enum the cheaper dispatch.
#[derive(Clone)]
pub enum DeviceModel {
    /// Block SSD ([`crate::ssd`]).
    Ssd(Ssd),
    /// Byte-addressable NVM ([`crate::nvm`]).
    Nvm(Nvm),
}

impl DeviceModel {
    /// Bind to the hosting compute node.
    pub fn set_node(&self, node: usize) {
        match self {
            DeviceModel::Ssd(d) => d.set_node(node),
            DeviceModel::Nvm(d) => d.set_node(node),
        }
    }

    /// Hosting compute node.
    pub fn node(&self) -> usize {
        match self {
            DeviceModel::Ssd(d) => d.node(),
            DeviceModel::Nvm(d) => d.node(),
        }
    }

    /// Sleep out a planned stall of this node's device, if any.
    pub async fn stall_point(&self) {
        match self {
            DeviceModel::Ssd(d) => d.stall_point().await,
            DeviceModel::Nvm(d) => d.stall_point().await,
        }
    }

    /// Serve a write of `len` bytes.
    pub async fn write(&self, len: u64) {
        match self {
            DeviceModel::Ssd(d) => d.write(len).await,
            DeviceModel::Nvm(d) => d.write(len).await,
        }
    }

    /// Serve a read of `len` bytes.
    pub async fn read(&self, len: u64) {
        match self {
            DeviceModel::Ssd(d) => d.read(len).await,
            DeviceModel::Nvm(d) => d.read(len).await,
        }
    }

    /// Whether commands are served at byte granularity (no block
    /// rounding, no page-cache staging required for efficiency).
    pub fn byte_granular(&self) -> bool {
        matches!(self, DeviceModel::Nvm(_))
    }

    /// The fault-surface class of this device (what a
    /// [`e10_faultsim::FaultSpec::DeviceFail`] spec matches on).
    pub fn fault_class(&self) -> e10_faultsim::DeviceClass {
        match self {
            DeviceModel::Ssd(_) => e10_faultsim::DeviceClass::Ssd,
            DeviceModel::Nvm(_) => e10_faultsim::DeviceClass::Nvm,
        }
    }

    /// True if a planned permanent failure of this device has fired:
    /// every subsequent command must be refused with a typed error by
    /// the layer above (the local file system).
    pub fn failed(&self) -> bool {
        e10_faultsim::device_failed(self.node(), self.fault_class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{join_all, now, run, spawn};

    fn quiet(channels: usize) -> NvmParams {
        NvmParams {
            read_bw: 1000.0,
            write_bw: 1000.0,
            read_latency: SimDuration::ZERO,
            write_latency: SimDuration::ZERO,
            channels,
            jitter_cv: 0.0,
        }
    }

    #[test]
    fn single_stream_sees_one_channel() {
        let t = run(async {
            let d = Nvm::new(quiet(4), SimRng::new(1));
            d.write(1000).await;
            now().as_secs_f64()
        });
        // One channel serves 1000/4 = 250 B/s → 4 s for 1000 B.
        assert!((t - 4.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn concurrent_streams_fill_all_channels() {
        let t = run(async {
            let d = Nvm::new(quiet(4), SimRng::new(1));
            let mut hs = Vec::new();
            for _ in 0..4 {
                let d = d.clone();
                hs.push(spawn(async move { d.write(1000).await }));
            }
            join_all(hs).await;
            now().as_secs_f64()
        });
        // Round-robin puts each write on its own channel: all four run
        // in parallel at 250 B/s each.
        assert!((t - 4.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn oversubscribed_streams_queue_per_channel() {
        let t = run(async {
            let d = Nvm::new(quiet(2), SimRng::new(1));
            let mut hs = Vec::new();
            for _ in 0..4 {
                let d = d.clone();
                hs.push(spawn(async move { d.write(1000).await }));
            }
            join_all(hs).await;
            now().as_secs_f64()
        });
        // 4 writes on 2 channels: each channel fair-shares two 1000-B
        // commands at 500 B/s → 4 s.
        assert!((t - 4.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn read_write_latency_asymmetry() {
        let (r, w) = run(async {
            let mut p = quiet(1);
            p.read_latency = SimDuration::from_nanos(300);
            p.write_latency = SimDuration::from_micros(1);
            p.read_bw = 1e12;
            p.write_bw = 1e12;
            let d = Nvm::new(p, SimRng::new(1));
            let t0 = now();
            d.read(8).await;
            let r = now().since(t0).as_secs_f64();
            let t0 = now();
            d.write(8).await;
            (r, now().since(t0).as_secs_f64())
        });
        // Tolerance: the clock ticks in nanoseconds, and the bandwidth
        // serve adds a sub-nanosecond term that may round up.
        assert!((r - 300e-9).abs() < 2e-9, "read lat={r}");
        assert!((w - 1e-6).abs() < 2e-9, "write lat={w}");
    }

    #[test]
    fn injected_stall_applies_to_nvm_too() {
        let t_for = |target: usize| {
            run(async move {
                let _g = e10_faultsim::FaultSchedule::install(
                    e10_faultsim::FaultPlan::new(5).ssd_stall(
                        target,
                        e10_faultsim::always(),
                        1.0,
                        SimDuration::from_secs(3),
                    ),
                );
                let d = Nvm::new(quiet(1), SimRng::new(1));
                d.set_node(7);
                d.write(500).await;
                now().as_secs_f64()
            })
        };
        let stalled = t_for(7);
        let clean = t_for(8);
        assert!(
            (stalled - clean - 3.0).abs() < 1e-6,
            "stalled={stalled} clean={clean}"
        );
    }

    #[test]
    fn matching_ssd_params_time_identically() {
        let ssd_p = crate::SsdParams::sata_scratch();
        let t_ssd = run(async {
            let s = Ssd::new(crate::SsdParams::sata_scratch(), SimRng::new(9));
            for _ in 0..20 {
                s.write(65536).await;
                s.read(4096).await;
            }
            now().as_secs_f64()
        });
        let t_nvm = run(async move {
            let d = Nvm::new(NvmParams::matching_ssd(&ssd_p), SimRng::new(9));
            for _ in 0..20 {
                d.write(65536).await;
                d.read(4096).await;
            }
            now().as_secs_f64()
        });
        assert_eq!(t_ssd.to_bits(), t_nvm.to_bits(), "must be bit-identical");
    }

    #[test]
    fn latency_statistics_recorded() {
        run(async {
            let d = Nvm::new(quiet(2), SimRng::new(1));
            d.write(100).await;
            d.read(100).await;
            assert_eq!(d.write_latency().count(), 1);
            assert_eq!(d.read_latency().count(), 1);
        });
    }
}
