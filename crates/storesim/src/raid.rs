//! RAID array model (the 8+2 RAID6 data targets of the DEEP-ER JBOD).
//!
//! A write is chunked round-robin across the data disks, which service
//! their shares concurrently; parity disks receive a proportional load.
//! Partial-stripe writes pay a read-modify-write penalty on the parity
//! drives — one of the reasons small unaligned requests hurt the global
//! file system so much more than large aligned ones.

use crate::disk::Disk;
use e10_simcore::{join_all, spawn};

/// RAID geometry.
#[derive(Debug, Clone)]
pub struct RaidParams {
    /// Per-disk chunk size in bytes.
    pub chunk: u64,
    /// Number of parity disks (2 for RAID6).
    pub parity: usize,
}

impl RaidParams {
    /// RAID6 with 128 KiB chunks.
    pub fn raid6() -> Self {
        RaidParams {
            chunk: 128 * 1024,
            parity: 2,
        }
    }
}

/// A RAID array over a set of member disks.
///
/// Cloning shares the underlying disks (handles are reference-counted),
/// so a clone models another client of the same physical array.
#[derive(Clone)]
pub struct Raid {
    params: RaidParams,
    disks: Vec<Disk>,
}

impl Raid {
    /// Build an array; `disks.len()` must exceed `params.parity`.
    pub fn new(params: RaidParams, disks: Vec<Disk>) -> Self {
        assert!(
            disks.len() > params.parity,
            "need at least one data disk ({} disks, {} parity)",
            disks.len(),
            params.parity
        );
        Raid { params, disks }
    }

    /// Number of data disks.
    pub fn data_disks(&self) -> usize {
        self.disks.len() - self.params.parity
    }

    /// Full stripe width in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        self.params.chunk * self.data_disks() as u64
    }

    /// Split `[offset, offset+len)` into per-data-disk `(disk, disk_off,
    /// len)` pieces, merging contiguous chunks per disk.
    fn layout(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let nd = self.data_disks() as u64;
        let chunk = self.params.chunk;
        let mut per_disk: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nd as usize];
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let c = pos / chunk;
            let within = pos % chunk;
            let take = (chunk - within).min(end - pos);
            let disk = (c % nd) as usize;
            let disk_off = (c / nd) * chunk + within;
            if let Some(last) = per_disk[disk].last_mut() {
                if last.0 + last.1 == disk_off {
                    last.1 += take;
                    pos += take;
                    continue;
                }
            }
            per_disk[disk].push((disk_off, take));
            pos += take;
        }
        per_disk
            .into_iter()
            .enumerate()
            .flat_map(|(d, v)| v.into_iter().map(move |(o, l)| (d, o, l)))
            .collect()
    }

    /// Write `len` bytes at array offset `offset`.
    pub async fn write(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let pieces = self.layout(offset, len);
        let max_piece = pieces.iter().map(|&(_, _, l)| l).max().unwrap_or(0);
        let stripe = self.stripe_bytes();
        let partial = !offset.is_multiple_of(stripe) || !len.is_multiple_of(stripe);
        let mut hs = Vec::new();
        for (d, o, l) in pieces {
            let disk = self.disks[d].clone();
            hs.push(spawn(async move { disk.write(o, l).await }));
        }
        // Parity drives mirror the heaviest data drive; partial stripes
        // must read old parity first (RMW).
        let nd = self.data_disks();
        let parity_off = (offset / stripe) * self.params.chunk;
        for p in 0..self.params.parity {
            let disk = self.disks[nd + p].clone();
            hs.push(spawn(async move {
                if partial {
                    disk.read(parity_off, max_piece).await;
                }
                disk.write(parity_off, max_piece).await;
            }));
        }
        join_all(hs).await;
    }

    /// Read `len` bytes at array offset `offset` (data disks only).
    pub async fn read(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut hs = Vec::new();
        for (d, o, l) in self.layout(offset, len) {
            let disk = self.disks[d].clone();
            hs.push(spawn(async move { disk.read(o, l).await }));
        }
        join_all(hs).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use e10_simcore::{now, run, SimRng};

    fn quiet_disk(i: u64) -> Disk {
        Disk::new(
            DiskParams {
                jitter_cv: 0.0,
                ..DiskParams::nearline_sas()
            },
            SimRng::stream(77, i),
        )
    }

    fn array(n: usize) -> Raid {
        Raid::new(RaidParams::raid6(), (0..n as u64).map(quiet_disk).collect())
    }

    #[test]
    fn layout_round_robins_chunks() {
        let r = array(10); // 8 data + 2 parity
        let chunk = r.params.chunk;
        let pieces = r.layout(0, chunk * 3);
        assert_eq!(pieces, vec![(0, 0, chunk), (1, 0, chunk), (2, 0, chunk)]);
        // Second full stripe wraps to disk 0 at chunk offset `chunk`.
        let pieces = r.layout(chunk * 8, chunk);
        assert_eq!(pieces, vec![(0, chunk, chunk)]);
    }

    #[test]
    fn layout_merges_contiguous_same_disk_chunks() {
        let r = array(3); // 1 data disk
        let chunk = r.params.chunk;
        let pieces = r.layout(0, chunk * 4);
        assert_eq!(pieces, vec![(0, 0, chunk * 4)]);
    }

    #[test]
    fn layout_handles_unaligned_offsets() {
        let r = array(10);
        let chunk = r.params.chunk;
        let pieces = r.layout(chunk / 2, chunk);
        assert_eq!(pieces, vec![(0, chunk / 2, chunk / 2), (1, 0, chunk / 2)]);
        let total: u64 = pieces.iter().map(|p| p.2).sum();
        assert_eq!(total, chunk);
    }

    #[test]
    fn array_outpaces_single_disk_on_large_writes() {
        let (t_array, t_disk) = run(async {
            let r = array(10);
            let stripe = r.stripe_bytes();
            let t0 = now();
            r.write(0, stripe * 8).await;
            let t_array = now().since(t0).as_secs_f64();

            let d = quiet_disk(99);
            let t1 = now();
            d.write(0, stripe * 8).await;
            (t_array, now().since(t1).as_secs_f64())
        });
        assert!(t_array < t_disk / 4.0, "array={t_array}s single={t_disk}s");
    }

    #[test]
    fn partial_stripe_write_pays_rmw() {
        let (t_partial, t_full) = run(async {
            let r = array(10);
            let stripe = r.stripe_bytes();
            let t0 = now();
            r.write(0, stripe).await;
            let t_full = now().since(t0).as_secs_f64();

            let r2 = array(10);
            let t1 = now();
            r2.write(r2.params.chunk / 2, stripe).await;
            (now().since(t1).as_secs_f64(), t_full)
        });
        assert!(t_partial > t_full, "partial={t_partial} full={t_full}");
    }

    #[test]
    fn zero_length_io_is_free() {
        let t = run(async {
            let r = array(4);
            r.write(0, 0).await;
            r.read(0, 0).await;
            now().as_secs_f64()
        });
        assert_eq!(t, 0.0);
    }
}
