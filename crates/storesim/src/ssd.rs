//! Solid-state drive model (the node-local SATA SSD holding `/scratch`).
//!
//! No mechanical state: a small per-command latency plus bandwidth-
//! shared read and write channels. Service time variance is an order of
//! magnitude lower than the disk model's, which is exactly the property
//! the paper exploits (stable response times → cheap global sync).

use std::cell::RefCell;
use std::rc::Rc;

use e10_simcore::rng::Jitter;
use e10_simcore::trace::{self, Event, EventKind, Layer};
use e10_simcore::{FairShare, SimRng};
use e10_simcore::{SimDuration, Tally};

/// SSD performance parameters.
#[derive(Debug, Clone)]
pub struct SsdParams {
    /// Sustained read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sustained write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Per-command read latency.
    pub read_latency: SimDuration,
    /// Per-command write latency. SATA-era flash is close to symmetric
    /// at the command level (the asymmetry lives in bandwidth), so the
    /// presets keep both equal; the split exists because byte-
    /// addressable devices ([`crate::nvm`]) are strongly asymmetric.
    pub write_latency: SimDuration,
    /// Coefficient of variation of per-command jitter (small for SSDs).
    pub jitter_cv: f64,
}

impl SsdParams {
    /// An 80 GB consumer SATA SSD of the DEEP-ER era (Intel 320-ish):
    /// ~270 MB/s read, ~220 MB/s sustained write. The paper's ~20 GB/s
    /// burst across 64 nodes also rides the page cache (see
    /// [`crate::pagecache`]), not the bare device.
    pub fn sata_scratch() -> Self {
        SsdParams {
            read_bw: 270e6,
            write_bw: 220e6,
            read_latency: SimDuration::from_micros(80),
            write_latency: SimDuration::from_micros(80),
            jitter_cv: 0.03,
        }
    }
}

/// A simulated SSD.
#[derive(Clone)]
pub struct Ssd {
    params: SsdParams,
    read_chan: FairShare,
    write_chan: FairShare,
    state: Rc<RefCell<SsdState>>,
}

struct SsdState {
    jitter: Jitter,
    write_lat: Tally,
    read_lat: Tally,
    /// Compute node hosting this device (fault-injection identity).
    node: usize,
}

impl Ssd {
    /// Create an SSD; `rng` drives its (small) jitter stream.
    pub fn new(params: SsdParams, rng: SimRng) -> Self {
        let cv = params.jitter_cv;
        Ssd {
            read_chan: FairShare::new(params.read_bw),
            write_chan: FairShare::new(params.write_bw),
            params,
            state: Rc::new(RefCell::new(SsdState {
                jitter: Jitter::new(rng, cv),
                write_lat: Tally::new(),
                read_lat: Tally::new(),
                node: 0,
            })),
        }
    }

    /// Bind the device to its hosting compute node, so an installed
    /// fault schedule can target it (`e10_faultsim::ssd_stall`).
    pub fn set_node(&self, node: usize) {
        self.state.borrow_mut().node = node;
    }

    /// Hosting compute node (0 until [`Ssd::set_node`] is called).
    pub fn node(&self) -> usize {
        self.state.borrow().node
    }

    /// Fault-injection hook: if the installed schedule stalls this
    /// device right now, sleep out the stall. Device-backed paths that
    /// bypass [`Ssd::read`]/[`Ssd::write`] proper (e.g. a page cache
    /// whose writeback is modelled as drain bandwidth) call this so a
    /// planned `ssd_stall` still back-pressures them. With no schedule
    /// installed this awaits nothing and perturbs nothing.
    pub async fn stall_point(&self) {
        let node = self.state.borrow().node;
        if let Some(stall) = e10_faultsim::ssd_stall(node) {
            e10_simcore::sleep(stall).await;
        }
    }

    /// Write `len` bytes (offset-independent service).
    pub async fn write(&self, len: u64) {
        let t0 = e10_simcore::now();
        self.stall_point().await;
        let j = self.state.borrow_mut().jitter.sample();
        e10_simcore::sleep(self.params.write_latency.mul_f64(j)).await;
        self.write_chan.serve(len as f64 * j).await;
        let lat = e10_simcore::now().since(t0).as_secs_f64();
        self.state.borrow_mut().write_lat.push(lat);
        trace::emit(|| {
            Event::new(Layer::Storesim, "ssd.write", EventKind::Point)
                .field("bytes", len)
                .field("latency_s", lat)
        });
        trace::counter("ssd.write_bytes", len);
        trace::sample("ssd.write_latency_s", lat);
    }

    /// Read `len` bytes.
    pub async fn read(&self, len: u64) {
        let t0 = e10_simcore::now();
        self.stall_point().await;
        let j = self.state.borrow_mut().jitter.sample();
        e10_simcore::sleep(self.params.read_latency.mul_f64(j)).await;
        self.read_chan.serve(len as f64 * j).await;
        let lat = e10_simcore::now().since(t0).as_secs_f64();
        self.state.borrow_mut().read_lat.push(lat);
        trace::emit(|| {
            Event::new(Layer::Storesim, "ssd.read", EventKind::Point)
                .field("bytes", len)
                .field("latency_s", lat)
        });
        trace::counter("ssd.read_bytes", len);
        trace::sample("ssd.read_latency_s", lat);
    }

    /// Device parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Service-time statistics for writes.
    pub fn write_latency(&self) -> Tally {
        self.state.borrow().write_lat.clone()
    }

    /// Service-time statistics for reads.
    pub fn read_latency(&self) -> Tally {
        self.state.borrow().read_lat.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{join_all, now, run, spawn};

    fn quiet() -> SsdParams {
        SsdParams {
            jitter_cv: 0.0,
            read_latency: SimDuration::ZERO,
            write_latency: SimDuration::ZERO,
            read_bw: 1000.0,
            write_bw: 500.0,
        }
    }

    #[test]
    fn write_throughput_matches_channel() {
        let t = run(async {
            let s = Ssd::new(quiet(), SimRng::new(1));
            s.write(1000).await;
            now().as_secs_f64()
        });
        assert!((t - 2.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn reads_and_writes_use_separate_channels() {
        let t = run(async {
            let s = Ssd::new(quiet(), SimRng::new(1));
            let s1 = s.clone();
            let h1 = spawn(async move { s1.write(500).await });
            let s2 = s.clone();
            let h2 = spawn(async move { s2.read(1000).await });
            join_all(vec![h1, h2]).await;
            now().as_secs_f64()
        });
        // Both take 1 s in parallel, not 2 s serialised.
        assert!((t - 1.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn concurrent_writes_share_bandwidth() {
        let t = run(async {
            let s = Ssd::new(quiet(), SimRng::new(1));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let s = s.clone();
                hs.push(spawn(async move { s.write(500).await }));
            }
            join_all(hs).await;
            now().as_secs_f64()
        });
        assert!((t - 2.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn ssd_variance_well_below_disk_variance() {
        let (ssd_cv, disk_cv) = run(async {
            let s = Ssd::new(SsdParams::sata_scratch(), SimRng::new(5));
            for _ in 0..60 {
                s.write(4_194_304).await;
            }
            let d = crate::disk::Disk::new(crate::disk::DiskParams::nearline_sas(), SimRng::new(6));
            let mut tally = Tally::new();
            for i in 0..60u64 {
                let t0 = now();
                d.write((i * 7919 % 101) * 50_000_000, 4_194_304).await;
                tally.push(now().since(t0).as_secs_f64());
            }
            (s.write_latency().cv(), tally.cv())
        });
        assert!(ssd_cv < disk_cv / 2.0, "ssd cv={ssd_cv}, disk cv={disk_cv}");
    }

    #[test]
    fn injected_stall_slows_the_targeted_node_only() {
        let t_for = |target: usize| {
            run(async move {
                let _g = e10_faultsim::FaultSchedule::install(
                    e10_faultsim::FaultPlan::new(5).ssd_stall(
                        target,
                        e10_faultsim::always(),
                        1.0,
                        SimDuration::from_secs(3),
                    ),
                );
                let s = Ssd::new(quiet(), SimRng::new(1));
                s.set_node(7);
                s.write(500).await;
                now().as_secs_f64()
            })
        };
        let stalled = t_for(7);
        let clean = t_for(8);
        assert!(
            (stalled - clean - 3.0).abs() < 1e-6,
            "stalled={stalled} clean={clean}"
        );
    }

    #[test]
    fn latency_statistics_recorded() {
        run(async {
            let s = Ssd::new(quiet(), SimRng::new(1));
            s.write(100).await;
            s.read(100).await;
            assert_eq!(s.write_latency().count(), 1);
            assert_eq!(s.read_latency().count(), 1);
        });
    }
}
