//! # e10-storesim
//!
//! Storage device models and the synthetic-data machinery for the E10
//! reproduction:
//!
//! * [`pattern`] / [`extent`] — size-only payloads with verifiable
//!   content descriptors and the extent maps that represent file
//!   contents at any scale.
//! * [`disk`] — rotational drives with seek state and log-normal jitter
//!   (the BeeGFS data-target media and the source of the response-time
//!   variance that drives collective I/O's global-sync cost).
//! * [`raid`] — chunked RAID with parity and partial-stripe RMW.
//! * [`ssd`] — node-local SATA SSD with low-variance service.
//! * [`nvm`] — byte-addressable persistent memory: asymmetric
//!   read/write latency, byte-granular commands, N-channel internal
//!   concurrency; shares the faultsim stall hook with the SSD via the
//!   [`nvm::Device`] trait / [`nvm::DeviceModel`] enum.
//! * [`pagecache`] — dirty-limit write absorption and writeback, which
//!   gives the cache-enabled runs their memory-speed burst behaviour.

pub mod bytes;
pub mod disk;
pub mod extent;
pub mod nvm;
pub mod pagecache;
pub mod pattern;
pub mod raid;
pub mod ssd;

pub use bytes::Bytes;
pub use disk::{Disk, DiskParams};
pub use extent::{pieces_digest, ExtentMap, VerifyError};
pub use nvm::{Device, DeviceModel, Nvm, NvmParams};
pub use pagecache::{PageCache, PageCacheParams};
pub use pattern::{gen_byte, Payload, Source};
pub use raid::{Raid, RaidParams};
pub use ssd::{Ssd, SsdParams};
