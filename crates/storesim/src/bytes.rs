//! A minimal stand-in for the `bytes` crate's `Bytes`: cheaply
//! cloneable, immutable byte storage. The simulator is single-threaded,
//! so an `Rc<[u8]>` gives the same O(1) clone without the external
//! dependency (the build environment is fully offline).

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// Immutable, reference-counted bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct Bytes(Rc<[u8]>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.into())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes(v.as_slice().into())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes(v.as_bytes().into())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage_and_compares_by_content() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a[1], 2);
        assert_eq!(a.len(), 3);
        assert_eq!(Bytes::from(&[1u8, 2, 3][..]), a);
        assert!(!a.is_empty());
    }
}
