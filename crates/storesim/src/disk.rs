//! Rotational disk model (the SAS drives behind the BeeGFS data targets).
//!
//! A disk is a single FIFO server (the head). Each request pays a
//! position-dependent cost: sequential continuation is nearly free;
//! anything else pays seek + half-rotation, with a log-normal jitter
//! multiplier. The jitter is what ultimately produces the response-time
//! spread among aggregators that the paper identifies as the main
//! global-synchronisation cost of collective I/O.

use std::cell::RefCell;
use std::rc::Rc;

use e10_simcore::rng::Jitter;
use e10_simcore::{transfer_time, FifoServer, SimDuration, SimRng};

/// Mechanical and transfer parameters of a disk.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Average seek time for a random access.
    pub seek: SimDuration,
    /// Cost of continuing just past the previous request (track switch).
    pub settle: SimDuration,
    /// Average rotational delay (half a revolution).
    pub rotation: SimDuration,
    /// Media transfer rate, bytes/s.
    pub bandwidth: f64,
    /// Coefficient of variation of the per-request jitter multiplier.
    pub jitter_cv: f64,
}

impl DiskParams {
    /// A 7.2k RPM 2 TB nearline SAS drive (the DEEP-ER JBOD population).
    pub fn nearline_sas() -> Self {
        DiskParams {
            seek: SimDuration::from_micros(8_000),
            settle: SimDuration::from_micros(500),
            rotation: SimDuration::from_micros(4_160),
            bandwidth: 155e6,
            jitter_cv: 0.25,
        }
    }
}

struct DiskState {
    head_pos: u64,
    jitter: Jitter,
    requests: u64,
    seeks: u64,
}

/// A single simulated disk.
#[derive(Clone)]
pub struct Disk {
    params: DiskParams,
    server: FifoServer,
    state: Rc<RefCell<DiskState>>,
}

impl Disk {
    /// Create a disk; `rng` drives its jitter stream.
    pub fn new(params: DiskParams, rng: SimRng) -> Self {
        let cv = params.jitter_cv;
        Disk {
            params,
            server: FifoServer::new(1),
            state: Rc::new(RefCell::new(DiskState {
                head_pos: 0,
                jitter: Jitter::new(rng, cv),
                requests: 0,
                seeks: 0,
            })),
        }
    }

    fn service_time(&self, offset: u64, len: u64) -> SimDuration {
        let mut st = self.state.borrow_mut();
        st.requests += 1;
        let positioning = if offset == st.head_pos {
            self.params.settle
        } else {
            st.seeks += 1;
            self.params.seek + self.params.rotation
        };
        st.head_pos = offset + len;
        let j = st.jitter.sample();
        (positioning + transfer_time(len, self.params.bandwidth)).mul_f64(j)
    }

    /// Write `len` bytes at `offset` (queue + position + transfer).
    pub async fn write(&self, offset: u64, len: u64) {
        self.server
            .serve_with(|| self.service_time(offset, len))
            .await;
    }

    /// Read `len` bytes at `offset`.
    pub async fn read(&self, offset: u64, len: u64) {
        // Same mechanics as a write for this model.
        self.server
            .serve_with(|| self.service_time(offset, len))
            .await;
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.state.borrow().requests
    }

    /// How many of those paid a full seek.
    pub fn seeks(&self) -> u64 {
        self.state.borrow().seeks
    }

    /// Queue length right now.
    pub fn queue_len(&self) -> usize {
        self.server.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::{now, run};

    fn quiet_params() -> DiskParams {
        DiskParams {
            jitter_cv: 0.0,
            ..DiskParams::nearline_sas()
        }
    }

    #[test]
    fn sequential_writes_avoid_seeks() {
        let (seq, rnd) = run(async {
            let d = Disk::new(quiet_params(), SimRng::new(1));
            let t0 = now();
            for i in 0..16u64 {
                d.write(i * 1_048_576, 1_048_576).await;
            }
            let seq = now().since(t0).as_secs_f64();
            let d2 = Disk::new(quiet_params(), SimRng::new(2));
            let t1 = now();
            for i in 0..16u64 {
                // Deliberately scattered.
                d2.write(((i * 7919) % 97) * 10_000_000, 1_048_576).await;
            }
            (seq, now().since(t1).as_secs_f64())
        });
        assert!(rnd > seq * 1.5, "random={rnd} sequential={seq}");
    }

    #[test]
    fn first_access_pays_no_seek_at_origin() {
        run(async {
            let d = Disk::new(quiet_params(), SimRng::new(1));
            d.write(0, 4096).await;
            assert_eq!(d.seeks(), 0);
            d.write(4096, 4096).await;
            assert_eq!(d.seeks(), 0);
            d.write(0, 4096).await;
            assert_eq!(d.seeks(), 1);
            assert_eq!(d.requests(), 3);
        });
    }

    #[test]
    fn large_sequential_throughput_near_media_rate() {
        let t = run(async {
            let d = Disk::new(quiet_params(), SimRng::new(1));
            // 64 MB sequential in 4 MB requests.
            for i in 0..16u64 {
                d.write(i * 4_194_304, 4_194_304).await;
            }
            now().as_secs_f64()
        });
        let bytes = 64.0 * 1_048_576.0;
        let bw = bytes / t;
        let media = quiet_params().bandwidth;
        assert!(bw > media * 0.9, "bw={bw}, media={media}");
    }

    #[test]
    fn jitter_spreads_service_times() {
        let times = run(async {
            let d = Disk::new(DiskParams::nearline_sas(), SimRng::new(3));
            let mut ts = Vec::new();
            for _ in 0..50 {
                let t0 = now();
                d.write(999_999_999, 1_048_576).await; // same offset → always seeks
                ts.push(now().since(t0).as_secs_f64());
            }
            ts
        });
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let spread = times.iter().fold(0.0f64, |m, &t| m.max((t - mean).abs()));
        assert!(
            spread > mean * 0.1,
            "expected visible jitter, spread={spread} mean={mean}"
        );
    }
}
