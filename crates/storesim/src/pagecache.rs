//! Node page-cache model.
//!
//! Writes to the local file system do not hit the SSD synchronously:
//! the kernel absorbs them into dirty pages at memory speed until the
//! dirty limit, then throttles the writer to device speed while
//! background writeback drains. This is why the paper's cache-enabled
//! bursts (≈0.5 GB per aggregator node) complete far above raw SATA
//! speed.
//!
//! The model is a token bucket: `dirty` fills with writes and drains
//! continuously at the backing device's write bandwidth. A separate
//! `resident` counter tracks how much recently written file data is
//! still in RAM, so the flush thread's read-back can be classified as
//! page-cache hit (memory speed) or miss (device read).

use std::cell::RefCell;
use std::rc::Rc;

use e10_simcore::{now, sleep, FairShare, SimDuration, SimTime};

/// Page-cache parameters for one node.
#[derive(Debug, Clone)]
pub struct PageCacheParams {
    /// Memory-copy bandwidth for absorbed writes / cache-hit reads, bytes/s.
    pub mem_bw: f64,
    /// Dirty-page ceiling (kernel `dirty_ratio` × RAM), bytes.
    pub dirty_limit: u64,
    /// Total page-cache capacity available for caching file data, bytes.
    pub capacity: u64,
    /// Background writeback rate to the backing device, bytes/s.
    pub drain_bw: f64,
}

impl PageCacheParams {
    /// A DEEP-ER compute node: 32 GB RAM, 20% dirty ratio, ~24 GB usable
    /// page cache, draining to the SATA scratch SSD.
    pub fn deep_er_node(ssd_write_bw: f64) -> Self {
        PageCacheParams {
            mem_bw: 3.0e9,
            dirty_limit: 6 * (1 << 30),
            capacity: 24 * (1 << 30),
            drain_bw: ssd_write_bw,
        }
    }
}

struct PcState {
    dirty: f64,
    resident: f64,
    written_total: u64,
    last: SimTime,
}

/// One node's page cache.
#[derive(Clone)]
pub struct PageCache {
    params: PageCacheParams,
    mem: FairShare,
    throttle: FairShare,
    state: Rc<RefCell<PcState>>,
}

impl PageCache {
    /// Create a page cache.
    pub fn new(params: PageCacheParams) -> Self {
        PageCache {
            mem: FairShare::new(params.mem_bw),
            throttle: FairShare::new(params.drain_bw),
            params,
            state: Rc::new(RefCell::new(PcState {
                dirty: 0.0,
                resident: 0.0,
                written_total: 0,
                last: SimTime::ZERO,
            })),
        }
    }

    fn settle(&self) {
        let mut st = self.state.borrow_mut();
        let t = now();
        let dt = t.since(st.last).as_secs_f64();
        st.last = t;
        st.dirty = (st.dirty - dt * self.params.drain_bw).max(0.0);
    }

    /// Buffered write of `len` bytes: absorbed at memory speed while
    /// below the dirty limit, throttled to device speed beyond it.
    pub async fn write(&self, len: u64) {
        self.settle();
        let (absorb, throttled) = {
            let mut st = self.state.borrow_mut();
            let room = (self.params.dirty_limit as f64 - st.dirty).max(0.0);
            let absorb = (len as f64).min(room);
            let throttled = len as f64 - absorb;
            st.dirty += absorb;
            st.written_total += len;
            st.resident = (st.resident + len as f64).min(self.params.capacity as f64);
            (absorb, throttled)
        };
        if absorb > 0.0 {
            self.mem.serve(absorb).await;
        }
        if throttled > 0.0 {
            // Writer blocked behind writeback; dirty stays pinned at the
            // limit while these bytes pass straight through.
            self.throttle.serve(throttled).await;
        }
    }

    /// Read `len` bytes previously written at absolute file-stream
    /// position `pos` (0-based count of bytes written before it).
    /// Returns `true` if it was a page-cache hit; on a miss the caller
    /// must charge the backing device itself.
    pub async fn read_at(&self, pos: u64, len: u64) -> bool {
        self.settle();
        let hit = {
            let st = self.state.borrow();
            // FIFO eviction: the oldest (written_total - resident) bytes
            // have been evicted.
            let evicted = st.written_total as f64 - st.resident;
            (pos as f64) >= evicted
        };
        if hit {
            self.mem.serve(len as f64).await;
        }
        hit
    }

    /// Wait until all dirty pages have reached the device (fsync).
    pub async fn flush(&self) {
        loop {
            self.settle();
            let dirty = self.state.borrow().dirty;
            if dirty <= 1.0 {
                self.state.borrow_mut().dirty = 0.0;
                return;
            }
            sleep(SimDuration::from_secs_f64(dirty / self.params.drain_bw)).await;
        }
    }

    /// Power-cycle the node: RAM contents are gone. Dirty pages vanish
    /// (the durability of already-acknowledged writes is the device
    /// model's concern, not RAM's) and nothing stays resident, so every
    /// read after the restart is a cold device read.
    pub fn power_cycle(&self) {
        self.settle();
        let mut st = self.state.borrow_mut();
        st.dirty = 0.0;
        st.resident = 0.0;
    }

    /// Drop `len` bytes of cached file data (file deleted / truncated).
    pub fn evict(&self, len: u64) {
        self.settle();
        let mut st = self.state.borrow_mut();
        st.resident = (st.resident - len as f64).max(0.0);
        st.dirty = (st.dirty - len as f64).max(0.0);
    }

    /// Current dirty bytes (settled to now).
    pub fn dirty(&self) -> u64 {
        self.settle();
        self.state.borrow().dirty as u64
    }

    /// Current resident file bytes.
    pub fn resident(&self) -> u64 {
        self.state.borrow().resident as u64
    }

    /// Parameters.
    pub fn params(&self) -> &PageCacheParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e10_simcore::run;

    fn small() -> PageCacheParams {
        PageCacheParams {
            mem_bw: 1000.0,
            dirty_limit: 500,
            capacity: 800,
            drain_bw: 100.0,
        }
    }

    #[test]
    fn small_writes_absorb_at_memory_speed() {
        let t = run(async {
            let pc = PageCache::new(small());
            pc.write(400).await;
            now().as_secs_f64()
        });
        assert!((t - 0.4).abs() < 1e-6, "t={t}"); // 400 B at 1000 B/s
    }

    #[test]
    fn writes_beyond_dirty_limit_throttle_to_device_speed() {
        let t = run(async {
            let pc = PageCache::new(small());
            pc.write(1500).await;
            now().as_secs_f64()
        });
        // 500 absorbed at mem speed (0.5 s — during which 50 drain),
        // remainder throttled at 100 B/s: clearly dominated by ~10 s.
        assert!(t > 8.0 && t < 12.0, "t={t}");
    }

    #[test]
    fn dirty_drains_over_time() {
        run(async {
            let pc = PageCache::new(small());
            pc.write(400).await;
            let d0 = pc.dirty();
            assert!(d0 > 300);
            sleep(SimDuration::from_secs(2)).await;
            assert_eq!(pc.dirty(), d0 - 200);
            sleep(SimDuration::from_secs(10)).await;
            assert_eq!(pc.dirty(), 0);
        });
    }

    #[test]
    fn flush_waits_for_drain() {
        let t = run(async {
            let pc = PageCache::new(small());
            pc.write(400).await;
            pc.flush().await;
            assert_eq!(pc.dirty(), 0);
            now().as_secs_f64()
        });
        // 400 dirty minus what drained during the 0.4 s write, at 100 B/s.
        assert!((t - 4.0).abs() < 0.1, "t={t}");
    }

    #[test]
    fn recent_reads_hit_old_reads_miss() {
        run(async {
            let pc = PageCache::new(small());
            pc.write(1000).await; // 200 oldest bytes evicted (capacity 800)
            assert!(!pc.read_at(0, 100).await, "oldest bytes must be evicted");
            assert!(pc.read_at(500, 100).await, "recent bytes must be resident");
        });
    }

    #[test]
    fn evict_releases_resident_and_dirty() {
        run(async {
            let pc = PageCache::new(small());
            pc.write(400).await;
            pc.evict(400);
            assert_eq!(pc.resident(), 0);
            assert_eq!(pc.dirty(), 0);
        });
    }

    #[test]
    fn power_cycle_empties_the_cache() {
        run(async {
            let pc = PageCache::new(small());
            pc.write(400).await;
            assert!(pc.read_at(0, 100).await, "warm before the cut");
            pc.power_cycle();
            assert_eq!(pc.dirty(), 0);
            assert_eq!(pc.resident(), 0);
            assert!(!pc.read_at(0, 100).await, "cold after the cut");
        });
    }

    #[test]
    fn resident_capped_at_capacity() {
        run(async {
            let pc = PageCache::new(small());
            pc.write(5000).await;
            assert_eq!(pc.resident(), 800);
        });
    }
}
