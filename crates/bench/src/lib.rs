//! # e10-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§IV). Each `fig*` binary reruns the paper's
//! parameter sweep — `cb_nodes ∈ {8,16,32,64}` × `cb_buffer_size ∈
//! {4,16,64} MB`, three cases (cache disabled / enabled / theoretical)
//! — on the simulated DEEP-ER testbed and prints the series the paper
//! plots.
//!
//! Set `E10_SCALE=quick` to run a reduced sweep (64 ranks, smaller
//! files) for smoke testing; the default regenerates the full
//! 512-rank, 32 GB-per-file experiments.
//!
//! Sweeps run their grid points on a host-side worker pool
//! ([`e10_simcore::pool`]): every point is an independent,
//! deterministic simulation, so `E10_JOBS=N` runs N of them on
//! separate OS threads while `E10_JOBS=1` forces the old sequential
//! path. Results are keyed by grid index, so the printed figures are
//! byte-identical regardless of the job count. Every binary also
//! accepts `--json` for a machine-readable rendition of its output.

pub mod harness;
pub mod json;
pub mod tables;

use std::rc::Rc;

pub use json::{json_mode, Json};

use e10_mpisim::Info;
use e10_romio::TestbedSpec;
use e10_simcore::SimDuration;
use e10_workloads::{
    run_workload, CollPerf, FlashIo, Ior, RunConfig, RunOutcome, Workload, WorkloadSpec,
};

/// The three measurement cases of Fig. 4/7/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// "BW Cache Disabled": collective writes straight to the global
    /// file system.
    Disabled,
    /// "BW Cache Enabled": writes to the node-local cache,
    /// asynchronously flushed (`flush_immediate`).
    Enabled,
    /// "TBW Cache Enabled": writes to the cache, never flushed — the
    /// theoretical upper bound when synchronisation is fully hidden.
    Theoretical,
}

impl Case {
    /// All cases, in the paper's legend order.
    pub const ALL: [Case; 3] = [Case::Disabled, Case::Enabled, Case::Theoretical];

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Case::Disabled => "BW Cache Disabled",
            Case::Enabled => "BW Cache Enabled",
            Case::Theoretical => "TBW Cache Enabled",
        }
    }

    /// Whether the run's global files can be verified (the theoretical
    /// case never syncs, so there is nothing to verify).
    pub fn verifiable(&self) -> bool {
        !matches!(self, Case::Theoretical)
    }
}

/// Experiment scale (full paper sweep or a quick smoke version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 512 ranks, 64 nodes, 32 GB files, the paper's sweep.
    Full,
    /// 64 ranks, 8 nodes, small files — minutes instead of tens of
    /// minutes; shapes still hold.
    Quick,
    /// 8 ranks, 2 nodes, kilobyte files — seconds; for the test suite
    /// and the `bench_baseline --smoke` CI gate.
    Test,
}

impl Scale {
    /// Read `E10_SCALE` (default full).
    pub fn from_env() -> Scale {
        match std::env::var("E10_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("test") => Scale::Test,
            _ => Scale::Full,
        }
    }

    /// Lowercase name (matches the `E10_SCALE` values).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Quick => "quick",
            Scale::Test => "test",
        }
    }

    /// Ranks at this scale.
    pub fn procs(&self) -> usize {
        match self {
            Scale::Full => 512,
            Scale::Quick => 64,
            Scale::Test => 8,
        }
    }

    /// Compute nodes at this scale.
    pub fn nodes(&self) -> usize {
        match self {
            Scale::Full => 64,
            Scale::Quick => 8,
            Scale::Test => 2,
        }
    }

    /// Aggregator counts to sweep.
    pub fn aggregators(&self) -> Vec<usize> {
        match self {
            Scale::Full => vec![8, 16, 32, 64],
            Scale::Quick => vec![2, 4, 8],
            Scale::Test => vec![2, 4],
        }
    }

    /// Collective buffer sizes (bytes) to sweep.
    pub fn cb_sizes(&self) -> Vec<u64> {
        match self {
            Scale::Full => vec![4 << 20, 16 << 20, 64 << 20],
            Scale::Quick => vec![1 << 20, 4 << 20],
            Scale::Test => vec![8 << 10, 32 << 10],
        }
    }

    /// Files per run (the paper writes 4).
    pub fn files(&self) -> usize {
        match self {
            Scale::Test => 2,
            _ => 4,
        }
    }

    /// Compute delay between phases.
    pub fn compute_delay(&self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_secs(30),
            Scale::Quick => SimDuration::from_secs(4),
            Scale::Test => SimDuration::from_secs(1),
        }
    }

    /// Any paper workload at this scale, via its [`WorkloadSpec`]
    /// constructors (full → `paper()`, quick → `quick(procs)`, test →
    /// `tiny_for(procs)`).
    pub fn workload<W: WorkloadSpec>(&self) -> W {
        match self {
            Scale::Full => W::paper(),
            Scale::Quick => W::quick(self.procs()),
            Scale::Test => W::tiny_for(self.procs()),
        }
    }

    /// The coll_perf workload at this scale.
    pub fn collperf(&self) -> CollPerf {
        self.workload()
    }

    /// The Flash-IO checkpoint workload at this scale.
    pub fn flashio(&self) -> FlashIo {
        self.workload()
    }

    /// The IOR workload at this scale.
    pub fn ior(&self) -> Ior {
        self.workload()
    }
}

/// The paper's fixed hints: stripe size 4 MB, stripe count 4,
/// `ind_wr_buffer_size` 512 KB, collective writes forced.
pub fn paper_base_hints() -> Info {
    Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("striping_unit", "4194304"),
        ("striping_factor", "4"),
        ("ind_wr_buffer_size", "512K"),
    ])
}

/// Hints for one `<aggregators>_<coll_bufsize>` combination and case.
pub fn hints_for(case: Case, aggregators: usize, cb_size: u64) -> Info {
    let info = paper_base_hints();
    info.set("cb_nodes", &aggregators.to_string());
    info.set("cb_buffer_size", &cb_size.to_string());
    match case {
        Case::Disabled => {}
        Case::Enabled => {
            info.set("e10_cache", "enable");
            info.set("e10_cache_flush_flag", "flush_immediate");
            info.set("e10_cache_discard_flag", "enable");
        }
        Case::Theoretical => {
            info.set("e10_cache", "enable");
            info.set("e10_cache_flush_flag", "flush_none");
            info.set("e10_cache_discard_flag", "enable");
        }
    }
    info
}

/// The label the paper uses on its x axes (`K` below 1 MB, used only
/// by the reduced test scale).
pub fn combo_label(aggregators: usize, cb_size: u64) -> String {
    if cb_size >= 1 << 20 {
        format!("{aggregators}_{}M", cb_size >> 20)
    } else {
        format!("{aggregators}_{}K", cb_size >> 10)
    }
}

/// One measured configuration.
pub struct SweepPoint {
    /// `<aggregators>_<coll_bufsize>` label.
    pub combo: String,
    /// Aggregator count.
    pub aggregators: usize,
    /// Collective buffer size, bytes.
    pub cb_size: u64,
    /// Which case.
    pub case: Case,
    /// The full run outcome.
    pub outcome: RunOutcome,
}

/// Run one configuration of `workload` in a fresh simulated cluster.
///
/// `Send` because sweep points run as worker-pool jobs; the workload
/// itself is constructed *inside* the job's simulation, so the
/// `Rc`-based sim state never crosses a thread.
pub fn run_point<W, F>(
    scale: Scale,
    make_workload: F,
    case: Case,
    aggregators: usize,
    cb_size: u64,
    include_last_sync: bool,
) -> SweepPoint
where
    W: Workload + 'static,
    F: FnOnce() -> W + Send + 'static,
{
    let outcome = e10_simcore::run(async move {
        let workload = Rc::new(make_workload());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = workload.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let mut cfg = RunConfig::paper(
            hints_for(case, aggregators, cb_size),
            &format!("/gfs/{}", workload.name()),
        );
        cfg.files = scale.files();
        cfg.compute_delay = scale.compute_delay();
        cfg.include_last_sync = include_last_sync;
        cfg.verify = case.verifiable();
        run_workload(&tb, workload, &cfg).await
    });
    SweepPoint {
        combo: combo_label(aggregators, cb_size),
        aggregators,
        cb_size,
        case,
        outcome,
    }
}

/// Run the full `<aggregators>_<coll_bufsize>` sweep for one case on
/// the `E10_JOBS` worker pool.
pub fn run_sweep<W, F>(
    scale: Scale,
    make_workload: F,
    case: Case,
    include_last_sync: bool,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: Fn() -> W + Copy + Send + Sync + 'static,
{
    run_sweep_on(
        e10_simcore::pool::worker_threads(),
        scale,
        make_workload,
        case,
        include_last_sync,
    )
}

/// [`run_sweep`] with an explicit worker count (`1` forces the
/// sequential path; tests use this to compare job counts without
/// touching the environment).
pub fn run_sweep_on<W, F>(
    jobs: usize,
    scale: Scale,
    make_workload: F,
    case: Case,
    include_last_sync: bool,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: Fn() -> W + Copy + Send + Sync + 'static,
{
    run_grid(jobs, scale, make_workload, &[case], include_last_sync)
}

/// Run all three cases of a Fig. 4/7/9-style figure on the `E10_JOBS`
/// worker pool. Points come back in the sequential order (case, then
/// aggregators, then buffer size), so figures print byte-identically
/// at any job count.
pub fn run_full_sweep<W, F>(
    scale: Scale,
    make_workload: F,
    include_last_sync: bool,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: Fn() -> W + Copy + Send + Sync + 'static,
{
    run_full_sweep_on(
        e10_simcore::pool::worker_threads(),
        scale,
        make_workload,
        include_last_sync,
    )
}

/// [`run_full_sweep`] with an explicit worker count.
pub fn run_full_sweep_on<W, F>(
    jobs: usize,
    scale: Scale,
    make_workload: F,
    include_last_sync: bool,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: Fn() -> W + Copy + Send + Sync + 'static,
{
    run_grid(jobs, scale, make_workload, &Case::ALL, include_last_sync)
}

/// Shared sweep driver: one pool job per grid point, submitted in the
/// sequential iteration order. [`e10_simcore::pool::run_jobs_on`]
/// returns results keyed by submission index, which keeps the output
/// order — and therefore every printed byte — independent of how the
/// jobs interleave across threads.
fn run_grid<W, F>(
    jobs: usize,
    scale: Scale,
    make_workload: F,
    cases: &[Case],
    include_last_sync: bool,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: Fn() -> W + Copy + Send + Sync + 'static,
{
    let mut grid: Vec<e10_simcore::Job<SweepPoint>> = Vec::new();
    for &case in cases {
        for aggs in scale.aggregators() {
            for cb in scale.cb_sizes() {
                grid.push(Box::new(move || {
                    eprintln!("  running {} {} ...", combo_label(aggs, cb), case.label());
                    run_point(scale, make_workload, case, aggs, cb, include_last_sync)
                }));
            }
        }
    }
    e10_simcore::pool::run_jobs_on(jobs, grid)
}

/// The breakdown phases the Fig. 5/6/8/10 figures report, in column
/// order.
pub fn breakdown_phases() -> [e10_romio::Phase; 6] {
    use e10_romio::Phase;
    [
        Phase::ShuffleAlltoall,
        Phase::ShuffleWaitall,
        Phase::CollBufAssembly,
        Phase::Write,
        Phase::PostWrite,
        Phase::NotHiddenSync,
    ]
}

/// Format a Fig. 4/7/9-style bandwidth table: one row per combo, one
/// column per case. Returns exactly the bytes the sequential harness
/// has always printed, so job-count determinism can be asserted on
/// the string.
pub fn format_bandwidth_figure(title: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = write!(out, "{:<10}", "combo");
    for case in Case::ALL {
        let _ = write!(out, " {:>20}", case.label());
    }
    let _ = writeln!(out, "   [GB/s, Eq. 2]");
    let mut combos: Vec<String> = Vec::new();
    for p in points {
        if !combos.contains(&p.combo) {
            combos.push(p.combo.clone());
        }
    }
    for combo in combos {
        let _ = write!(out, "{combo:<10}");
        for case in Case::ALL {
            let gb = points
                .iter()
                .find(|p| p.combo == combo && p.case == case)
                .map(|p| p.outcome.gb_s());
            match gb {
                Some(v) => {
                    let _ = write!(out, " {v:>19.2}");
                }
                None => {
                    let _ = write!(out, " {:>20}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Format a Fig. 5/6/8/10-style breakdown: per combo, the aggregator-
/// rank mean seconds in every collective-write phase.
pub fn format_breakdown_figure(title: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = write!(out, "{:<10}", "combo");
    for ph in breakdown_phases() {
        let _ = write!(out, " {:>16}", ph.label());
    }
    let _ = writeln!(out, "   [aggregator-mean seconds]");
    for p in points {
        let _ = write!(out, "{:<10}", p.combo);
        for ph in breakdown_phases() {
            let _ = write!(out, " {:>16.3}", p.outcome.breakdown_aggs.mean(ph));
        }
        let _ = writeln!(out);
    }
    out
}

/// Print a Fig. 4/7/9-style bandwidth table.
pub fn print_bandwidth_figure(title: &str, points: &[SweepPoint]) {
    print!("{}", format_bandwidth_figure(title, points));
}

/// Print a Fig. 5/6/8/10-style breakdown table.
pub fn print_breakdown_figure(title: &str, points: &[SweepPoint]) {
    print!("{}", format_breakdown_figure(title, points));
}

impl SweepPoint {
    /// Machine-readable form of this point (used by `--json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("combo", Json::str(&self.combo)),
            ("aggregators", Json::U64(self.aggregators as u64)),
            ("cb_size", Json::U64(self.cb_size)),
            ("case", Json::str(self.case.label())),
            ("gb_s", Json::F64(self.outcome.gb_s())),
            ("sim_wall_secs", Json::F64(self.outcome.wall_time)),
            ("total_bytes", Json::U64(self.outcome.total_bytes)),
            (
                "breakdown_aggs_mean_secs",
                Json::obj(
                    breakdown_phases()
                        .iter()
                        .map(|ph| (ph.label(), Json::F64(self.outcome.breakdown_aggs.mean(*ph)))),
                ),
            ),
        ])
    }
}

/// The `--json` document for a figure: `{figure, title, points}`.
pub fn figure_json(figure: &str, title: &str, points: &[SweepPoint]) -> Json {
    Json::obj([
        ("figure", Json::str(figure)),
        ("title", Json::str(title)),
        ("points", Json::arr(points.iter().map(SweepPoint::to_json))),
    ])
}

/// Emit a bandwidth figure: JSON when `--json` was passed, the table
/// otherwise.
pub fn emit_bandwidth_figure(figure: &str, title: &str, points: &[SweepPoint]) {
    if json_mode() {
        println!("{}", figure_json(figure, title, points).render());
    } else {
        print_bandwidth_figure(title, points);
    }
}

/// Emit a breakdown figure: JSON when `--json` was passed, the table
/// otherwise.
pub fn emit_breakdown_figure(figure: &str, title: &str, points: &[SweepPoint]) {
    if json_mode() {
        println!("{}", figure_json(figure, title, points).render());
    } else {
        print_breakdown_figure(title, points);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_for_cases_differ_only_in_cache_keys() {
        let d = hints_for(Case::Disabled, 8, 4 << 20);
        let e = hints_for(Case::Enabled, 8, 4 << 20);
        let t = hints_for(Case::Theoretical, 8, 4 << 20);
        assert_eq!(d.get("cb_nodes").as_deref(), Some("8"));
        assert!(d.get("e10_cache").is_none());
        assert_eq!(e.get("e10_cache").as_deref(), Some("enable"));
        assert_eq!(
            e.get("e10_cache_flush_flag").as_deref(),
            Some("flush_immediate")
        );
        assert_eq!(t.get("e10_cache_flush_flag").as_deref(), Some("flush_none"));
        assert!(!Case::Theoretical.verifiable());
        assert!(Case::Enabled.verifiable());
    }

    #[test]
    fn combo_labels_match_paper_format() {
        assert_eq!(combo_label(8, 4 << 20), "8_4M");
        assert_eq!(combo_label(64, 64 << 20), "64_64M");
        assert_eq!(combo_label(2, 8 << 10), "2_8K");
    }

    #[test]
    fn reduced_scales_are_consistent() {
        for s in [Scale::Quick, Scale::Test] {
            assert_eq!(s.collperf().procs(), s.procs());
            assert_eq!(s.flashio().procs(), s.procs());
            assert_eq!(s.ior().procs(), s.procs());
            assert!(s.aggregators().iter().all(|&a| a <= s.procs()));
        }
    }

    #[test]
    fn full_scale_matches_paper() {
        let s = Scale::Full;
        assert_eq!(s.procs(), 512);
        assert_eq!(s.nodes(), 64);
        assert_eq!(s.aggregators(), vec![8, 16, 32, 64]);
        assert_eq!(s.cb_sizes(), vec![4 << 20, 16 << 20, 64 << 20]);
        assert_eq!(s.files(), 4);
        assert_eq!(s.collperf().file_size(), 32 << 30);
        assert_eq!(s.ior().file_size(), 32 << 30);
    }

    /// A miniature end-to-end sweep point (exercises the whole harness
    /// path in seconds).
    #[test]
    fn run_point_smoke() {
        let p = run_point(
            Scale::Quick,
            || CollPerf {
                grid: [2, 2, 2],
                side: 2,
                chunk: 4 << 10,
            },
            Case::Enabled,
            2,
            1 << 20,
            false,
        );
        assert!(p.outcome.bandwidth > 0.0);
        assert_eq!(p.outcome.phases.len(), 4);
    }
}
