//! Tables I and II (the ROMIO collective-I/O hints and the proposed
//! E10 MPI-IO hint extensions) as resolved by this implementation.
//!
//! The content lives in the library so the `tables` binary and the
//! golden-figure regression test render the same bytes: the binary
//! prints what [`tables_text`] / [`tables_json`] produce, and the test
//! pins that output against the committed `results/tables.txt`.

use crate::Json;
use e10_mpisim::Info;
use e10_romio::RomioHints;
use std::fmt::Write as _;

/// TABLE I rows: the standard ROMIO collective hints.
pub const TABLE1: [(&str, &str); 4] = [
    ("romio_cb_write", "enable or disable collective writes"),
    ("romio_cb_read", "enable or disable collective reads"),
    ("cb_buffer_size", "set the collective buffer size [bytes]"),
    ("cb_nodes", "set the number of aggregator processes"),
];

/// TABLE II rows: the paper's proposed E10 hint extensions.
pub const TABLE2: [(&str, &str); 5] = [
    ("e10_cache", "enable, disable, coherent"),
    ("e10_cache_path", "cache directory pathname"),
    ("e10_cache_flush_flag", "flush_immediate, flush_onclose"),
    ("e10_cache_discard_flag", "enable, disable"),
    ("ind_wr_buffer_size", "synchronisation buffer size [bytes]"),
];

/// Hints this implementation adds beyond the paper's two tables.
pub const EXTENSIONS: [(&str, &str); 17] = [
    (
        "e10_two_phase",
        "stock, extended, node_agg (collective-write algorithm)",
    ),
    (
        "e10_cache_read",
        "enable, disable (§VI future work: cache reads)",
    ),
    (
        "e10_cache_evict",
        "enable, disable (§III: streaming space management)",
    ),
    (
        "e10_cache_hiwater",
        "0..=100 percent (§III: multi-job admission high watermark)",
    ),
    (
        "e10_cache_lowater",
        "0..=100 percent (§III: eviction drains occupancy to here)",
    ),
    (
        "e10_sync_policy",
        "greedy, backoff (§III: congestion-aware sync)",
    ),
    (
        "e10_fd_partition",
        "even, aligned (footnote 1: BeeGFS driver alignment)",
    ),
    (
        "e10_cache_class",
        "ssd, nvm, hybrid (device class backing the cache)",
    ),
    (
        "e10_nvm_capacity",
        "bytes (hybrid: NVM front-tier budget; 0 = whole mount)",
    ),
    (
        "e10_nvm_threshold",
        "bytes (writes at most this take the byte-granular NVM path)",
    ),
    (
        "e10_cache_sync_depth",
        "extent count (bound on queued sync extents; 0 = unbounded)",
    ),
    (
        "e10_coll_timeout",
        "milliseconds (crash-tolerant collectives; 0 = off)",
    ),
    (
        "e10_pfs_max_retries",
        "count (client I/O RPC retries; unset = PFS default)",
    ),
    (
        "e10_pfs_retry_base_us",
        "microseconds (client retry backoff base; unset = PFS default)",
    ),
    ("cb_config_list", "\"*:N\" (aggregators per node)"),
    ("romio_no_indep_rw", "true, false (deferred open)"),
    (
        "romio_ds_write",
        "enable, disable, automatic (data sieving)",
    ),
];

/// The paper's experiment configuration (§IV) as an Info object.
pub fn paper_info() -> Info {
    Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("cb_nodes", "64"),
        ("cb_buffer_size", "4M"),
        ("striping_unit", "4M"),
        ("striping_factor", "4"),
        ("ind_wr_buffer_size", "512K"),
        ("e10_cache", "enable"),
        ("e10_cache_path", "/scratch"),
        ("e10_cache_flush_flag", "flush_immediate"),
        ("e10_cache_discard_flag", "enable"),
    ])
}

fn resolve() -> (RomioHints, RomioHints) {
    let defaults = RomioHints::parse(&Info::new()).expect("defaults must parse");
    let paper = RomioHints::parse(&paper_info()).expect("paper hints must parse");
    (defaults, paper)
}

/// The complete text rendition — exactly the bytes committed as
/// `results/tables.txt`.
pub fn tables_text() -> String {
    let (defaults, paper) = resolve();
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I: Collective I/O hints in ROMIO");
    let _ = writeln!(out, "{:<24} Description", "Hint");
    for (hint, desc) in TABLE1 {
        let _ = writeln!(out, "{hint:<24} {desc}");
    }

    let _ = writeln!(out, "\nTABLE II: Proposed MPI-IO hints extensions");
    let _ = writeln!(out, "{:<24} Value", "Hint");
    for (hint, vals) in TABLE2 {
        let _ = writeln!(out, "{hint:<24} {vals}");
    }

    let _ = writeln!(
        out,
        "\nImplementation extensions beyond the paper's tables:"
    );
    for (hint, vals) in EXTENSIONS {
        let _ = writeln!(out, "{hint:<24} {vals}");
    }

    let _ = writeln!(
        out,
        "\nResolved defaults (MPI_File_get_info on an empty Info):"
    );
    for (k, v) in defaults.to_pairs() {
        let _ = writeln!(out, "  {k:<24} = {v}");
    }

    let _ = writeln!(out, "\nPaper configuration resolved:");
    for (k, v) in paper.to_pairs() {
        let _ = writeln!(out, "  {k:<24} = {v}");
    }
    out
}

/// The `--json` document.
pub fn tables_json() -> Json {
    let (defaults, paper) = resolve();
    let hint_table = |rows: &[(&str, &str)]| {
        Json::arr(rows.iter().map(|&(hint, desc)| {
            Json::obj([("hint", Json::str(hint)), ("description", Json::str(desc))])
        }))
    };
    let resolved = |h: &RomioHints| {
        Json::obj(
            h.to_pairs()
                .into_iter()
                .map(|(k, v)| (k, Json::Str(v)))
                .collect::<Vec<_>>(),
        )
    };
    Json::obj([
        ("figure", Json::str("tables")),
        ("table1_romio_hints", hint_table(&TABLE1)),
        ("table2_e10_hints", hint_table(&TABLE2)),
        ("implementation_extensions", hint_table(&EXTENSIONS)),
        ("resolved_defaults", resolved(&defaults)),
        ("resolved_paper_config", resolved(&paper)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_extension_hint_is_resolvable() {
        // Each advertised extension must be a hint the parser actually
        // understands (set it to a plausible value and parse).
        for (hint, _) in EXTENSIONS {
            let value = match hint {
                "cb_config_list" => "*:2",
                "romio_no_indep_rw" => "true",
                "romio_ds_write" => "automatic",
                "e10_sync_policy" => "backoff",
                "e10_fd_partition" => "even",
                "e10_two_phase" => "node_agg",
                "e10_cache_class" => "hybrid",
                "e10_nvm_capacity" => "64M",
                "e10_nvm_threshold" => "16K",
                "e10_cache_sync_depth" => "8",
                "e10_coll_timeout" => "40",
                "e10_pfs_max_retries" => "4",
                "e10_pfs_retry_base_us" => "2000",
                "e10_cache_hiwater" | "e10_cache_lowater" => "50",
                _ => "enable",
            };
            let info = Info::from_pairs([(hint, value)]);
            RomioHints::parse(&info)
                .unwrap_or_else(|e| panic!("extension hint {hint} rejected: {e:?}"));
        }
    }

    #[test]
    fn text_and_json_agree_on_resolved_hints() {
        let text = tables_text();
        let doc = tables_json();
        let Some(Json::Obj(pairs)) = doc.get("resolved_defaults").cloned() else {
            panic!("resolved_defaults must be an object");
        };
        for (k, v) in pairs {
            let Json::Str(v) = v else {
                panic!("hint values are strings")
            };
            assert!(
                text.contains(&format!("{k:<24} = {v}")),
                "default {k} = {v} missing from the text table"
            );
        }
    }
}
