//! Ablation: compute-phase jitter (OS noise, load imbalance).
//!
//! The paper observes — discussing its Fig. 8 outlier and the Damaris
//! line of work — that "the effect of global synchronisation when
//! using the cache can be even more severe, due to the much higher
//! bandwidth achievable". With per-rank compute jitter, every rank
//! arrives at the next collective staggered; the arrival spread is a
//! fixed absolute cost, so the faster the I/O itself, the larger the
//! *relative* damage. This sweep quantifies that. `--json` for
//! machine output.

use std::rc::Rc;

use e10_bench::{hints_for, json_mode, Case, Json, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::{run_workload, RunConfig, Workload};

fn run_one(scale: Scale, case: Case, cv: f64) -> f64 {
    e10_simcore::run(async move {
        let w = Rc::new(scale.collperf());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let aggs = *scale.aggregators().last().unwrap();
        let mut cfg = RunConfig::paper(hints_for(case, aggs, 4 << 20), "/gfs/jitter");
        cfg.files = 3;
        cfg.compute_delay = scale.compute_delay();
        cfg.compute_jitter_cv = cv;
        cfg.verify = case.verifiable();
        run_workload(&tb, w, &cfg).await.gb_s()
    })
}

fn main() {
    let scale = Scale::from_env();
    let base_enabled = run_one(scale, Case::Enabled, 0.0);
    let base_disabled = run_one(scale, Case::Disabled, 0.0);
    let rows: Vec<(f64, f64, f64)> = [0.0, 0.05, 0.15, 0.3]
        .into_iter()
        .map(|cv| {
            let dis = if cv == 0.0 {
                base_disabled
            } else {
                run_one(scale, Case::Disabled, cv)
            };
            let en = if cv == 0.0 {
                base_enabled
            } else {
                run_one(scale, Case::Enabled, cv)
            };
            (cv, dis, en)
        })
        .collect();

    if json_mode() {
        let doc = Json::obj([
            ("figure", Json::str("ablation_compute_jitter")),
            ("scale", Json::str(scale.name())),
            (
                "rows",
                Json::arr(rows.iter().map(|&(cv, dis, en)| {
                    Json::obj([
                        ("jitter_cv", Json::F64(cv)),
                        ("disabled_gb_s", Json::F64(dis)),
                        (
                            "disabled_retained_pct",
                            Json::F64(100.0 * dis / base_disabled),
                        ),
                        ("enabled_gb_s", Json::F64(en)),
                        ("enabled_retained_pct", Json::F64(100.0 * en / base_enabled)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("Compute-jitter ablation, coll_perf, max aggregators:");
    println!(
        "{:<10} {:>15} {:>13} {:>15} {:>13}",
        "jitter cv", "disabled [GB/s]", "retained [%]", "enabled [GB/s]", "retained [%]"
    );
    for (cv, dis, en) in rows {
        println!(
            "{:<10} {:>15.2} {:>12.1}% {:>15.2} {:>12.1}%",
            cv,
            dis,
            100.0 * dis / base_disabled,
            en,
            100.0 * en / base_enabled
        );
    }
    println!(
        "\nA few percent of compute jitter costs the cached configuration\n\
         a disproportionate share of its advantage: the arrival spread\n\
         is absolute, and the cached write it delays is tiny — exactly\n\
         the paper's warning that global synchronisation bites harder\n\
         at NVM speeds."
    );
}
