//! Ablation: file-domain partitioning strategy (DESIGN.md §3.2).
//!
//! Compares the classic even byte split (`e10_fd_partition = even`)
//! against the stripe-aligned partitioning of the paper's BeeGFS ADIO
//! driver (footnote 1: "detect and align file domains to stripe
//! boundaries thus avoiding stripe collisions"). Misaligned domains
//! make neighbouring aggregators contend on the file system's
//! stripe-granular extent locks.
//!
//! Note: the paper's own configuration (32 GB files, 4 MB stripes,
//! power-of-two aggregator counts) divides evenly, so even
//! partitioning is accidentally aligned there. This ablation uses a
//! 5 MB stripe unit, which no power-of-two domain size divides, to
//! expose the contention class the aligned strategy removes.

use std::rc::Rc;

use e10_bench::{paper_base_hints, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::Workload;
use e10_workloads::{run_workload, RunConfig};

fn main() {
    let scale = Scale::from_env();
    println!("FD-strategy ablation, coll_perf, cache disabled");
    println!(
        "(single-round configuration: collective buffer covers the whole\n\
         file domain, so neighbouring aggregators write their shared\n\
         boundary stripes concurrently)"
    );
    println!(
        "{:<10} {:>14} {:>14} {:>22}",
        "combo", "even [GB/s]", "aligned [GB/s]", "lock contention even/aligned"
    );
    let mut agg_sweep = scale.aggregators();
    // Beyond the paper's sweep: denser aggregator sets shrink the file
    // domains, making shared boundary stripes a larger fraction of the
    // work.
    agg_sweep.push(scale.procs() / 2);
    agg_sweep.push(scale.procs());
    for aggs in agg_sweep {
        // One round per file domain: cb >= fd size.
        {
            let cb: u64 = 64 << 30;
            let mut row = Vec::new();
            for strategy in ["even", "aligned"] {
                let out = e10_simcore::run(async move {
                    let w = Rc::new(scale.collperf());
                    let mut spec = TestbedSpec::deep_er();
                    spec.procs = w.procs();
                    spec.nodes = scale.nodes();
                    let tb = spec.build();
                    let hints = paper_base_hints();
                    hints.set("cb_nodes", &aggs.to_string());
                    hints.set("cb_buffer_size", &cb.to_string());
                    hints.set("e10_fd_partition", strategy);
                    // A stripe size that does NOT divide the even
                    // domain size (see module docs).
                    hints.set("striping_unit", "5242880");
                    let mut cfg = RunConfig::paper(hints, "/gfs/abl_fd");
                    cfg.files = 2;
                    cfg.compute_delay = scale.compute_delay();
                    let out = run_workload(&tb, w, &cfg).await;
                    let (grants, contended) = tb.pfs.lock_contention();
                    (out.gb_s(), grants, contended)
                });
                row.push(out);
            }
            println!(
                "{:<10} {:>14.2} {:>14.2} {:>12}/{:<12}",
                format!("{aggs}_1round"),
                row[0].0,
                row[1].0,
                row[0].2,
                row[1].2
            );
        }
    }

    contention_stress();
}

/// A 64-rank stress case where boundary-stripe lock contention is
/// visible: at 32 GB scale the fair-share fabric disperses the
/// differently-sized boundary partials so far apart in time that their
/// lock intervals no longer overlap, which is why the sweep above shows
/// zero contention either way.
fn contention_stress() {
    println!("\ncontention stress (64 ranks, 256 MB, 8 aggregators):");
    println!(
        "{:<10} {:>12} {:>24}",
        "strategy", "BW [GB/s]", "lock grants contended"
    );
    for strategy in ["even", "aligned"] {
        let (bw, contended) = e10_simcore::run(async move {
            let w = Rc::new(e10_workloads::CollPerf {
                grid: [4, 4, 4],
                side: 4,
                chunk: 64 << 10,
            });
            let mut spec = TestbedSpec::deep_er();
            spec.procs = w.procs();
            spec.nodes = 8;
            let tb = spec.build();
            let hints = paper_base_hints();
            hints.set("cb_nodes", "8");
            hints.set("cb_buffer_size", &(64u64 << 30).to_string());
            hints.set("e10_fd_partition", strategy);
            hints.set("striping_unit", "5242880");
            let mut cfg = RunConfig::paper(hints, "/gfs/abl_stress");
            cfg.files = 2;
            cfg.compute_delay = e10_simcore::SimDuration::from_secs(2);
            let out = run_workload(&tb, w, &cfg).await;
            let (_, contended) = tb.pfs.lock_contention();
            (out.gb_s(), contended)
        });
        println!("{:<10} {:>12.2} {:>24}", strategy, bw, contended);
    }
}
