//! Ablation: file-domain partitioning strategy (DESIGN.md §3.2).
//!
//! Compares the classic even byte split (`e10_fd_partition = even`)
//! against the stripe-aligned partitioning of the paper's BeeGFS ADIO
//! driver (footnote 1: "detect and align file domains to stripe
//! boundaries thus avoiding stripe collisions"). Misaligned domains
//! make neighbouring aggregators contend on the file system's
//! stripe-granular extent locks.
//!
//! Note: the paper's own configuration (32 GB files, 4 MB stripes,
//! power-of-two aggregator counts) divides evenly, so even
//! partitioning is accidentally aligned there. This ablation uses a
//! 5 MB stripe unit, which no power-of-two domain size divides, to
//! expose the contention class the aligned strategy removes.
//! `--json` for machine output.

use std::rc::Rc;

use e10_bench::{json_mode, paper_base_hints, Json, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::Workload;
use e10_workloads::{run_workload, RunConfig};

fn run_strategy(scale: Scale, aggs: usize, strategy: &'static str) -> (f64, u64, u64) {
    e10_simcore::run(async move {
        let w = Rc::new(scale.collperf());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let hints = paper_base_hints();
        hints.set("cb_nodes", &aggs.to_string());
        // One round per file domain: cb >= fd size.
        hints.set("cb_buffer_size", &(64u64 << 30).to_string());
        hints.set("e10_fd_partition", strategy);
        // A stripe size that does NOT divide the even domain size
        // (see module docs).
        hints.set("striping_unit", "5242880");
        let mut cfg = RunConfig::paper(hints, "/gfs/abl_fd");
        cfg.files = 2;
        cfg.compute_delay = scale.compute_delay();
        let out = run_workload(&tb, w, &cfg).await;
        let (grants, contended) = tb.pfs.lock_contention();
        (out.gb_s(), grants, contended)
    })
}

/// A 64-rank stress case where boundary-stripe lock contention is
/// visible: at 32 GB scale the fair-share fabric disperses the
/// differently-sized boundary partials so far apart in time that their
/// lock intervals no longer overlap, which is why the main sweep shows
/// zero contention either way.
fn run_stress(strategy: &'static str) -> (f64, u64) {
    e10_simcore::run(async move {
        let w = Rc::new(e10_workloads::CollPerf {
            grid: [4, 4, 4],
            side: 4,
            chunk: 64 << 10,
        });
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = 8;
        let tb = spec.build();
        let hints = paper_base_hints();
        hints.set("cb_nodes", "8");
        hints.set("cb_buffer_size", &(64u64 << 30).to_string());
        hints.set("e10_fd_partition", strategy);
        hints.set("striping_unit", "5242880");
        let mut cfg = RunConfig::paper(hints, "/gfs/abl_stress");
        cfg.files = 2;
        cfg.compute_delay = e10_simcore::SimDuration::from_secs(2);
        let out = run_workload(&tb, w, &cfg).await;
        let (_, contended) = tb.pfs.lock_contention();
        (out.gb_s(), contended)
    })
}

fn main() {
    let scale = Scale::from_env();
    let mut agg_sweep = scale.aggregators();
    // Beyond the paper's sweep: denser aggregator sets shrink the file
    // domains, making shared boundary stripes a larger fraction of the
    // work.
    agg_sweep.push(scale.procs() / 2);
    agg_sweep.push(scale.procs());

    type StrategyRow = (f64, u64, u64);
    let rows: Vec<(usize, StrategyRow, StrategyRow)> = agg_sweep
        .iter()
        .map(|&aggs| {
            (
                aggs,
                run_strategy(scale, aggs, "even"),
                run_strategy(scale, aggs, "aligned"),
            )
        })
        .collect();
    let stress: Vec<(&'static str, f64, u64)> = ["even", "aligned"]
        .into_iter()
        .map(|s| {
            let (bw, contended) = run_stress(s);
            (s, bw, contended)
        })
        .collect();

    if json_mode() {
        let doc = Json::obj([
            ("figure", Json::str("ablation_fd_strategy")),
            ("scale", Json::str(scale.name())),
            (
                "rows",
                Json::arr(rows.iter().map(|&(aggs, even, aligned)| {
                    Json::obj([
                        ("aggregators", Json::U64(aggs as u64)),
                        ("even_gb_s", Json::F64(even.0)),
                        ("aligned_gb_s", Json::F64(aligned.0)),
                        ("even_contended_locks", Json::U64(even.2)),
                        ("aligned_contended_locks", Json::U64(aligned.2)),
                    ])
                })),
            ),
            (
                "contention_stress",
                Json::arr(stress.iter().map(|&(s, bw, contended)| {
                    Json::obj([
                        ("strategy", Json::str(s)),
                        ("gb_s", Json::F64(bw)),
                        ("contended_locks", Json::U64(contended)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("FD-strategy ablation, coll_perf, cache disabled");
    println!(
        "(single-round configuration: collective buffer covers the whole\n\
         file domain, so neighbouring aggregators write their shared\n\
         boundary stripes concurrently)"
    );
    println!(
        "{:<10} {:>14} {:>14} {:>22}",
        "combo", "even [GB/s]", "aligned [GB/s]", "lock contention even/aligned"
    );
    for (aggs, even, aligned) in rows {
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>12}/{:<12}",
            format!("{aggs}_1round"),
            even.0,
            aligned.0,
            even.2,
            aligned.2
        );
    }
    println!("\ncontention stress (64 ranks, 256 MB, 8 aggregators):");
    println!(
        "{:<10} {:>12} {:>24}",
        "strategy", "BW [GB/s]", "lock grants contended"
    );
    for (s, bw, contended) in stress {
        println!("{:<10} {:>12.2} {:>24}", s, bw, contended);
    }
}
