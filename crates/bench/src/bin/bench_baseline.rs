//! Machine-readable performance baseline for the sweep engine.
//!
//! Runs the fig4-shaped coll_perf sweep twice — once on a single
//! worker (`E10_JOBS=1` equivalent) and once on the full worker pool —
//! and emits `BENCH_sweep.json` with host wall-clock per grid point,
//! the parallel speedup, and the sim-time invariants (every point's
//! virtual wall time and bandwidth must be bit-identical across job
//! counts, and the rendered figure byte-identical).
//!
//! `bench_baseline [--smoke] [--json] [--out PATH] [--jobs N]`
//!
//! * `--smoke` — test scale, used by `scripts/ci.sh` as the
//!   parallel-vs-sequential divergence gate (exit 1 on divergence).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_sweep.json`; `-` skips the file).
//! * `--jobs N` — parallel worker count (default `E10_JOBS` /
//!   available parallelism).
//! * `--json` — also print the document to stdout.
//!
//! Scale follows `E10_SCALE` but defaults to `quick` (not `full`):
//! this is a perf probe, not a figure regeneration.

use std::time::Instant;

use e10_bench::{format_bandwidth_figure, json_mode, run_point, Json, Scale, SweepPoint};
use e10_simcore::pool::{run_jobs_on, worker_threads};
use e10_simcore::Job;

/// One timed grid job per fig4 point, in sequential order.
fn make_jobs(scale: Scale) -> Vec<Job<(SweepPoint, f64)>> {
    let mut jobs: Vec<Job<(SweepPoint, f64)>> = Vec::new();
    for case in e10_bench::Case::ALL {
        for aggs in scale.aggregators() {
            for cb in scale.cb_sizes() {
                jobs.push(Box::new(move || {
                    let t0 = Instant::now();
                    let p = run_point(scale, move || scale.collperf(), case, aggs, cb, false);
                    (p, t0.elapsed().as_secs_f64())
                }));
            }
        }
    }
    jobs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let jobs_n = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(worker_threads)
        .max(1);
    let scale = if smoke {
        Scale::Test
    } else if std::env::var("E10_SCALE").is_ok() {
        Scale::from_env()
    } else {
        Scale::Quick
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "bench_baseline: scale={} jobs={jobs_n} host_cpus={host_cpus}",
        scale.name()
    );
    let t_seq = Instant::now();
    let seq = run_jobs_on(1, make_jobs(scale));
    let seq_secs = t_seq.elapsed().as_secs_f64();
    let t_par = Instant::now();
    let par = run_jobs_on(jobs_n, make_jobs(scale));
    let par_secs = t_par.elapsed().as_secs_f64();

    let (seq_points, seq_times): (Vec<SweepPoint>, Vec<f64>) = seq.into_iter().unzip();
    let (par_points, par_times): (Vec<SweepPoint>, Vec<f64>) = par.into_iter().unzip();

    // Invariants: virtual time must not depend on host threading.
    let mut sim_time_equal = true;
    for (a, b) in seq_points.iter().zip(par_points.iter()) {
        if a.outcome.wall_time.to_bits() != b.outcome.wall_time.to_bits()
            || a.outcome.gb_s().to_bits() != b.outcome.gb_s().to_bits()
        {
            sim_time_equal = false;
            eprintln!(
                "DIVERGENCE at {} {}: seq wall={} bw={} vs par wall={} bw={}",
                a.combo,
                a.case.label(),
                a.outcome.wall_time,
                a.outcome.gb_s(),
                b.outcome.wall_time,
                b.outcome.gb_s()
            );
        }
    }
    let title = "bench_baseline coll_perf sweep";
    let byte_identical =
        format_bandwidth_figure(title, &seq_points) == format_bandwidth_figure(title, &par_points);

    // Single-run probe: the hot-path cost of one simulation, immune to
    // sweep-level parallelism — guards against single-run slowdowns.
    let single_point = |_: usize| {
        let aggs = *scale.aggregators().last().unwrap();
        let cb = scale.cb_sizes()[0];
        let t0 = Instant::now();
        let p = run_point(
            scale,
            move || scale.collperf(),
            e10_bench::Case::Enabled,
            aggs,
            cb,
            false,
        );
        (t0.elapsed().as_secs_f64(), p.outcome.wall_time)
    };
    let mut singles: Vec<f64> = (0..3).map(|i| single_point(i).0).collect();
    singles.sort_by(f64::total_cmp);
    let single_median = singles[singles.len() / 2];

    let speedup = if par_secs > 0.0 {
        seq_secs / par_secs
    } else {
        0.0
    };
    let doc = Json::obj([
        ("bench", Json::str("sweep_baseline")),
        ("workload", Json::str("coll_perf")),
        ("scale", Json::str(scale.name())),
        ("host_cpus", Json::U64(host_cpus as u64)),
        ("jobs", Json::U64(jobs_n as u64)),
        ("sequential_host_secs", Json::F64(seq_secs)),
        ("parallel_host_secs", Json::F64(par_secs)),
        ("speedup", Json::F64(speedup)),
        (
            "invariants",
            Json::obj([
                ("figure_byte_identical", Json::Bool(byte_identical)),
                ("sim_time_equal", Json::Bool(sim_time_equal)),
            ]),
        ),
        (
            "single_run",
            Json::obj([
                ("samples", Json::U64(singles.len() as u64)),
                ("median_host_secs", Json::F64(single_median)),
            ]),
        ),
        (
            "points",
            Json::arr(
                seq_points
                    .iter()
                    .zip(seq_times.iter().zip(par_times.iter()))
                    .map(|(p, (s_secs, p_secs))| {
                        Json::obj([
                            ("combo", Json::str(&p.combo)),
                            ("case", Json::str(p.case.label())),
                            ("gb_s", Json::F64(p.outcome.gb_s())),
                            ("sim_wall_secs", Json::F64(p.outcome.wall_time)),
                            ("seq_host_secs", Json::F64(*s_secs)),
                            ("par_host_secs", Json::F64(*p_secs)),
                        ])
                    }),
            ),
        ),
    ]);
    let rendered = doc.pretty();
    if out_path != "-" {
        std::fs::write(&out_path, format!("{rendered}\n")).expect("write baseline json");
        eprintln!("bench_baseline: wrote {out_path}");
    }
    if json_mode() {
        println!("{rendered}");
    } else {
        println!(
            "sequential {seq_secs:.2}s, parallel ({jobs_n} jobs) {par_secs:.2}s, \
             speedup {speedup:.2}x on {host_cpus} cpu(s); single run median {single_median:.3}s"
        );
        println!(
            "figure byte-identical: {byte_identical}; sim time bit-equal: {sim_time_equal} \
             ({} points)",
            seq_points.len()
        );
    }
    if !byte_identical || !sim_time_equal {
        eprintln!("bench_baseline: parallel sweep DIVERGED from sequential");
        std::process::exit(1);
    }
}
