//! Figure 9: IOR perceived write bandwidth. Unlike coll_perf and
//! Flash-IO, IOR charges the non-hidden synchronisation of the LAST
//! write phase (paper §IV-D), which caps the cache-enabled peak.
use e10_bench::{print_bandwidth_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut points = Vec::new();
    for case in Case::ALL {
        eprintln!("case {} ...", case.label());
        points.extend(run_sweep(scale, move || scale.ior(), case, true));
    }
    print_bandwidth_figure(
        "Fig. 9 — IOR perceived bandwidth, incl. last-phase sync",
        &points,
    );
}
