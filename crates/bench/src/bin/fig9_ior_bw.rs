//! Figure 9: IOR perceived write bandwidth. Unlike coll_perf and
//! Flash-IO, IOR charges the non-hidden synchronisation of the LAST
//! write phase (paper §IV-D), which caps the cache-enabled peak.
//! Runs on the `E10_JOBS` worker pool; `--json` for machine output.
use e10_bench::{emit_bandwidth_figure, run_full_sweep, Scale};
use e10_workloads::Ior;

fn main() {
    let scale = Scale::from_env();
    let points = run_full_sweep(scale, move || scale.workload::<Ior>(), true);
    emit_bandwidth_figure(
        "fig9",
        "Fig. 9 — IOR perceived bandwidth, incl. last-phase sync",
        &points,
    );
}
