//! Figure 7: Flash-IO perceived write bandwidth for all combinations.
use e10_bench::{print_bandwidth_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut points = Vec::new();
    for case in Case::ALL {
        eprintln!("case {} ...", case.label());
        points.extend(run_sweep(scale, move || scale.flashio(), case, false));
    }
    print_bandwidth_figure(
        "Fig. 7 — Flash-IO perceived bandwidth (aggregators_collbuf)",
        &points,
    );
}
