//! Figure 7: Flash-IO perceived write bandwidth for all combinations.
//! Runs on the `E10_JOBS` worker pool; `--json` for machine output.
use e10_bench::{emit_bandwidth_figure, run_full_sweep, Scale};
use e10_workloads::FlashIo;

fn main() {
    let scale = Scale::from_env();
    let points = run_full_sweep(scale, move || scale.workload::<FlashIo>(), false);
    emit_bandwidth_figure(
        "fig7",
        "Fig. 7 — Flash-IO perceived bandwidth (aggregators_collbuf)",
        &points,
    );
}
