//! Fault matrix: collective-write bandwidth under injected faults,
//! reported as overhead against the fault-free baseline, plus one
//! node-crash + journal-recovery case. Not part of the figure set —
//! this is the resilience probe behind `scripts/ci.sh`'s smoke gate.
//!
//! `fault_sweep [--smoke] [--json]` — `--smoke` (or `E10_SCALE=quick`)
//! shrinks the sweep to seconds for CI. The 2×4 cache × fault matrix
//! runs on the `E10_JOBS` worker pool (each cell is an independent
//! simulation; the fault plan is built inside the job so `Rc`-based
//! state stays on its thread). Exit status is non-zero if any faulted
//! run fails verification or the crash recovery loses data.
use std::rc::Rc;

use e10_bench::{json_mode, Json};
use e10_faultsim::{always, FaultPlan};
use e10_mpisim::Info;
use e10_romio::TestbedSpec;
use e10_simcore::{SimDuration, SimTime};
use e10_workloads::{run_crash_recovery, run_workload, CollPerf, CrashConfig, RunConfig, Workload};

fn hints(cache: bool) -> Info {
    let h = Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("cb_buffer_size", "8K"),
        ("striping_unit", "8K"),
    ]);
    if cache {
        h.set("e10_cache", "enable");
        h.set("e10_cache_discard_flag", "enable");
    }
    h
}

/// The fault kinds of the matrix. Probabilities are low enough that
/// retries absorb every RPC failure (exhaustion needs five misses in a
/// row) — faulted runs must still verify.
fn plan(kind: &str, fault_seed: u64) -> FaultPlan {
    let p = FaultPlan::new(fault_seed);
    match kind {
        "ssd_stall" => p.ssd_stall(1, always(), 0.5, SimDuration::from_micros(300)),
        "link_fault" => p.link_fault(None, None, always(), 0.05, SimDuration::from_micros(50)),
        "rpc_fail" => p.rpc_fail(None, always(), 0.25),
        other => panic!("unknown fault kind {other}"),
    }
}

/// One matrix cell. `kind = None` is the fault-free baseline; the
/// plan is constructed inside the simulation's own thread.
fn sweep_once(
    smoke: bool,
    cache: bool,
    kind: Option<&'static str>,
    fault_seed: u64,
) -> (f64, f64, u64) {
    let files = if smoke { 1 } else { 4 };
    let path = if kind.is_some() {
        "/gfs/fsweep"
    } else {
        "/gfs/fsweep_ff"
    }
    .to_string();
    let out = e10_simcore::run(async move {
        let faults = match kind {
            Some(k) => plan(k, fault_seed),
            None => FaultPlan::default(),
        };
        let w = Rc::new(CollPerf::tiny([2, 2, 2])) as Rc<dyn Workload>;
        let mut spec = TestbedSpec::small(8, 4);
        // Keep the page cache small enough that cached writes drain to
        // the node SSD during the run — otherwise `ssd_stall` has no
        // injection point to hit at this workload size.
        spec.pagecache.dirty_limit = 1 << 10;
        let tb = spec.build();
        let mut cfg = RunConfig::paper(hints(cache), &path);
        cfg.files = files;
        cfg.compute_delay = SimDuration::from_secs(2);
        cfg.include_last_sync = true;
        cfg.faults = faults;
        run_workload(&tb, w, &cfg).await
    });
    (out.gb_s(), out.wall_time, out.faults_injected)
}

struct CrashOutcome {
    ok: bool,
    crash_secs: f64,
    recovery_secs: f64,
    requeued: u64,
    killed: usize,
    base_wall: f64,
}

/// Crash + journal recovery: virtual cost of the recovery pass against
/// the wall time of a fault-free run of the same workload.
fn crash_case(fault_seed: u64) -> CrashOutcome {
    // Fault-free wall of the exact write sequence the crash harness
    // replays (collective writes + per-rank sync).
    let base_wall = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::tiny([2, 2, 2]));
        let tb = TestbedSpec::small(w.procs(), 2).build();
        let handles: Vec<_> = tb
            .ctxs()
            .into_iter()
            .map(|ctx| {
                let w = Rc::clone(&w);
                e10_simcore::spawn(async move {
                    let f =
                        e10_romio::AdioFile::open(&ctx, "/gfs/fsweep_base", &crash_hints(), true)
                            .await
                            .unwrap();
                    for view in &w.writes(ctx.comm.rank()) {
                        let r = e10_romio::write_at_all(
                            &f,
                            view,
                            &e10_romio::DataSpec::FileGen { seed: fault_seed },
                        )
                        .await;
                        assert_eq!(r.error_code, 0);
                    }
                    f.file_sync().await;
                })
            })
            .collect();
        e10_simcore::join_all(handles).await;
        e10_simcore::now().since(SimTime::ZERO).as_secs_f64()
    });
    let (ok, crash_secs, recovery_secs, requeued, killed) = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::tiny([2, 2, 2]));
        let tb = TestbedSpec::small(w.procs(), 2).build();
        let cfg = CrashConfig::after_writes(crash_hints(), "/gfs/fsweep_crash", fault_seed, 1);
        let out = run_crash_recovery(&tb, w as Rc<dyn Workload>, &cfg)
            .await
            .expect("crash plan is well-formed");
        let ok = out.verified.is_ok() && out.lost.is_empty() && out.failed.is_empty();
        let wall = e10_simcore::now().since(SimTime::ZERO).as_secs_f64();
        (
            ok,
            wall,
            out.recovery_secs,
            out.requeued_bytes(),
            out.killed_tasks,
        )
    });
    CrashOutcome {
        ok,
        crash_secs,
        recovery_secs,
        requeued,
        killed,
        base_wall,
    }
}

fn crash_hints() -> Info {
    let h = hints(true);
    h.set("e10_cache_flush_flag", "flush_onclose");
    h.set("e10_cache_journal", "enable");
    h
}

const KINDS: [&str; 3] = ["ssd_stall", "link_fault", "rpc_fail"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("E10_SCALE").is_ok_and(|v| v == "quick");
    let fault_seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let json = json_mode();
    if !json {
        println!(
            "# fault_sweep mode={} seed={fault_seed}",
            if smoke { "smoke" } else { "full" }
        );
    }
    let host0 = std::time::Instant::now();
    // The whole matrix as pool jobs, submitted cache-major so the
    // results come back in the printing order.
    let mut jobs: Vec<e10_simcore::Job<(f64, f64, u64)>> = Vec::new();
    for cache in [false, true] {
        for kind in std::iter::once(None).chain(KINDS.into_iter().map(Some)) {
            jobs.push(Box::new(move || sweep_once(smoke, cache, kind, fault_seed)));
        }
    }
    let results = e10_simcore::run_jobs(jobs);

    let mut rows = Vec::new();
    for (c, cache) in [false, true].into_iter().enumerate() {
        let per_cache = &results[c * (KINDS.len() + 1)..(c + 1) * (KINDS.len() + 1)];
        let (base_bw, base_wall, _) = per_cache[0];
        rows.push((cache, None, base_bw, base_wall, 0u64, 0.0));
        for (k, kind) in KINDS.into_iter().enumerate() {
            let (bw, wall, injected) = per_cache[k + 1];
            let overhead = 100.0 * (wall - base_wall) / base_wall;
            rows.push((cache, Some(kind), bw, wall, injected, overhead));
        }
    }
    let crash = crash_case(fault_seed);
    let host_secs = host0.elapsed().as_secs_f64();

    if json {
        let doc = Json::obj([
            ("figure", Json::str("fault_sweep")),
            ("mode", Json::str(if smoke { "smoke" } else { "full" })),
            ("seed", Json::U64(fault_seed)),
            ("host_secs", Json::F64(host_secs)),
            (
                "rows",
                Json::arr(
                    rows.iter()
                        .map(|&(cache, kind, bw, wall, injected, overhead)| {
                            Json::obj([
                                ("cache", Json::Bool(cache)),
                                ("fault", kind.map_or(Json::Null, Json::str)),
                                ("gb_s", Json::F64(bw)),
                                ("sim_wall_secs", Json::F64(wall)),
                                ("injected", Json::U64(injected)),
                                ("overhead_pct", Json::F64(overhead)),
                            ])
                        }),
                ),
            ),
            (
                "crash_recovery",
                Json::obj([
                    ("verified", Json::Bool(crash.ok)),
                    ("killed_tasks", Json::U64(crash.killed as u64)),
                    ("requeued_bytes", Json::U64(crash.requeued)),
                    ("recovery_secs", Json::F64(crash.recovery_secs)),
                    ("wall_secs", Json::F64(crash.crash_secs)),
                    ("fault_free_secs", Json::F64(crash.base_wall)),
                ]),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        for &(cache, kind, bw, wall, injected, overhead) in &rows {
            let label = if cache { "e10_cache" } else { "no_cache" };
            match kind {
                None => println!("{label:>9} fault_free: bw_gbs={bw:.3} wall={wall:.3}s"),
                Some(kind) => println!(
                    "{label:>9} {kind:>10}: bw_gbs={bw:.3} wall={wall:.3}s injected={injected} \
                     overhead_pct={overhead:.1}",
                ),
            }
        }
        println!(
            "crash+recovery: killed_tasks={} requeued_kib={} recovery_s={:.4} \
             wall_s={:.3} fault_free_s={:.3} overhead_pct={:.1} verified={}",
            crash.killed,
            crash.requeued / 1024,
            crash.recovery_secs,
            crash.crash_secs,
            crash.base_wall,
            100.0 * (crash.crash_secs - crash.base_wall) / crash.base_wall,
            if crash.ok { "ok" } else { "FAILED" },
        );
        println!("host_secs={host_secs:.1}");
    }
    if !crash.ok {
        eprintln!("fault_sweep: crash recovery FAILED");
        std::process::exit(1);
    }
}
