//! Fault matrix: collective-write bandwidth under injected faults,
//! reported as overhead against the fault-free baseline, plus one
//! node-crash + journal-recovery case. Not part of the figure set —
//! this is the resilience probe behind `scripts/ci.sh`'s smoke gate.
//!
//! `fault_sweep [--smoke]` — `--smoke` (or `E10_SCALE=quick`) shrinks
//! the sweep to seconds for CI. Exit status is non-zero if any faulted
//! run fails verification or the crash recovery loses data.
use std::rc::Rc;

use e10_faultsim::{always, FaultPlan};
use e10_mpisim::Info;
use e10_romio::TestbedSpec;
use e10_simcore::{SimDuration, SimTime};
use e10_workloads::{run_crash_recovery, run_workload, CollPerf, CrashConfig, RunConfig, Workload};

fn hints(cache: bool) -> Info {
    let h = Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("cb_buffer_size", "8K"),
        ("striping_unit", "8K"),
    ]);
    if cache {
        h.set("e10_cache", "enable");
        h.set("e10_cache_discard_flag", "enable");
    }
    h
}

/// The fault kinds of the matrix. Probabilities are low enough that
/// retries absorb every RPC failure (exhaustion needs five misses in a
/// row) — faulted runs must still verify.
fn plan(kind: &str, fault_seed: u64) -> FaultPlan {
    let p = FaultPlan::new(fault_seed);
    match kind {
        "ssd_stall" => p.ssd_stall(1, always(), 0.5, SimDuration::from_micros(300)),
        "link_fault" => p.link_fault(None, None, always(), 0.05, SimDuration::from_micros(50)),
        "rpc_fail" => p.rpc_fail(None, always(), 0.25),
        other => panic!("unknown fault kind {other}"),
    }
}

fn sweep_once(smoke: bool, cache: bool, faults: FaultPlan, path: &str) -> (f64, f64, u64) {
    let files = if smoke { 1 } else { 4 };
    let path = path.to_string();
    let out = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::tiny([2, 2, 2])) as Rc<dyn Workload>;
        let mut spec = TestbedSpec::small(8, 4);
        // Keep the page cache small enough that cached writes drain to
        // the node SSD during the run — otherwise `ssd_stall` has no
        // injection point to hit at this workload size.
        spec.pagecache.dirty_limit = 1 << 10;
        let tb = spec.build();
        let mut cfg = RunConfig::paper(hints(cache), &path);
        cfg.files = files;
        cfg.compute_delay = SimDuration::from_secs(2);
        cfg.include_last_sync = true;
        cfg.faults = faults;
        run_workload(&tb, w, &cfg).await
    });
    (out.gb_s(), out.wall_time, out.faults_injected)
}

/// Crash + journal recovery: virtual cost of the recovery pass against
/// the wall time of a fault-free run of the same workload.
fn crash_case(fault_seed: u64) -> bool {
    // Fault-free wall of the exact write sequence the crash harness
    // replays (collective writes + per-rank sync).
    let base_wall = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::tiny([2, 2, 2]));
        let tb = TestbedSpec::small(w.procs(), 2).build();
        let handles: Vec<_> = tb
            .ctxs()
            .into_iter()
            .map(|ctx| {
                let w = Rc::clone(&w);
                e10_simcore::spawn(async move {
                    let f =
                        e10_romio::AdioFile::open(&ctx, "/gfs/fsweep_base", &crash_hints(), true)
                            .await
                            .unwrap();
                    for view in &w.writes(ctx.comm.rank()) {
                        let r = e10_romio::write_at_all(
                            &f,
                            view,
                            &e10_romio::DataSpec::FileGen { seed: fault_seed },
                        )
                        .await;
                        assert_eq!(r.error_code, 0);
                    }
                    f.file_sync().await;
                })
            })
            .collect();
        e10_simcore::join_all(handles).await;
        e10_simcore::now().since(SimTime::ZERO).as_secs_f64()
    });
    let (ok, crash_secs, recovery_secs, requeued, killed) = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::tiny([2, 2, 2]));
        let tb = TestbedSpec::small(w.procs(), 2).build();
        let cfg = CrashConfig::after_writes(crash_hints(), "/gfs/fsweep_crash", fault_seed, 1);
        let out = run_crash_recovery(&tb, w as Rc<dyn Workload>, &cfg).await;
        let ok = out.verified.is_ok() && out.lost.is_empty() && out.failed.is_empty();
        let wall = e10_simcore::now().since(SimTime::ZERO).as_secs_f64();
        (
            ok,
            wall,
            out.recovery_secs,
            out.requeued_bytes(),
            out.killed_tasks,
        )
    });
    println!(
        "crash+recovery: killed_tasks={killed} requeued_kib={} recovery_s={recovery_secs:.4} \
         wall_s={crash_secs:.3} fault_free_s={base_wall:.3} overhead_pct={:.1} verified={}",
        requeued / 1024,
        100.0 * (crash_secs - base_wall) / base_wall,
        if ok { "ok" } else { "FAILED" },
    );
    ok
}

fn crash_hints() -> Info {
    let h = hints(true);
    h.set("e10_cache_flush_flag", "flush_onclose");
    h.set("e10_cache_journal", "enable");
    h
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("E10_SCALE").is_ok_and(|v| v == "quick");
    let fault_seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!(
        "# fault_sweep mode={} seed={fault_seed}",
        if smoke { "smoke" } else { "full" }
    );
    let host0 = std::time::Instant::now();
    for cache in [false, true] {
        let label = if cache { "e10_cache" } else { "no_cache" };
        let (base_bw, base_wall, _) =
            sweep_once(smoke, cache, FaultPlan::default(), "/gfs/fsweep_ff");
        println!("{label:>9} fault_free: bw_gbs={base_bw:.3} wall={base_wall:.3}s");
        for kind in ["ssd_stall", "link_fault", "rpc_fail"] {
            let (bw, wall, injected) =
                sweep_once(smoke, cache, plan(kind, fault_seed), "/gfs/fsweep");
            println!(
                "{label:>9} {kind:>10}: bw_gbs={bw:.3} wall={wall:.3}s injected={injected} \
                 overhead_pct={:.1}",
                100.0 * (wall - base_wall) / base_wall,
            );
        }
    }
    let ok = crash_case(fault_seed);
    println!("host_secs={:.1}", host0.elapsed().as_secs_f64());
    if !ok {
        eprintln!("fault_sweep: crash recovery FAILED");
        std::process::exit(1);
    }
}
