//! Figure 6: coll_perf collective-I/O contribution breakdown with the
//! cache disabled (writes straight to the global file system).
//! `--json` for machine output.
use e10_bench::{emit_breakdown_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_sweep(scale, move || scale.collperf(), Case::Disabled, false);
    emit_breakdown_figure(
        "fig6",
        "Fig. 6 — coll_perf breakdown, cache DISABLED",
        &points,
    );
}
