//! Ablation: `e10_cache_flush_flag` — immediate vs on-close
//! synchronisation.
//!
//! `flush_immediate` starts streaming while the collective write is
//! still running, overlapping sync with both the remaining write AND
//! the compute phase; `flush_onclose` queues everything until close,
//! so the sync can only hide behind compute. With short compute phases
//! the difference is stark. `--json` for machine output.

use std::rc::Rc;

use e10_bench::{hints_for, json_mode, Case, Json, Scale};
use e10_romio::TestbedSpec;
use e10_simcore::SimDuration;
use e10_workloads::Workload;
use e10_workloads::{run_workload, RunConfig};

fn main() {
    let scale = Scale::from_env();
    let aggs = *scale.aggregators().last().unwrap();
    let cb = scale.cb_sizes()[0];
    let rows: Vec<(u64, f64, f64)> = [2u64, 10, 30]
        .into_iter()
        .map(|compute| {
            let mut row = Vec::new();
            for flag in ["flush_immediate", "flush_onclose"] {
                let bw = e10_simcore::run(async move {
                    let w = Rc::new(scale.collperf());
                    let mut spec = TestbedSpec::deep_er();
                    spec.procs = w.procs();
                    spec.nodes = scale.nodes();
                    let tb = spec.build();
                    let hints = hints_for(Case::Enabled, aggs, cb);
                    hints.set("e10_cache_flush_flag", flag);
                    let mut cfg = RunConfig::paper(hints, "/gfs/abl_flush");
                    cfg.files = 2;
                    cfg.compute_delay = SimDuration::from_secs(compute);
                    run_workload(&tb, w, &cfg).await.gb_s()
                });
                row.push(bw);
            }
            (compute, row[0], row[1])
        })
        .collect();

    if json_mode() {
        let doc = Json::obj([
            ("figure", Json::str("ablation_flush_policy")),
            ("scale", Json::str(scale.name())),
            ("aggregators", Json::U64(aggs as u64)),
            (
                "rows",
                Json::arr(rows.iter().map(|&(compute, imm, onclose)| {
                    Json::obj([
                        ("compute_secs", Json::U64(compute)),
                        ("flush_immediate_gb_s", Json::F64(imm)),
                        ("flush_onclose_gb_s", Json::F64(onclose)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("Flush-policy ablation, coll_perf, {} aggregators", aggs);
    println!(
        "{:>14} {:>18} {:>18}",
        "compute [s]", "immediate [GB/s]", "onclose [GB/s]"
    );
    for (compute, imm, onclose) in rows {
        println!("{:>14} {:>18.2} {:>18.2}", compute, imm, onclose);
    }
}
