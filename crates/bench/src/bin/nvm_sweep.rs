//! SSD-vs-NVM-vs-hybrid cache-tier sweep on the Fig. 4 coll_perf grid.
//!
//! Every grid cell runs both collective-write algorithms
//! (`e10_two_phase = extended | node_agg`) under all three
//! `e10_cache_class` values, with Ring tracing and verification
//! enabled. The grid is the Fig. 4 aggregator × buffer matrix with one
//! extra small-buffer column (16 KiB) so every scale exercises the
//! regime the byte-granular front-end targets, and the NVM mount is
//! deliberately sized to *half* the densest aggregator's per-file
//! footprint: the pure nvm class must overflow and degrade to
//! write-through, while hybrid spills its block tier to the SSD and
//! keeps caching.
//!
//! Two metrics drive the gate:
//!
//! * `cache.write_stall_ns / cache.write_bytes` — virtual stall per
//!   cached byte inside cache writes (fallocate metadata + page-cache
//!   copy on the SSD path; byte-granular device writes on the NVM
//!   front). Normalising per byte keeps the comparison honest when a
//!   capacity-pressured class caches fewer bytes. The nvm class must
//!   strictly reduce it on every small-buffer cell.
//! * aggregate bandwidth (`gb_s`) — hybrid must stay within 2 % of the
//!   better pure class on every cell: graceful spill must never lose
//!   to either a pure tier or a degraded one.
//!
//! The emitted `BENCH_nvm.json` is the committed evidence for both.
//!
//! `nvm_sweep [--smoke] [--json] [--out PATH] [--jobs N]`
//!
//! * `--smoke` — test scale, used by `scripts/ci.sh` as the gate
//!   (exit 1 on any gate failure).
//! * `--out PATH` — where to write the JSON (default `BENCH_nvm.json`;
//!   `-` skips the file).
//! * `--jobs N` — parallel worker count (default `E10_JOBS` /
//!   available parallelism).
//! * `--json` — also print the document to stdout.
//!
//! Scale follows `E10_SCALE` but defaults to `quick`: this is a device
//! probe, not a figure regeneration.

use std::rc::Rc;

use e10_bench::{combo_label, json_mode, paper_base_hints, Json, Scale};
use e10_romio::{TestbedSpec, TraceMode};
use e10_simcore::pool::{run_jobs_on, worker_threads};
use e10_simcore::Job;
use e10_workloads::{run_workload, CollPerf, RunConfig, Workload};

/// The two cache-friendly collective-write algorithms (stock bypasses
/// the cache entirely, so it has no cache-write stall to compare).
const ALGOS: [&str; 2] = ["extended", "node_agg"];

/// Cache classes in presentation order; `ssd` is the baseline.
const CLASSES: [&str; 3] = ["ssd", "nvm", "hybrid"];

/// The sweep pins `e10_nvm_threshold` to the device crossover: below
/// ~20 KiB a byte-granular single-channel NVM write (~1 µs + b/0.575
/// GB/s) undercuts the SSD staging path (~30 µs fallocate + b/3 GB/s);
/// above it the block path wins. A cell is "small-buffer" when its
/// collective buffer is at most this, i.e. when its cache writes take
/// the front-end.
const SMALL_BUFFER: u64 = 16 << 10;

/// Hybrid's bandwidth may trail the better pure class by at most this
/// factor (device jitter plus the front file's metadata ops).
const HYBRID_TOLERANCE: f64 = 0.98;

/// The Fig. 4 buffer column plus a 16 KiB small-buffer column when the
/// scale's own grid has none (quick/full start at 1 MiB).
fn sweep_cbs(scale: Scale) -> Vec<u64> {
    let mut cbs = scale.cb_sizes();
    if !cbs.iter().any(|&c| c <= SMALL_BUFFER) {
        cbs.insert(0, SMALL_BUFFER);
    }
    cbs
}

/// Stall metrics of one (cell, algorithm, class) run.
#[derive(Clone)]
struct ClassStats {
    class: &'static str,
    gb_s: f64,
    sim_wall_secs: f64,
    /// Total virtual nanoseconds ranks spent blocked in cache writes.
    write_stall_ns: u64,
    /// Bytes staged through the byte-granular NVM front-end.
    front_write_bytes: u64,
    /// Bytes that entered the cache at all (front + block tiers).
    cache_write_bytes: u64,
}

/// One grid point: the same workload and algorithm under all three
/// cache classes.
struct Cell {
    combo: String,
    aggregators: usize,
    cb_size: u64,
    algo: &'static str,
    stats: Vec<ClassStats>,
}

fn counter(snap: &e10_simcore::trace::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |&(_, v)| v)
}

/// Run one cell × algorithm × class: cache enabled with immediate
/// flush (the paper's configuration), verification on, Ring tracing to
/// collect the cache layer's stall counters.
fn run_class(
    scale: Scale,
    algo: &'static str,
    class: &'static str,
    aggs: usize,
    cb: u64,
) -> ClassStats {
    let outcome = e10_simcore::run(async move {
        let workload = Rc::new(scale.workload::<CollPerf>());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = workload.procs();
        spec.nodes = scale.nodes();
        // Capacity pressure: the NVM mount holds half of what the
        // densest aggregator layout stages per file, so the pure nvm
        // class runs out mid-file (arbiter degrades it to
        // write-through) while hybrid overflows its block tier to the
        // SSD and keeps absorbing writes.
        let max_aggs = *scale.aggregators().last().unwrap() as u64;
        spec.nvm_localfs.capacity = (workload.file_size() / (2 * max_aggs)).max(8 << 10);
        let tb = spec.build();
        let hints = paper_base_hints();
        hints.set("cb_nodes", &aggs.to_string());
        hints.set("cb_buffer_size", &cb.to_string());
        hints.set("e10_two_phase", algo);
        hints.set("e10_cache", "enable");
        hints.set("e10_cache_flush_flag", "flush_immediate");
        hints.set("e10_cache_discard_flag", "enable");
        hints.set("e10_cache_class", class);
        hints.set("e10_nvm_threshold", &SMALL_BUFFER.to_string());
        let mut cfg = RunConfig::paper(hints, &format!("/gfs/nvm_sweep_{algo}_{class}"));
        cfg.files = scale.files();
        cfg.compute_delay = scale.compute_delay();
        cfg.trace.mode = TraceMode::Ring;
        run_workload(&tb, workload, &cfg).await
    });
    let snap = outcome
        .metrics
        .clone()
        .expect("ring tracing always snapshots metrics");
    ClassStats {
        class,
        gb_s: outcome.gb_s(),
        sim_wall_secs: outcome.wall_time,
        write_stall_ns: counter(&snap, "cache.write_stall_ns"),
        front_write_bytes: counter(&snap, "cache.front_write_bytes"),
        cache_write_bytes: counter(&snap, "cache.write_bytes"),
    }
}

fn make_jobs(scale: Scale) -> Vec<Job<ClassStats>> {
    let mut jobs: Vec<Job<ClassStats>> = Vec::new();
    for aggs in scale.aggregators() {
        for cb in sweep_cbs(scale) {
            for algo in ALGOS {
                for class in CLASSES {
                    jobs.push(Box::new(move || {
                        eprintln!("  running {} {algo} {class} ...", combo_label(aggs, cb));
                        run_class(scale, algo, class, aggs, cb)
                    }));
                }
            }
        }
    }
    jobs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_nvm.json".to_string());
    let jobs_n = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(worker_threads)
        .max(1);
    let scale = if smoke {
        Scale::Test
    } else if std::env::var("E10_SCALE").is_ok() {
        Scale::from_env()
    } else {
        Scale::Quick
    };
    eprintln!("nvm_sweep: scale={} jobs={jobs_n}", scale.name());

    let flat = run_jobs_on(jobs_n, make_jobs(scale));
    let mut cells: Vec<Cell> = Vec::new();
    let mut it = flat.into_iter();
    for aggs in scale.aggregators() {
        for cb in sweep_cbs(scale) {
            for algo in ALGOS {
                let stats: Vec<ClassStats> =
                    (0..CLASSES.len()).map(|_| it.next().unwrap()).collect();
                cells.push(Cell {
                    combo: combo_label(aggs, cb),
                    aggregators: aggs,
                    cb_size: cb,
                    algo,
                    stats,
                });
            }
        }
    }

    // The gate. (Verification inside each run already proved all three
    // classes write byte-identical global files.)
    //
    // 1. On every small-buffer cell the nvm class must stage bytes
    //    through the byte-granular front and strictly reduce the
    //    cache-write stall *per cached byte* vs ssd: byte-granular
    //    device writes beat fallocate + page-cache staging for writes
    //    under the threshold, and the per-byte normalisation stops a
    //    capacity-degraded run (which caches less, so stalls less in
    //    total) from passing by accident.
    // 2. On every cell hybrid bandwidth must stay within
    //    `HYBRID_TOLERANCE` of the better pure class: routing each
    //    piece to its better tier — and spilling to the SSD instead of
    //    degrading when the NVM mount fills — must never lose.
    let stall_per_byte =
        |s: &ClassStats| s.write_stall_ns as f64 / s.cache_write_bytes.max(1) as f64;
    let mut gate_nvm = true;
    let mut gate_hybrid = true;
    for cell in &cells {
        let (ssd, nvm, hy) = (&cell.stats[0], &cell.stats[1], &cell.stats[2]);
        if cell.cb_size <= SMALL_BUFFER
            && (nvm.front_write_bytes == 0 || stall_per_byte(nvm) >= stall_per_byte(ssd))
        {
            gate_nvm = false;
            eprintln!(
                "GATE FAIL at {} {}: nvm {:.3} ns/B (front {} B) !< ssd {:.3} ns/B",
                cell.combo,
                cell.algo,
                stall_per_byte(nvm),
                nvm.front_write_bytes,
                stall_per_byte(ssd)
            );
        }
        let best = ssd.gb_s.max(nvm.gb_s);
        if hy.gb_s < best * HYBRID_TOLERANCE {
            gate_hybrid = false;
            eprintln!(
                "GATE FAIL at {} {}: hybrid {:.3} GB/s < best pure {:.3} GB/s - 2%",
                cell.combo, cell.algo, hy.gb_s, best
            );
        }
    }
    let gate_ok = gate_nvm && gate_hybrid;

    let doc = Json::obj([
        ("bench", Json::str("nvm_cache_tier")),
        ("workload", Json::str("coll_perf")),
        ("scale", Json::str(scale.name())),
        ("procs", Json::U64(scale.procs() as u64)),
        ("nodes", Json::U64(scale.nodes() as u64)),
        ("jobs", Json::U64(jobs_n as u64)),
        ("small_buffer_bytes", Json::U64(SMALL_BUFFER)),
        ("nvm_threshold_bytes", Json::U64(SMALL_BUFFER)),
        ("hybrid_tolerance", Json::F64(HYBRID_TOLERANCE)),
        (
            "gate",
            Json::obj([
                (
                    "nvm_reduces_write_stall_per_byte_on_small_buffers_vs_ssd",
                    Json::Bool(gate_nvm),
                ),
                (
                    "hybrid_bandwidth_never_worse_than_best_pure_class",
                    Json::Bool(gate_hybrid),
                ),
                ("files_verified_byte_identical", Json::Bool(true)),
            ]),
        ),
        (
            "cells",
            Json::arr(cells.iter().map(|cell| {
                Json::obj([
                    ("combo", Json::str(&cell.combo)),
                    ("aggregators", Json::U64(cell.aggregators as u64)),
                    ("cb_size", Json::U64(cell.cb_size)),
                    ("algo", Json::str(cell.algo)),
                    ("small_buffer", Json::Bool(cell.cb_size <= SMALL_BUFFER)),
                    (
                        "classes",
                        Json::arr(cell.stats.iter().map(|s| {
                            Json::obj([
                                ("class", Json::str(s.class)),
                                ("gb_s", Json::F64(s.gb_s)),
                                ("sim_wall_secs", Json::F64(s.sim_wall_secs)),
                                ("write_stall_ns", Json::U64(s.write_stall_ns)),
                                ("front_write_bytes", Json::U64(s.front_write_bytes)),
                                ("cache_write_bytes", Json::U64(s.cache_write_bytes)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ]);
    let rendered = doc.pretty();
    if out_path != "-" {
        std::fs::write(&out_path, format!("{rendered}\n")).expect("write nvm_sweep json");
        eprintln!("nvm_sweep: wrote {out_path}");
    }
    if json_mode() {
        println!("{rendered}");
    } else {
        println!(
            "{:<10} {:>9} {:>7} {:>16} {:>16} {:>10}",
            "combo", "algo", "class", "write_stall_ns", "front_bytes", "gb_s"
        );
        for cell in &cells {
            for s in &cell.stats {
                println!(
                    "{:<10} {:>9} {:>7} {:>16} {:>16} {:>10.3}",
                    cell.combo, cell.algo, s.class, s.write_stall_ns, s.front_write_bytes, s.gb_s
                );
            }
        }
        println!(
            "gate: nvm stall/byte < ssd on small buffers: {gate_nvm}; \
             hybrid bandwidth never worse: {gate_hybrid}"
        );
    }
    if !gate_ok {
        eprintln!("nvm_sweep: the NVM tier did NOT hold its stall-reduction gate");
        std::process::exit(1);
    }
}
