//! Figure 5: coll_perf collective-I/O contribution breakdown with the
//! E10 cache enabled.
use e10_bench::{print_breakdown_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_sweep(scale, move || scale.collperf(), Case::Enabled, false);
    print_breakdown_figure("Fig. 5 — coll_perf breakdown, cache ENABLED", &points);
}
