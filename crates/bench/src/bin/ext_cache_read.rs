//! Extension experiment (paper §VI future work): collective reads
//! served from the aggregator caches (`e10_cache_read = enable`).
//!
//! A coll_perf-shaped checkpoint is written through the E10 cache and
//! synchronised; a matching collective read then runs either against
//! the global file system (standard) or against the node-local caches
//! (extension). The cache-served read scales with the aggregator count
//! instead of the storage servers' ceiling — the read-side mirror of
//! the paper's write result.

use std::rc::Rc;

use e10_bench::Scale;
use e10_mpisim::Info;
use e10_romio::{read_at_all, write_at_all, AdioFile, DataSpec, TestbedSpec};
use e10_simcore::{join_all, now, spawn};
use e10_workloads::Workload;

fn run_variant(scale: Scale, aggs: usize, cache_read: bool) -> f64 {
    e10_simcore::run(async move {
        let w = Rc::new(scale.collperf());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let total = w.file_size();
        let handles: Vec<_> = tb
            .ctxs()
            .into_iter()
            .map(|ctx| {
                let w = Rc::clone(&w);
                spawn(async move {
                    let info = Info::from_pairs([
                        ("romio_cb_write", "enable"),
                        ("romio_cb_read", "enable"),
                        ("striping_unit", "4194304"),
                        ("striping_factor", "4"),
                        ("cb_buffer_size", "16777216"),
                        ("e10_cache", "enable"),
                        ("ind_wr_buffer_size", "512K"),
                    ]);
                    info.set("cb_nodes", &aggs.to_string());
                    if cache_read {
                        info.set("e10_cache_read", "enable");
                    }
                    let f = AdioFile::open(&ctx, "/gfs/extread", &info, true)
                        .await
                        .unwrap();
                    let views = w.writes(ctx.comm.rank());
                    for v in &views {
                        write_at_all(&f, v, &DataSpec::FileGen { seed: 71 }).await;
                    }
                    // Make the global copy consistent, keep the cache.
                    f.file_sync().await;
                    ctx.comm.barrier().await;
                    let t0 = now();
                    let mut hits = 0;
                    for v in &views {
                        let r = read_at_all(&f, v).await;
                        hits += r.cache_hits;
                    }
                    let dt = now().since(t0).as_secs_f64();
                    f.close().await;
                    (dt, hits)
                })
            })
            .collect();
        let outs = join_all(handles).await;
        let dt = outs[0].0;
        let hits: u64 = outs.iter().map(|(_, h)| h).sum();
        if cache_read {
            assert!(hits > 0, "extension run must hit the caches");
        } else {
            assert_eq!(hits, 0);
        }
        total as f64 / dt / 1e9
    })
}

fn main() {
    let scale = Scale::from_env();
    let rows: Vec<(usize, f64, f64)> = scale
        .aggregators()
        .into_iter()
        .map(|aggs| {
            let global = run_variant(scale, aggs, false);
            let cached = run_variant(scale, aggs, true);
            (aggs, global, cached)
        })
        .collect();

    if e10_bench::json_mode() {
        use e10_bench::Json;
        let doc = Json::obj([
            ("figure", Json::str("ext_cache_read")),
            ("scale", Json::str(scale.name())),
            (
                "rows",
                Json::arr(rows.iter().map(|&(aggs, global, cached)| {
                    Json::obj([
                        ("aggregators", Json::U64(aggs as u64)),
                        ("global_read_gb_s", Json::F64(global)),
                        ("cache_served_read_gb_s", Json::F64(cached)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("Cache-read extension: collective re-read of a cached checkpoint");
    println!(
        "{:<8} {:>22} {:>24}",
        "aggs", "global read [GB/s]", "cache-served read [GB/s]"
    );
    for (aggs, global, cached) in rows {
        println!("{:<8} {:>22.2} {:>24.2}", aggs, global, cached);
    }
}
