//! Scratch probe: one full-scale coll_perf phase, used during
//! calibration. Not part of the figure set.
//!
//! `probe [aggs] [cb_mb] [case] [trace]` — `trace` is `off` (default),
//! `ring` or `jsonl`; `jsonl` writes `results/traces/collperf.jsonl`
//! and both modes print the run's metrics snapshot. `--json` prints a
//! machine-readable summary instead of the tables.
use e10_bench::{json_mode, Json};
use e10_mpisim::Info;
use e10_romio::TestbedSpec;
use e10_simcore::SimDuration;
use e10_workloads::{run_workload, CollPerf, RunConfig};
use std::rc::Rc;

fn main() {
    let args: Vec<String> = std::env::args().filter(|a| a != "--json").collect();
    let aggs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let cb_mb: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let case = args
        .get(3)
        .map(|s| s.as_str())
        .unwrap_or("disabled")
        .to_string();
    let trace = args.get(4).map(|s| s.as_str()).unwrap_or("off").to_string();
    let case_name = case.clone();
    let host0 = std::time::Instant::now();
    let out = e10_simcore::run(async move {
        let w = Rc::new(CollPerf::paper_512());
        let tb = TestbedSpec::deep_er().build();
        let hints = Info::from_pairs([
            ("romio_cb_write", "enable"),
            ("striping_unit", "4194304"),
            ("striping_factor", "4"),
            ("ind_wr_buffer_size", "512K"),
        ]);
        hints.set("cb_nodes", &aggs.to_string());
        hints.set("cb_buffer_size", &format!("{}M", cb_mb));
        match case.as_str() {
            "enabled" => {
                hints.set("e10_cache", "enable");
                hints.set("e10_cache_discard_flag", "enable");
            }
            "tbw" => {
                hints.set("e10_cache", "enable");
                hints.set("e10_cache_flush_flag", "flush_none");
                hints.set("e10_cache_discard_flag", "enable");
            }
            _ => {}
        }
        if trace != "off" {
            hints.set("e10_trace", &trace);
        }
        let mut cfg = RunConfig::paper(hints, "/gfs/collperf");
        cfg.files = 2;
        cfg.compute_delay = SimDuration::from_secs(30);
        cfg.verify = case != "tbw";
        if case == "tbw" {
            cfg.verify = false;
        }
        run_workload(&tb, w, &cfg).await
    });
    let host_secs = host0.elapsed().as_secs_f64();

    if json_mode() {
        let doc = Json::obj([
            ("figure", Json::str("probe")),
            ("aggregators", Json::U64(aggs as u64)),
            ("cb_size", Json::U64(cb_mb << 20)),
            ("case", Json::str(case_name)),
            ("host_secs", Json::F64(host_secs)),
            ("gb_s", Json::F64(out.gb_s())),
            ("sim_wall_secs", Json::F64(out.wall_time)),
            ("total_bytes", Json::U64(out.total_bytes)),
            (
                "phases",
                Json::arr(out.phases.iter().map(|p| {
                    Json::obj([
                        ("t_c_secs", Json::F64(p.t_c)),
                        ("not_hidden_secs", Json::F64(p.not_hidden)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("host_secs={host_secs:.1}");
    println!("bw_gbs={:.3} wall={:.1}s", out.gb_s(), out.wall_time);
    for (i, p) in out.phases.iter().enumerate() {
        println!(
            "phase{}: t_c={:.2}s not_hidden={:.2}s",
            i, p.t_c, p.not_hidden
        );
    }
    println!("{}", out.breakdown.table());
    if let Some(t) = &out.trace {
        match &t.path {
            Some(p) => println!("trace: {} events -> {p}", t.recorded),
            None => println!(
                "trace: {} events in ring ({} dropped)",
                t.recorded, t.dropped
            ),
        }
    }
    if let Some(m) = &out.metrics {
        println!("{}", m.render());
    }
}
