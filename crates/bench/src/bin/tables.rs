//! Tables I and II: the ROMIO collective-I/O hints and the proposed
//! E10 MPI-IO hint extensions, as resolved by this implementation.
//! `--json` for machine output.
//!
//! Rendering lives in [`e10_bench::tables`] so the golden regression
//! test pins the same bytes this binary prints.
use e10_bench::json_mode;

fn main() {
    if json_mode() {
        println!("{}", e10_bench::tables::tables_json().render());
    } else {
        print!("{}", e10_bench::tables::tables_text());
    }
}
