//! Tables I and II: the ROMIO collective-I/O hints and the proposed
//! E10 MPI-IO hint extensions, as resolved by this implementation.
use e10_mpisim::Info;
use e10_romio::RomioHints;

fn main() {
    println!("TABLE I: Collective I/O hints in ROMIO");
    println!("{:<24} Description", "Hint");
    for (hint, desc) in [
        ("romio_cb_write", "enable or disable collective writes"),
        ("romio_cb_read", "enable or disable collective reads"),
        ("cb_buffer_size", "set the collective buffer size [bytes]"),
        ("cb_nodes", "set the number of aggregator processes"),
    ] {
        println!("{hint:<24} {desc}");
    }

    println!("\nTABLE II: Proposed MPI-IO hints extensions");
    println!("{:<24} Value", "Hint");
    for (hint, vals) in [
        ("e10_cache", "enable, disable, coherent"),
        ("e10_cache_path", "cache directory pathname"),
        ("e10_cache_flush_flag", "flush_immediate, flush_onclose"),
        ("e10_cache_discard_flag", "enable, disable"),
        ("ind_wr_buffer_size", "synchronisation buffer size [bytes]"),
    ] {
        println!("{hint:<24} {vals}");
    }

    println!("\nImplementation extensions beyond the paper's tables:");
    for (hint, vals) in [
        (
            "e10_cache_read",
            "enable, disable (§VI future work: cache reads)",
        ),
        (
            "e10_cache_evict",
            "enable, disable (§III: streaming space management)",
        ),
        (
            "e10_sync_policy",
            "greedy, backoff (§III: congestion-aware sync)",
        ),
        (
            "e10_fd_partition",
            "even, aligned (footnote 1: BeeGFS driver alignment)",
        ),
        ("cb_config_list", "\"*:N\" (aggregators per node)"),
        ("romio_no_indep_rw", "true, false (deferred open)"),
        (
            "romio_ds_write",
            "enable, disable, automatic (data sieving)",
        ),
    ] {
        println!("{hint:<24} {vals}");
    }

    println!("\nResolved defaults (MPI_File_get_info on an empty Info):");
    let h = RomioHints::parse(&Info::new()).expect("defaults must parse");
    for (k, v) in h.to_pairs() {
        println!("  {k:<24} = {v}");
    }

    println!("\nPaper configuration resolved:");
    let info = Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("cb_nodes", "64"),
        ("cb_buffer_size", "4M"),
        ("striping_unit", "4M"),
        ("striping_factor", "4"),
        ("ind_wr_buffer_size", "512K"),
        ("e10_cache", "enable"),
        ("e10_cache_path", "/scratch"),
        ("e10_cache_flush_flag", "flush_immediate"),
        ("e10_cache_discard_flag", "enable"),
    ]);
    let h = RomioHints::parse(&info).expect("paper hints must parse");
    for (k, v) in h.to_pairs() {
        println!("  {k:<24} = {v}");
    }
}
