//! Tables I and II: the ROMIO collective-I/O hints and the proposed
//! E10 MPI-IO hint extensions, as resolved by this implementation.
//! `--json` for machine output.
use e10_bench::{json_mode, Json};
use e10_mpisim::Info;
use e10_romio::RomioHints;

const TABLE1: [(&str, &str); 4] = [
    ("romio_cb_write", "enable or disable collective writes"),
    ("romio_cb_read", "enable or disable collective reads"),
    ("cb_buffer_size", "set the collective buffer size [bytes]"),
    ("cb_nodes", "set the number of aggregator processes"),
];

const TABLE2: [(&str, &str); 5] = [
    ("e10_cache", "enable, disable, coherent"),
    ("e10_cache_path", "cache directory pathname"),
    ("e10_cache_flush_flag", "flush_immediate, flush_onclose"),
    ("e10_cache_discard_flag", "enable, disable"),
    ("ind_wr_buffer_size", "synchronisation buffer size [bytes]"),
];

const EXTENSIONS: [(&str, &str); 7] = [
    (
        "e10_cache_read",
        "enable, disable (§VI future work: cache reads)",
    ),
    (
        "e10_cache_evict",
        "enable, disable (§III: streaming space management)",
    ),
    (
        "e10_sync_policy",
        "greedy, backoff (§III: congestion-aware sync)",
    ),
    (
        "e10_fd_partition",
        "even, aligned (footnote 1: BeeGFS driver alignment)",
    ),
    ("cb_config_list", "\"*:N\" (aggregators per node)"),
    ("romio_no_indep_rw", "true, false (deferred open)"),
    (
        "romio_ds_write",
        "enable, disable, automatic (data sieving)",
    ),
];

fn paper_info() -> Info {
    Info::from_pairs([
        ("romio_cb_write", "enable"),
        ("cb_nodes", "64"),
        ("cb_buffer_size", "4M"),
        ("striping_unit", "4M"),
        ("striping_factor", "4"),
        ("ind_wr_buffer_size", "512K"),
        ("e10_cache", "enable"),
        ("e10_cache_path", "/scratch"),
        ("e10_cache_flush_flag", "flush_immediate"),
        ("e10_cache_discard_flag", "enable"),
    ])
}

fn main() {
    let defaults = RomioHints::parse(&Info::new()).expect("defaults must parse");
    let paper = RomioHints::parse(&paper_info()).expect("paper hints must parse");

    if json_mode() {
        let hint_table = |rows: &[(&str, &str)]| {
            Json::arr(rows.iter().map(|&(hint, desc)| {
                Json::obj([("hint", Json::str(hint)), ("description", Json::str(desc))])
            }))
        };
        let resolved = |h: &RomioHints| {
            Json::obj(
                h.to_pairs()
                    .into_iter()
                    .map(|(k, v)| (k, Json::Str(v)))
                    .collect::<Vec<_>>(),
            )
        };
        let doc = Json::obj([
            ("figure", Json::str("tables")),
            ("table1_romio_hints", hint_table(&TABLE1)),
            ("table2_e10_hints", hint_table(&TABLE2)),
            ("implementation_extensions", hint_table(&EXTENSIONS)),
            ("resolved_defaults", resolved(&defaults)),
            ("resolved_paper_config", resolved(&paper)),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("TABLE I: Collective I/O hints in ROMIO");
    println!("{:<24} Description", "Hint");
    for (hint, desc) in TABLE1 {
        println!("{hint:<24} {desc}");
    }

    println!("\nTABLE II: Proposed MPI-IO hints extensions");
    println!("{:<24} Value", "Hint");
    for (hint, vals) in TABLE2 {
        println!("{hint:<24} {vals}");
    }

    println!("\nImplementation extensions beyond the paper's tables:");
    for (hint, vals) in EXTENSIONS {
        println!("{hint:<24} {vals}");
    }

    println!("\nResolved defaults (MPI_File_get_info on an empty Info):");
    for (k, v) in defaults.to_pairs() {
        println!("  {k:<24} = {v}");
    }

    println!("\nPaper configuration resolved:");
    for (k, v) in paper.to_pairs() {
        println!("  {k:<24} = {v}");
    }
}
