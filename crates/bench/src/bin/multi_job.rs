//! Multi-job cache contention figures: N jobs time-sharing the same
//! nodes' cache devices under the per-node arbiter. Three arms:
//!
//! * `single`      — one job on the contended node shape (baseline).
//! * `uncontended` — four jobs, cache sized generously: everything
//!   admits, nothing degrades.
//! * `contended`   — four jobs, cache sized for ~1.5 jobs: the
//!   acceptance scenario. At least one job must degrade to
//!   write-through and at least one watermark eviction must fire, or
//!   the binary exits non-zero.
//!
//! Every arm's global files are byte-verified inside the harness
//! before figures are reported, so a passing run proves contention
//! never corrupted any job's output.
//!
//! `multi_job [--json]` — each arm is an independent simulation built
//! inside its pool job, so runs parallelise over `E10_JOBS` and the
//! output is bit-identical at any worker count. The arms are already
//! test-sized (sub-second each), so there is no separate smoke scale.
use e10_bench::{json_mode, Json};
use e10_workloads::{run_multi_job, MultiJobOutcome, MultiJobSpec};

type Arm = (&'static str, fn() -> MultiJobSpec);

fn main() {
    let json = json_mode();
    let arms: Vec<Arm> = vec![
        ("single", MultiJobSpec::single),
        ("uncontended", MultiJobSpec::uncontended),
        ("contended", MultiJobSpec::contended),
    ];
    if !json {
        println!("# multi_job arms={}", arms.len());
    }
    let host0 = std::time::Instant::now();
    let jobs: Vec<e10_simcore::Job<MultiJobOutcome>> = arms
        .iter()
        .map(|&(_, make)| {
            Box::new(move || run_multi_job(&make())) as e10_simcore::Job<MultiJobOutcome>
        })
        .collect();
    let outcomes = e10_simcore::run_jobs(jobs);
    let host_secs = host0.elapsed().as_secs_f64();

    if json {
        let doc = Json::obj([
            ("figure", Json::str("multi_job")),
            ("host_secs", Json::F64(host_secs)),
            (
                "arms",
                Json::arr(arms.iter().zip(&outcomes).map(|(&(name, make), out)| {
                    let spec = make();
                    Json::obj([
                        ("arm", Json::str(name)),
                        ("jobs", Json::U64(spec.jobs as u64)),
                        ("nodes", Json::U64(spec.nodes as u64)),
                        ("capacity", Json::U64(spec.capacity)),
                        ("wall_secs", Json::F64(out.wall_secs)),
                        ("admitted", Json::U64(out.admitted)),
                        ("refused", Json::U64(out.refused)),
                        ("evicted", Json::U64(out.evicted)),
                        ("degrades", Json::U64(out.degrades)),
                        ("fair_grants", Json::U64(out.fair_grants)),
                        ("bytes_cached", Json::U64(out.bytes_cached)),
                        (
                            "per_job",
                            Json::arr(out.jobs.iter().map(|j| {
                                Json::obj([
                                    ("job", Json::U64(j.job as u64)),
                                    ("bytes", Json::U64(j.bytes)),
                                    ("secs", Json::F64(j.secs)),
                                    ("gb_s", Json::F64(j.gb_s)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        for (&(name, _), out) in arms.iter().zip(&outcomes) {
            println!(
                "arm={name:>12} wall={:.3}s admitted={} refused={} evicted={} degrades={} \
                 fair_grants={} cached={}",
                out.wall_secs,
                out.admitted,
                out.refused,
                out.evicted,
                out.degrades,
                out.fair_grants,
                out.bytes_cached,
            );
            for j in &out.jobs {
                println!(
                    "  job{} bytes={} secs={:.3} gb_s={:.4}",
                    j.job, j.bytes, j.secs, j.gb_s
                );
            }
        }
        println!("host_secs={host_secs:.1}");
    }

    // The acceptance gate: contention must demonstrably engage the
    // arbiter, and the control arms must stay clean.
    let by_name = |n: &str| {
        arms.iter()
            .position(|&(name, _)| name == n)
            .map(|i| &outcomes[i])
            .expect("arm present")
    };
    let contended = by_name("contended");
    let mut failed = false;
    if contended.degrades == 0 || contended.evicted == 0 {
        eprintln!(
            "multi_job: contended arm must degrade (got {}) and evict (got {})",
            contended.degrades, contended.evicted
        );
        failed = true;
    }
    for arm in ["single", "uncontended"] {
        let out = by_name(arm);
        if out.degrades != 0 || out.evicted != 0 {
            eprintln!(
                "multi_job: {arm} arm must stay clean: degrades={} evicted={}",
                out.degrades, out.evicted
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
