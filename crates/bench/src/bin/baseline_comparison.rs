//! Baseline comparison (paper §V related work, all implemented here):
//!
//! * **plain** — standard collective writes to the global file system,
//! * **parcoll** — ParColl-style partitioned collective I/O
//!   (Yu & Vetter): smaller synchronisation groups, no extra tier,
//! * **multifile** — ADIOS-style output, one file per group,
//! * **ram_staging** — Active-Buffering-style staging (Ma et al. ABT /
//!   Lee et al. RFS): the E10 machinery with a small memory-speed
//!   staging area (2 GiB/node of "free RAM"),
//! * **e10_cache** — the paper's NVM cache (30 GB `/scratch` SSD).
//!
//! All variants run the same IOR-shaped workload and are scored with
//! the paper's Eq. 2 (perceived bandwidth, last-phase sync charged).
//! parcoll/multifile write group-contiguous segments — their intended
//! pattern.

use std::rc::Rc;

use e10_bench::{hints_for, paper_base_hints, Case, Scale};
use e10_mpisim::{FileView, FlatType, Info};
use e10_romio::{
    group_of, write_at_all_multifile, write_at_all_partitioned, AdioFile, DataSpec, IoCtx,
    TestbedSpec,
};
use e10_simcore::{join_all, now, spawn};
use e10_workloads::{run_workload, RunConfig, Workload};

fn block_bytes(scale: Scale) -> u64 {
    scale.ior().block_size * scale.ior().segments
}

/// Driver-based variants (plain and both staging flavours).
fn run_driver_variant(scale: Scale, variant: &'static str, aggs: usize) -> f64 {
    e10_simcore::run(async move {
        let w = Rc::new(scale.ior());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = scale.nodes();
        if variant == "ram_staging" {
            spec.ram_scratch = Some(2 << 30);
        }
        let tb = spec.build();
        let case = if variant == "plain" {
            Case::Disabled
        } else {
            Case::Enabled
        };
        let mut cfg = RunConfig::paper(hints_for(case, aggs, 16 << 20), "/gfs/bcd");
        cfg.files = 2;
        cfg.compute_delay = scale.compute_delay();
        cfg.include_last_sync = true;
        run_workload(&tb, w, &cfg).await.gb_s()
    })
}

/// Hand-driven variants (group-based algorithms the driver doesn't
/// know): score = total bytes / Σ per-phase collective-write time.
fn run_grouped_variant(scale: Scale, variant: &'static str, aggs: usize) -> f64 {
    e10_simcore::run(async move {
        let procs = scale.procs();
        let block = block_bytes(scale);
        let mut spec = TestbedSpec::deep_er();
        spec.procs = procs;
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let hints: Info = paper_base_hints();
        hints.set("cb_nodes", &aggs.to_string());
        hints.set("cb_buffer_size", &(16u64 << 20).to_string());
        let files = 2usize;
        let ngroups = (aggs / 2).clamp(1, procs);
        let pfs = Rc::clone(&tb.pfs);
        let localfs = Rc::clone(&tb.localfs);
        let nvmfs = Rc::clone(&tb.nvmfs);

        let handles: Vec<_> = tb
            .world
            .comms
            .iter()
            .map(|comm| {
                let ctx = IoCtx {
                    comm: comm.clone(),
                    pfs: Rc::clone(&pfs),
                    localfs: Rc::clone(&localfs),
                    nvmfs: Rc::clone(&nvmfs),
                };
                let hints = hints.clone();
                spawn(async move {
                    let rank = ctx.comm.rank();
                    let view = FileView::new(&FlatType::contiguous(block), rank as u64 * block);
                    let mut t_io = 0.0;
                    for k in 0..files {
                        ctx.comm.barrier().await;
                        let t0 = now();
                        let data = DataSpec::FileGen {
                            seed: 900 + k as u64,
                        };
                        match variant {
                            "multifile" => {
                                write_at_all_multifile(
                                    &ctx,
                                    &format!("/gfs/bc_mf.{k}"),
                                    &hints,
                                    &view,
                                    &data,
                                    ngroups,
                                )
                                .await
                                .unwrap();
                            }
                            _ => {
                                let f =
                                    AdioFile::open(&ctx, &format!("/gfs/bc_pc.{k}"), &hints, true)
                                        .await
                                        .unwrap();
                                write_at_all_partitioned(&f, &view, &data, ngroups).await;
                                f.close().await;
                            }
                        }
                        t_io += now().since(t0).as_secs_f64();
                    }
                    let _ = group_of(rank, ctx.comm.size(), ngroups);
                    t_io
                })
            })
            .collect();
        let times = join_all(handles).await;
        let t = times[0];
        (files as u64 * procs as u64 * block) as f64 / t / 1e9
    })
}

fn main() {
    let scale = Scale::from_env();
    let rows: Vec<(usize, [f64; 5])> = scale
        .aggregators()
        .into_iter()
        .map(|aggs| {
            let plain = run_driver_variant(scale, "plain", aggs);
            let parcoll = run_grouped_variant(scale, "parcoll", aggs);
            let multifile = run_grouped_variant(scale, "multifile", aggs);
            let ram = run_driver_variant(scale, "ram_staging", aggs);
            let e10 = run_driver_variant(scale, "e10_cache", aggs);
            (aggs, [plain, parcoll, multifile, ram, e10])
        })
        .collect();

    if e10_bench::json_mode() {
        use e10_bench::Json;
        let doc = Json::obj([
            ("figure", Json::str("baseline_comparison")),
            ("scale", Json::str(scale.name())),
            (
                "rows",
                Json::arr(rows.iter().map(|&(aggs, bw)| {
                    Json::obj([
                        ("aggregators", Json::U64(aggs as u64)),
                        ("plain_gb_s", Json::F64(bw[0])),
                        ("parcoll_gb_s", Json::F64(bw[1])),
                        ("multifile_gb_s", Json::F64(bw[2])),
                        ("ram_staging_gb_s", Json::F64(bw[3])),
                        ("e10_cache_gb_s", Json::F64(bw[4])),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("Baseline comparison (IOR-shaped workload, Eq. 2 GB/s):");
    println!(
        "{:<8} {:>10} {:>10} {:>11} {:>13} {:>11}",
        "aggs", "plain", "parcoll", "multifile", "ram_staging", "e10_cache"
    );
    for (aggs, bw) in rows {
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>11.2} {:>13.2} {:>11.2}",
            aggs, bw[0], bw[1], bw[2], bw[3], bw[4]
        );
    }
    println!(
        "\nram_staging (ABT/RFS) tracks the NVM cache while per-node\n\
         bursts fit in the 2 GiB of free memory and degrades toward the\n\
         plain path when they do not; parcoll and multifile shrink the\n\
         synchronisation span without changing the storage ceiling."
    );
}
