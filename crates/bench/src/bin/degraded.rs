//! Degraded-mode survivability sweep: failure intensity × cache class
//! × collective-write algorithm.
//!
//! Every cell replays the coll_perf kernel through the chaos-soak
//! oracle harness on a 2-node testbed, for each `e10_cache_class`
//! (ssd / nvm / hybrid) and each cache-friendly `e10_two_phase`
//! algorithm (extended / node_agg), under five failure arms of rising
//! intensity:
//!
//! * `none`       — no faults, tolerance machinery off (defaults).
//! * `none_ft`    — no faults, crash-tolerant engine forced on via
//!   `e10_coll_timeout=40`. Idle tolerance must be byte-transparent.
//! * `device`     — a permanent cache-device failure at 2 ms (the NVM
//!   front for the hybrid class: it must spill to the SSD tier, the
//!   pure classes retire to write-through).
//! * `crash`      — a full node crash at 8 ms, landing inside the last
//!   file's collective-write window; survivors shrink, re-elect
//!   aggregators and redo rounds, then the dead node's cache journals
//!   are recovered.
//! * `device_crash` — both: the device dies on one node and the
//!   *other* node crashes mid-collective.
//!
//! Three gates (exit != 0 on any failure), committed as
//! `BENCH_degraded.json`:
//!
//! 1. **survival** — every cell completes with every acknowledged
//!    byte verified (`verdict != diverged`, no acked violations), and
//!    the fault arms actually injected their faults.
//! 2. **byte identity** — the zero-failure arms are bit-identical:
//!    per (class, algorithm), `none` and `none_ft` produce identical
//!    per-file digests and both end `clean`. Turning the tolerance
//!    machinery on must not move a single byte when nothing fails.
//! 3. **clean baselines** — the `none` arm is `clean` in every cell
//!    (the harness itself is a valid oracle on this grid).
//!
//! `degraded [--smoke] [--json] [--out PATH]` — `--smoke` is accepted
//! for CI symmetry (the grid is already test-scale); `--out -` skips
//! the file. Cells parallelise over `E10_JOBS`; every cell is an
//! independent fixed-seed simulation pair, so the JSON (minus
//! `host_secs`) is byte-identical at any worker count.

use e10_bench::{json_mode, Json};
use e10_faultsim::{DeviceClass, FaultPlan};
use e10_romio::{CacheClass, TwoPhaseAlgo};
use e10_simcore::{SimDuration, SimTime};
use e10_workloads::{probe_with_plan, ChaosCase, ChaosReport, ChaosVerdict, ChaosWorkload};

/// Cache classes in presentation order.
const CLASSES: [CacheClass; 3] = [CacheClass::Ssd, CacheClass::Nvm, CacheClass::Hybrid];

/// The two cache-friendly collective-write algorithms (stock bypasses
/// the cache, so it has no degraded mode to probe).
const ALGOS: [TwoPhaseAlgo; 2] = [TwoPhaseAlgo::Extended, TwoPhaseAlgo::NodeAgg];

/// Failure arms in rising intensity order.
const ARMS: [&str; 5] = ["none", "none_ft", "device", "crash", "device_crash"];

/// The node whose cache device fails (hosts ranks, keeps running).
const DEVICE_NODE: usize = 0;

/// The node that crashes (the *other* one, so `device_crash` degrades
/// two nodes in two different ways at once).
const CRASH_NODE: usize = 1;

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// The device class that fails for a given cache class: pure classes
/// lose their own tier, hybrid loses the NVM front (and must spill to
/// the still-healthy SSD).
fn failing_device(class: CacheClass) -> DeviceClass {
    match class {
        CacheClass::Nvm | CacheClass::Hybrid => DeviceClass::Nvm,
        CacheClass::Ssd => DeviceClass::Ssd,
    }
}

struct Cell {
    class: CacheClass,
    algo: TwoPhaseAlgo,
    arm: &'static str,
    report: ChaosReport,
}

fn cell_case(class: CacheClass, algo: TwoPhaseAlgo, arm: &str, seed: u64) -> ChaosCase {
    let mut case = ChaosCase::new(seed);
    case.workload = ChaosWorkload::CollPerf;
    case.cache_class = class;
    case.two_phase = algo;
    // The zero-fault "forced tolerant" arm pins the crash-tolerant
    // engine on with no crash declared; the crash arms get the same
    // timeout automatically from the runner.
    if arm == "none_ft" {
        case.coll_timeout_ms = 40;
    }
    case
}

fn cell_plan(class: CacheClass, arm: &str, seed: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    match arm {
        "none" | "none_ft" => plan,
        "device" => plan.device_fail(DEVICE_NODE, failing_device(class), at_ms(2)),
        "crash" => plan.node_crash(CRASH_NODE, at_ms(8)),
        _ => plan
            .device_fail(DEVICE_NODE, failing_device(class), at_ms(2))
            .node_crash(CRASH_NODE, at_ms(8)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("E10_SCALE").is_ok_and(|v| v == "quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_degraded.json".to_string());
    let json = json_mode();
    if !json {
        println!(
            "# degraded mode={} cells={}",
            if smoke { "smoke" } else { "full" },
            CLASSES.len() * ALGOS.len() * ARMS.len()
        );
    }

    let host0 = std::time::Instant::now();
    let mut jobs: Vec<e10_simcore::Job<Cell>> = Vec::new();
    for (ci, &class) in CLASSES.iter().enumerate() {
        for (ai, &algo) in ALGOS.iter().enumerate() {
            // One seed per (class, algo), shared by all five arms: the
            // byte-identity gate compares digests across arms, so the
            // generated data must match.
            let seed = 9000 + 10 * ci as u64 + ai as u64;
            for &arm in &ARMS {
                jobs.push(Box::new(move || {
                    let case = cell_case(class, algo, arm, seed);
                    let plan = cell_plan(class, arm, seed);
                    Cell {
                        class,
                        algo,
                        arm,
                        report: probe_with_plan(&case, &plan),
                    }
                }));
            }
        }
    }
    let cells: Vec<Cell> = e10_simcore::run_jobs(jobs);
    let host_secs = host0.elapsed().as_secs_f64();

    // --- gate 1: survival ------------------------------------------------
    let mut failures: Vec<String> = Vec::new();
    for c in &cells {
        let label = format!("{}/{}/{}", c.class.as_str(), c.algo.as_str(), c.arm);
        if c.report.verdict == ChaosVerdict::Diverged {
            failures.push(format!(
                "{label}: DIVERGED — acked bytes lost: {:?}",
                c.report.acked_violations
            ));
        }
        if c.arm != "none" && c.arm != "none_ft" && c.report.injected == 0 {
            failures.push(format!("{label}: declared faults never injected"));
        }
        if c.report.file_digests.iter().any(Option::is_none) {
            failures.push(format!("{label}: a global file is missing"));
        }
    }

    // --- gates 2+3: zero-failure byte identity + clean baselines ---------
    let find = |class: CacheClass, algo: TwoPhaseAlgo, arm: &str| {
        cells
            .iter()
            .find(|c| c.class == class && c.algo == algo && c.arm == arm)
            .expect("grid is complete")
    };
    for &class in &CLASSES {
        for &algo in &ALGOS {
            let none = find(class, algo, "none");
            let ft = find(class, algo, "none_ft");
            let label = format!("{}/{}", class.as_str(), algo.as_str());
            if none.report.verdict != ChaosVerdict::Clean {
                failures.push(format!(
                    "{label}/none: baseline not clean ({})",
                    none.report.verdict.name()
                ));
            }
            if ft.report.verdict != ChaosVerdict::Clean {
                failures.push(format!(
                    "{label}/none_ft: idle tolerance not clean ({})",
                    ft.report.verdict.name()
                ));
            }
            if none.report.file_digests != ft.report.file_digests {
                failures.push(format!(
                    "{label}: idle crash-tolerant engine changed bytes \
                     ({:?} vs {:?})",
                    none.report.file_digests, ft.report.file_digests
                ));
            }
        }
    }

    let survived = cells
        .iter()
        .filter(|c| c.report.verdict != ChaosVerdict::Diverged)
        .count() as u64;
    let injected: u64 = cells.iter().map(|c| c.report.injected).sum();

    let doc = Json::obj([
        ("figure", Json::str("degraded")),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        ("cells", Json::U64(cells.len() as u64)),
        ("survived", Json::U64(survived)),
        ("injected", Json::U64(injected)),
        ("gate_failures", Json::U64(failures.len() as u64)),
        ("host_secs", Json::F64(host_secs)),
        (
            "rows",
            Json::arr(cells.iter().map(|c| {
                Json::obj([
                    ("cache_class", Json::str(c.class.as_str())),
                    ("algo", Json::str(c.algo.as_str())),
                    ("arm", Json::str(c.arm)),
                    ("seed", Json::U64(c.report.seed)),
                    ("verdict", Json::str(c.report.verdict.name())),
                    ("injected", Json::U64(c.report.injected)),
                    ("rank_errors", Json::U64(c.report.rank_errors.len() as u64)),
                    (
                        "acked_violations",
                        Json::U64(c.report.acked_violations.len() as u64),
                    ),
                    (
                        "file_digests",
                        Json::arr(
                            c.report
                                .file_digests
                                .iter()
                                .map(|d| d.map_or(Json::Null, Json::U64)),
                        ),
                    ),
                ])
            })),
        ),
    ]);
    let rendered = doc.render();
    if json {
        println!("{rendered}");
    } else {
        for c in &cells {
            println!(
                "{:>6} {:>8} {:>12} seed={} {:>9} injected={:>3} errors={} violations={}",
                c.class.as_str(),
                c.algo.as_str(),
                c.arm,
                c.report.seed,
                c.report.verdict.name(),
                c.report.injected,
                c.report.rank_errors.len(),
                c.report.acked_violations.len(),
            );
        }
        println!(
            "cells={} survived={survived} injected={injected} host_secs={host_secs:.1}",
            cells.len()
        );
    }
    if out_path != "-" {
        std::fs::write(&out_path, rendered + "\n").expect("write BENCH_degraded.json");
        if !json {
            println!("wrote {out_path}");
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("degraded: GATE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
