//! Figure 8: Flash-IO collective-I/O contribution breakdown with the
//! E10 cache enabled.
use e10_bench::{print_breakdown_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_sweep(scale, move || scale.flashio(), Case::Enabled, false);
    print_breakdown_figure("Fig. 8 — Flash-IO breakdown, cache ENABLED", &points);
}
