//! Figure 8: Flash-IO collective-I/O contribution breakdown with the
//! E10 cache enabled. `--json` for machine output.
use e10_bench::{emit_breakdown_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_sweep(scale, move || scale.flashio(), Case::Enabled, false);
    emit_breakdown_figure(
        "fig8",
        "Fig. 8 — Flash-IO breakdown, cache ENABLED",
        &points,
    );
}
