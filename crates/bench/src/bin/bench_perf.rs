//! Raw-speed baseline: host wall-clock per simulated event and
//! allocator calls per event across the Fig-4 grid × collective-write
//! algorithm {extended, node_agg} × cache class {ssd, nvm}.
//!
//! The emitted `BENCH_perf.json` is the machine-readable perf baseline
//! future PRs regress against: the simulation is deterministic and
//! single-threaded, so events fired, simulated wall time, bandwidth
//! and allocator-call counts are bit-stable for a fixed scale — only
//! the `wall_*`/`host_*` fields depend on the host.
//!
//! `bench_perf [--smoke] [--json] [--out PATH] [--jobs N]
//!             [--check PATH] [--pre NS]`
//!
//! * `--smoke` — test scale (8 ranks) instead of quick; for fast
//!   iteration. The CI gate runs the default quick scale so the
//!   committed baseline and the gate measure the same grid.
//! * `--json` — also print the document to stdout.
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_perf.json`; `-` skips the file).
//! * `--jobs N` — worker count for the wall-clock pass (default
//!   `E10_JOBS`). The allocation pass always runs sequentially on the
//!   main thread: allocator-call counts are only meaningful with one
//!   simulation running in the counted window.
//! * `--check PATH` — regression gate: load a committed baseline and
//!   exit 1 if any cell's events or allocator calls moved at all
//!   (exact, the sim is deterministic) or the densest cell's median
//!   wall-clock per event exceeds `WALL_TOLERANCE ×` the baseline
//!   (loose: hosts differ, and the median is the only wall sample
//!   taken without pool contention).
//! * `--pre NS` — record `NS` as the pre-change ns/event anchor for
//!   the densest cell and gate on the ≥ 20% improvement target.
//!
//! The densest Fig-4 cell (most aggregators × largest collective
//! buffer, extended algorithm, ssd class) is re-run three times and
//! reported as a median, since single wall-clock samples are noisy.

use std::time::Instant;

use e10_bench::{combo_label, hints_for, Case, Json, Scale};
use e10_romio::TestbedSpec;
use e10_simcore::alloc_gauge::{self, CountingAlloc};
use e10_simcore::pool::{run_jobs_on, worker_threads};
use e10_simcore::Job;
use e10_workloads::{run_workload, RunConfig, Workload};

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Factor by which the densest cell's median wall-clock per event may
/// exceed the committed baseline before `--check` fails. Loose on
/// purpose: the baseline host and the CI host differ.
const WALL_TOLERANCE: f64 = 3.0;

/// One grid cell: a Fig-4 combo × algorithm × cache class.
#[derive(Clone, Copy)]
struct Cell {
    aggregators: usize,
    cb_size: u64,
    algo: &'static str,
    class: &'static str,
}

/// One measured cell.
struct Measured {
    cell: Cell,
    /// Calendar events fired (deterministic).
    events: u64,
    /// Simulated seconds (deterministic).
    sim_wall_secs: f64,
    /// Perceived bandwidth, GB/s (deterministic).
    gb_s: f64,
    /// Allocator calls over the whole run (deterministic; 0 until the
    /// sequential allocation pass fills it in).
    allocs: u64,
    /// Host seconds for this run (noisy).
    host_secs: f64,
}

fn grid(scale: Scale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for algo in ["extended", "node_agg"] {
        for class in ["ssd", "nvm"] {
            for aggregators in scale.aggregators() {
                for cb_size in scale.cb_sizes() {
                    cells.push(Cell {
                        aggregators,
                        cb_size,
                        algo,
                        class,
                    });
                }
            }
        }
    }
    cells
}

/// Run one cell in a fresh simulated cluster, returning the outcome
/// plus executor stats. Deterministic for a fixed scale and cell.
fn run_cell(scale: Scale, cell: Cell) -> Measured {
    let t0 = Instant::now();
    let (outcome, stats) = e10_simcore::run_with_stats(async move {
        let workload: e10_workloads::CollPerf = scale.workload();
        let workload = std::rc::Rc::new(workload);
        let mut spec = TestbedSpec::deep_er();
        spec.procs = workload.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let info = hints_for(Case::Enabled, cell.aggregators, cell.cb_size);
        info.set("e10_two_phase", cell.algo);
        info.set("e10_cache_class", cell.class);
        let mut cfg = RunConfig::paper(info, &format!("/gfs/{}", workload.name()));
        cfg.files = scale.files();
        cfg.compute_delay = scale.compute_delay();
        cfg.include_last_sync = false;
        cfg.verify = true;
        run_workload(&tb, workload, &cfg).await
    });
    Measured {
        cell,
        events: stats.events_fired,
        sim_wall_secs: outcome.wall_time,
        gb_s: outcome.gb_s(),
        allocs: 0,
        host_secs: t0.elapsed().as_secs_f64(),
    }
}

fn median3(mut xs: [f64; 3]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[1]
}

fn cell_json(m: &Measured) -> Json {
    let wall_ns_per_event = m.host_secs * 1e9 / m.events.max(1) as f64;
    let allocs_per_event = m.allocs as f64 / m.events.max(1) as f64;
    Json::obj([
        (
            "combo",
            Json::str(combo_label(m.cell.aggregators, m.cell.cb_size)),
        ),
        ("aggregators", Json::U64(m.cell.aggregators as u64)),
        ("cb_size", Json::U64(m.cell.cb_size)),
        ("algo", Json::str(m.cell.algo)),
        ("class", Json::str(m.cell.class)),
        // Host-dependent fields first (never last in the object, so
        // the CI byte-identity strip can remove `"key":value,`).
        ("wall_ns_per_event", Json::F64(wall_ns_per_event)),
        ("host_secs", Json::F64(m.host_secs)),
        ("events", Json::U64(m.events)),
        ("sim_wall_secs", Json::F64(m.sim_wall_secs)),
        ("gb_s", Json::F64(m.gb_s)),
        ("allocs", Json::U64(m.allocs)),
        ("allocs_per_event", Json::F64(allocs_per_event)),
    ])
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json") || e10_bench::json_mode();
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let jobs_n: usize = flag_value(&args, "--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(worker_threads)
        .max(1);
    let check_path = flag_value(&args, "--check");
    let pre_ns: Option<f64> = flag_value(&args, "--pre").and_then(|s| s.parse().ok());
    let scale = if smoke {
        Scale::Test
    } else if std::env::var("E10_SCALE").is_ok() {
        Scale::from_env()
    } else {
        Scale::Quick
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cells = grid(scale);
    eprintln!(
        "bench_perf: scale={} cells={} jobs={jobs_n} host_cpus={host_cpus}",
        scale.name(),
        cells.len()
    );

    // Wall-clock pass: one pool job per cell, results in grid order.
    let wall_jobs: Vec<Job<Measured>> = cells
        .iter()
        .map(|&cell| {
            let job: Job<Measured> = Box::new(move || run_cell(scale, cell));
            job
        })
        .collect();
    let mut measured = run_jobs_on(jobs_n, wall_jobs);

    // Allocation pass: sequential on the main thread, in grid order.
    // One uncounted warm-up run first, so main-thread lazy statics and
    // thread-locals are in the same state whether the wall pass above
    // ran inline (jobs=1) or entirely on pool workers.
    run_cell(scale, cells[0]);
    for (i, &cell) in cells.iter().enumerate() {
        let (allocs, _) = alloc_gauge::count(|| run_cell(scale, cell));
        measured[i].allocs = allocs;
    }

    // Densest-cell probe: most aggregators × largest collective buffer
    // on the baseline algorithm/class, median of three runs.
    let densest = Cell {
        aggregators: *scale.aggregators().last().unwrap(),
        cb_size: *scale.cb_sizes().last().unwrap(),
        algo: "extended",
        class: "ssd",
    };
    let runs: Vec<Measured> = (0..3).map(|_| run_cell(scale, densest)).collect();
    let densest_events = runs[0].events;
    let densest_median_ns = median3([
        runs[0].host_secs * 1e9 / densest_events.max(1) as f64,
        runs[1].host_secs * 1e9 / densest_events.max(1) as f64,
        runs[2].host_secs * 1e9 / densest_events.max(1) as f64,
    ]);
    eprintln!(
        "bench_perf: densest {} extended/ssd median {:.1} ns/event over {} events",
        combo_label(densest.aggregators, densest.cb_size),
        densest_median_ns,
        densest_events
    );

    let mut gate_ok = true;
    let mut improvement = Json::Null;
    if let Some(pre) = pre_ns {
        let pct = (pre - densest_median_ns) / pre * 100.0;
        eprintln!("bench_perf: vs pre-change {pre:.1} ns/event: {pct:.1}% faster");
        if pct < 20.0 {
            eprintln!("bench_perf: GATE FAIL — improvement {pct:.1}% < 20%");
            gate_ok = false;
        }
        improvement = Json::obj([
            ("pre_ns_per_event", Json::F64(pre)),
            ("wall_improvement_pct", Json::F64(pct)),
            ("gate_min_pct", Json::F64(20.0)),
        ]);
    }

    // Regression check against a committed baseline.
    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench_perf --check: cannot read {path}: {e}"));
        let base = Json::parse(&text)
            .unwrap_or_else(|e| panic!("bench_perf --check: cannot parse {path}: {e}"));
        let base_cells = match base.get("cells") {
            Some(Json::Arr(v)) => v.clone(),
            _ => panic!("bench_perf --check: {path} has no cells array"),
        };
        if base.get("scale").and_then(|s| s.as_f64()).is_some()
            || base.get("scale") != Some(&Json::str(scale.name()))
        {
            eprintln!(
                "bench_perf: CHECK SKIPPED — baseline scale {:?} != run scale {}",
                base.get("scale"),
                scale.name()
            );
        } else {
            for (m, b) in measured.iter().zip(base_cells.iter()) {
                let label = format!(
                    "{} {}/{}",
                    combo_label(m.cell.aggregators, m.cell.cb_size),
                    m.cell.algo,
                    m.cell.class
                );
                let b_events = b.get("events").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let b_allocs = b.get("allocs").and_then(|v| v.as_f64()).unwrap_or(0.0);
                if (m.events as f64, m.allocs as f64) != (b_events, b_allocs) {
                    eprintln!(
                        "bench_perf: CHECK FAIL {label} — events/allocs {}/{} vs baseline {}/{}",
                        m.events, m.allocs, b_events, b_allocs
                    );
                    gate_ok = false;
                }
            }
            // Wall-clock gate on the densest median only: every other
            // wall sample ran under pool contention and a loaded CI
            // host, so per-cell wall comparisons would only flake.
            let b_wall = base
                .get("wall_densest_median_ns_per_event")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::INFINITY);
            if densest_median_ns > b_wall * WALL_TOLERANCE {
                eprintln!(
                    "bench_perf: CHECK FAIL densest median — {densest_median_ns:.1} \
                     ns/event > {WALL_TOLERANCE}x baseline {b_wall:.1}"
                );
                gate_ok = false;
            }
        }
    }

    let doc = Json::obj([
        ("bench", Json::str("perf_baseline")),
        ("workload", Json::str("coll_perf")),
        ("scale", Json::str(scale.name())),
        ("procs", Json::U64(scale.procs() as u64)),
        ("nodes", Json::U64(scale.nodes() as u64)),
        // Host-dependent fields (stripped for the CI byte-identity
        // comparison; keep them before a stable field).
        ("jobs", Json::U64(jobs_n as u64)),
        ("host_cpus", Json::U64(host_cpus as u64)),
        (
            "wall_densest_median_ns_per_event",
            Json::F64(densest_median_ns),
        ),
        ("wall_improvement", improvement),
        (
            "densest_combo",
            Json::str(combo_label(densest.aggregators, densest.cb_size)),
        ),
        ("densest_events", Json::U64(densest_events)),
        ("wall_tolerance", Json::F64(WALL_TOLERANCE)),
        ("cells", Json::arr(measured.iter().map(cell_json))),
    ]);
    if json {
        println!("{}", doc.pretty());
    }
    if out_path != "-" {
        std::fs::write(&out_path, doc.pretty() + "\n").expect("write BENCH_perf.json");
        eprintln!("bench_perf: wrote {out_path}");
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
