//! Figure 4: coll_perf perceived write bandwidth for all
//! `<aggregators>_<coll_bufsize>` combinations, three cases.
//!
//! Grid points run on the `E10_JOBS` worker pool; `--json` emits the
//! machine-readable form.
use e10_bench::{emit_bandwidth_figure, run_full_sweep, Scale};
use e10_workloads::CollPerf;

fn main() {
    let scale = Scale::from_env();
    let points = run_full_sweep(scale, move || scale.workload::<CollPerf>(), false);
    emit_bandwidth_figure(
        "fig4",
        "Fig. 4 — coll_perf perceived bandwidth (aggregators_collbuf)",
        &points,
    );
}
