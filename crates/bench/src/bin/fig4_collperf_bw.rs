//! Figure 4: coll_perf perceived write bandwidth for all
//! `<aggregators>_<coll_bufsize>` combinations, three cases.
use e10_bench::{print_bandwidth_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut points = Vec::new();
    for case in Case::ALL {
        eprintln!("case {} ...", case.label());
        points.extend(run_sweep(scale, move || scale.collperf(), case, false));
    }
    print_bandwidth_figure(
        "Fig. 4 — coll_perf perceived bandwidth (aggregators_collbuf)",
        &points,
    );
}
