//! Chaos soak: randomized seeded corruption schedules replayed against
//! a fault-free oracle of the same workload. The gold invariant — the
//! final global-file bytes are identical to the oracle's, or a typed
//! error reached at least one rank — must hold for every seed; a
//! `diverged` verdict means silent corruption escaped the integrity
//! pipeline and fails the whole soak. Not part of the figure set —
//! this is the integrity gate behind `scripts/ci.sh`.
//!
//! `chaos_soak [--smoke] [--json] [--seeds N] [--base N]` — `--smoke`
//! (or `E10_SCALE=quick`) shrinks the soak for CI. Each seed is an
//! independent pair of simulations (oracle + faulted) built inside its
//! pool job, so runs parallelise over `E10_JOBS` and every seed is
//! bit-reproducible regardless of worker count. On divergence the
//! harness shrinks the schedule to a minimal reproducing set and
//! reports it.
use e10_bench::{json_mode, Json};
use e10_romio::CacheClass;
use e10_workloads::{chaos_case, ChaosCase, ChaosReport, ChaosVerdict};

/// Each seed soaks one cache class, cycling through all three so every
/// staging tier (SSD extents, byte-granular NVM front, hybrid split)
/// gets arms at any seed count.
const CLASSES: [CacheClass; 3] = [CacheClass::Ssd, CacheClass::Nvm, CacheClass::Hybrid];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("E10_SCALE").is_ok_and(|v| v == "quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<u64>().ok())
    };
    let seeds = flag("--seeds").unwrap_or(if smoke { 8 } else { 24 });
    let base = flag("--base").unwrap_or(1);
    let json = json_mode();
    if !json {
        println!(
            "# chaos_soak mode={} seeds={seeds} base={base}",
            if smoke { "smoke" } else { "full" }
        );
    }
    let host0 = std::time::Instant::now();
    let jobs: Vec<e10_simcore::Job<(CacheClass, ChaosReport)>> = (0..seeds)
        .map(|i| {
            let class = CLASSES[(i % 3) as usize];
            Box::new(move || (class, chaos_case(&ChaosCase::with_class(base + i, class))))
                as e10_simcore::Job<(CacheClass, ChaosReport)>
        })
        .collect();
    let reports: Vec<(CacheClass, ChaosReport)> = e10_simcore::run_jobs(jobs);
    let host_secs = host0.elapsed().as_secs_f64();

    let count = |v: ChaosVerdict| reports.iter().filter(|(_, r)| r.verdict == v).count() as u64;
    let (clean, detected, diverged) = (
        count(ChaosVerdict::Clean),
        count(ChaosVerdict::Detected),
        count(ChaosVerdict::Diverged),
    );
    let injected: u64 = reports.iter().map(|(_, r)| r.injected).sum();

    if json {
        let doc = Json::obj([
            ("figure", Json::str("chaos_soak")),
            ("mode", Json::str(if smoke { "smoke" } else { "full" })),
            ("seeds", Json::U64(seeds)),
            ("base", Json::U64(base)),
            ("clean", Json::U64(clean)),
            ("detected", Json::U64(detected)),
            ("diverged", Json::U64(diverged)),
            ("injected", Json::U64(injected)),
            ("host_secs", Json::F64(host_secs)),
            (
                "rows",
                Json::arr(reports.iter().map(|(class, r)| {
                    Json::obj([
                        ("seed", Json::U64(r.seed)),
                        ("workload", Json::str(r.workload)),
                        ("cache_class", Json::str(class.as_str())),
                        ("verdict", Json::str(r.verdict.name())),
                        ("plan_specs", Json::U64(r.plan_specs as u64)),
                        ("injected", Json::U64(r.injected)),
                        ("rank_errors", Json::U64(r.rank_errors.len() as u64)),
                        (
                            "mismatched_files",
                            Json::arr(r.mismatched_files.iter().map(|&f| Json::U64(f as u64))),
                        ),
                        (
                            "minimal",
                            r.minimal
                                .as_ref()
                                .map_or(Json::Null, |m| Json::arr(m.iter().map(Json::str))),
                        ),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        for (class, r) in &reports {
            let errs = r
                .rank_errors
                .first()
                .map_or(String::new(), |(rank, msg)| format!(" rank{rank}: {msg}"));
            let min = r
                .minimal
                .as_ref()
                .map_or(String::new(), |m| format!(" minimal=[{}]", m.join(",")));
            println!(
                "seed={:>4} {:>8} {:>6} {:>9} specs={} injected={:>4}{errs}{min}",
                r.seed,
                r.workload,
                class.as_str(),
                r.verdict.name(),
                r.plan_specs,
                r.injected,
            );
        }
        println!(
            "clean={clean} detected={detected} diverged={diverged} injected={injected} \
             host_secs={host_secs:.1}"
        );
    }
    if diverged > 0 {
        eprintln!("chaos_soak: {diverged} seed(s) DIVERGED — silent corruption escaped");
        std::process::exit(1);
    }
}
