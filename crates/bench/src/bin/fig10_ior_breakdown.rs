//! Figure 10: IOR collective-I/O contribution breakdown with the cache
//! enabled — the `not_hidden_sync` term of the final write phase is
//! clearly visible (the `T_s(k) - C(k+1)` of Eq. 1 with C = 0).
//! `--json` for machine output.
use e10_bench::{emit_breakdown_figure, run_sweep, Case, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_sweep(scale, move || scale.ior(), Case::Enabled, true);
    emit_breakdown_figure("fig10", "Fig. 10 — IOR breakdown, cache ENABLED", &points);
}
