//! Machine-readable comparison of the three collective-write
//! algorithms (`e10_two_phase = stock | extended | node_agg`) on the
//! Fig. 4 coll_perf grid.
//!
//! Every grid cell runs all three algorithms with Ring tracing and
//! verification enabled, then reports the shuffle-traffic counters the
//! collective engine emits: total and *inter-node* message counts and
//! bytes, plus the node-agg pre-phase telemetry (requests merged,
//! envelope/header bytes saved). The emitted `BENCH_node_agg.json` is
//! the committed evidence that intra-node aggregation reduces
//! inter-node shuffle traffic while writing byte-identical files.
//!
//! `node_agg [--smoke] [--json] [--out PATH] [--jobs N]`
//!
//! * `--smoke` — test scale, used by `scripts/ci.sh` as the traffic-
//!   reduction gate (exit 1 if node_agg does not strictly reduce
//!   inter-node shuffle bytes AND messages vs extended on every cell).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_node_agg.json`; `-` skips the file).
//! * `--jobs N` — parallel worker count (default `E10_JOBS` /
//!   available parallelism).
//! * `--json` — also print the document to stdout.
//!
//! Scale follows `E10_SCALE` but defaults to `quick`: this is a
//! traffic probe, not a figure regeneration.

use std::rc::Rc;

use e10_bench::{combo_label, json_mode, paper_base_hints, Json, Scale};
use e10_romio::{TestbedSpec, TraceMode};
use e10_simcore::pool::{run_jobs_on, worker_threads};
use e10_simcore::Job;
use e10_workloads::{run_workload, CollPerf, RunConfig, Workload};

/// The three collective-write algorithms, in presentation order.
const ALGOS: [&str; 3] = ["stock", "extended", "node_agg"];

/// Shuffle-traffic counters of one (cell, algorithm) run.
#[derive(Clone)]
struct AlgoStats {
    algo: &'static str,
    gb_s: f64,
    sim_wall_secs: f64,
    shuffle_msgs: u64,
    shuffle_bytes: u64,
    remote_msgs: u64,
    remote_bytes: u64,
    merged_reqs: u64,
    bytes_saved: u64,
}

/// One grid cell: the same workload under all three algorithms.
struct Cell {
    combo: String,
    aggregators: usize,
    cb_size: u64,
    stats: Vec<AlgoStats>,
}

fn counter(snap: &e10_simcore::trace::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |&(_, v)| v)
}

/// Run one cell × algorithm: cache disabled (the traffic comparison is
/// about the exchange, not the write target), verification on, Ring
/// tracing to collect the engine's counters.
fn run_algo(scale: Scale, algo: &'static str, aggs: usize, cb: u64) -> AlgoStats {
    let outcome = e10_simcore::run(async move {
        let workload = Rc::new(scale.workload::<CollPerf>());
        let mut spec = TestbedSpec::deep_er();
        spec.procs = workload.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let hints = paper_base_hints();
        hints.set("cb_nodes", &aggs.to_string());
        hints.set("cb_buffer_size", &cb.to_string());
        hints.set("e10_two_phase", algo);
        let mut cfg = RunConfig::paper(hints, &format!("/gfs/node_agg_{algo}"));
        cfg.files = scale.files();
        cfg.compute_delay = scale.compute_delay();
        cfg.trace.mode = TraceMode::Ring;
        run_workload(&tb, workload, &cfg).await
    });
    let snap = outcome
        .metrics
        .clone()
        .expect("ring tracing always snapshots metrics");
    AlgoStats {
        algo,
        gb_s: outcome.gb_s(),
        sim_wall_secs: outcome.wall_time,
        shuffle_msgs: counter(&snap, "coll.shuffle.msgs"),
        shuffle_bytes: counter(&snap, "coll.shuffle.bytes"),
        remote_msgs: counter(&snap, "coll.shuffle.remote_msgs"),
        remote_bytes: counter(&snap, "coll.shuffle.remote_bytes"),
        merged_reqs: counter(&snap, "coll.node_agg.merged_reqs"),
        bytes_saved: counter(&snap, "coll.node_agg.shuffle_bytes_saved"),
    }
}

fn make_jobs(scale: Scale) -> Vec<Job<AlgoStats>> {
    let mut jobs: Vec<Job<AlgoStats>> = Vec::new();
    for aggs in scale.aggregators() {
        for cb in scale.cb_sizes() {
            for algo in ALGOS {
                jobs.push(Box::new(move || {
                    eprintln!("  running {} {algo} ...", combo_label(aggs, cb));
                    run_algo(scale, algo, aggs, cb)
                }));
            }
        }
    }
    jobs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_node_agg.json".to_string());
    let jobs_n = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(worker_threads)
        .max(1);
    let scale = if smoke {
        Scale::Test
    } else if std::env::var("E10_SCALE").is_ok() {
        Scale::from_env()
    } else {
        Scale::Quick
    };
    eprintln!("node_agg: scale={} jobs={jobs_n}", scale.name());

    let flat = run_jobs_on(jobs_n, make_jobs(scale));
    let mut cells: Vec<Cell> = Vec::new();
    let mut it = flat.into_iter();
    for aggs in scale.aggregators() {
        for cb in scale.cb_sizes() {
            let stats: Vec<AlgoStats> = (0..ALGOS.len()).map(|_| it.next().unwrap()).collect();
            cells.push(Cell {
                combo: combo_label(aggs, cb),
                aggregators: aggs,
                cb_size: cb,
                stats,
            });
        }
    }

    // The gate: on a testbed where ranks share nodes, intra-node
    // aggregation must strictly reduce inter-node shuffle traffic —
    // both bytes and message count — against the extended algorithm,
    // in every grid cell. (Verification inside each run already proved
    // all three algorithms write byte-identical files.)
    let mut gate_ok = true;
    for cell in &cells {
        let ext = &cell.stats[1];
        let na = &cell.stats[2];
        let bytes_ok = na.remote_bytes < ext.remote_bytes;
        let msgs_ok = na.remote_msgs < ext.remote_msgs;
        if !bytes_ok || !msgs_ok {
            gate_ok = false;
            eprintln!(
                "GATE FAIL at {}: node_agg remote {} msgs / {} B vs extended {} msgs / {} B",
                cell.combo, na.remote_msgs, na.remote_bytes, ext.remote_msgs, ext.remote_bytes
            );
        }
    }

    let doc = Json::obj([
        ("bench", Json::str("node_agg_traffic")),
        ("workload", Json::str("coll_perf")),
        ("scale", Json::str(scale.name())),
        ("procs", Json::U64(scale.procs() as u64)),
        ("nodes", Json::U64(scale.nodes() as u64)),
        ("jobs", Json::U64(jobs_n as u64)),
        (
            "gate",
            Json::obj([
                (
                    "node_agg_reduces_internode_traffic_vs_extended",
                    Json::Bool(gate_ok),
                ),
                ("files_verified_byte_identical", Json::Bool(true)),
            ]),
        ),
        (
            "cells",
            Json::arr(cells.iter().map(|cell| {
                Json::obj([
                    ("combo", Json::str(&cell.combo)),
                    ("aggregators", Json::U64(cell.aggregators as u64)),
                    ("cb_size", Json::U64(cell.cb_size)),
                    (
                        "algorithms",
                        Json::arr(cell.stats.iter().map(|s| {
                            Json::obj([
                                ("algo", Json::str(s.algo)),
                                ("gb_s", Json::F64(s.gb_s)),
                                ("sim_wall_secs", Json::F64(s.sim_wall_secs)),
                                ("shuffle_msgs", Json::U64(s.shuffle_msgs)),
                                ("shuffle_bytes", Json::U64(s.shuffle_bytes)),
                                ("remote_msgs", Json::U64(s.remote_msgs)),
                                ("remote_bytes", Json::U64(s.remote_bytes)),
                                ("merged_reqs", Json::U64(s.merged_reqs)),
                                ("shuffle_bytes_saved", Json::U64(s.bytes_saved)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ]);
    let rendered = doc.pretty();
    if out_path != "-" {
        std::fs::write(&out_path, format!("{rendered}\n")).expect("write node_agg json");
        eprintln!("node_agg: wrote {out_path}");
    }
    if json_mode() {
        println!("{rendered}");
    } else {
        println!(
            "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
            "combo", "algo", "remote_msgs", "remote_bytes", "merged", "saved_B"
        );
        for cell in &cells {
            for s in &cell.stats {
                println!(
                    "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
                    cell.combo, s.algo, s.remote_msgs, s.remote_bytes, s.merged_reqs, s.bytes_saved
                );
            }
        }
        println!("gate (node_agg < extended inter-node traffic, every cell): {gate_ok}");
    }
    if !gate_ok {
        eprintln!("node_agg: intra-node aggregation did NOT reduce inter-node traffic");
        std::process::exit(1);
    }
}
