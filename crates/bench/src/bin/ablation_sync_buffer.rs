//! Ablation: `ind_wr_buffer_size` — the cache synchronisation buffer.
//!
//! The paper fixes it at 512 KB "for simplicity"; this sweep shows why
//! the choice matters: the sync thread's per-chunk round trip bounds a
//! single stream, so small buffers throttle the background flush and
//! push the 8-aggregator configurations into exposed-sync territory.

use std::rc::Rc;

use e10_bench::{hints_for, Case, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::Workload;
use e10_workloads::{run_workload, RunConfig};

fn main() {
    let scale = Scale::from_env();
    let aggs = scale.aggregators()[0]; // the stressed low-aggregator case
    let cb = scale.cb_sizes()[0];
    println!(
        "Sync-buffer ablation, coll_perf, cache enabled, {} aggregators",
        aggs
    );
    println!(
        "{:>16} {:>12} {:>18} {:>12}",
        "ind_wr_buffer", "BW [GB/s]", "exposed sync [s]", "T_c [s]"
    );
    for shift in [17u32, 19, 21, 23] {
        let buf = 1u64 << shift; // 128K .. 8M
        let (bw, exposed, t_c) = e10_simcore::run(async move {
            let w = Rc::new(scale.collperf());
            let mut spec = TestbedSpec::deep_er();
            spec.procs = w.procs();
            spec.nodes = scale.nodes();
            let tb = spec.build();
            let hints = hints_for(Case::Enabled, aggs, cb);
            hints.set("ind_wr_buffer_size", &buf.to_string());
            let mut cfg = RunConfig::paper(hints, "/gfs/abl_sync");
            cfg.files = 2;
            cfg.compute_delay = scale.compute_delay();
            let out = run_workload(&tb, w, &cfg).await;
            (out.gb_s(), out.phases[0].not_hidden, out.phases[0].t_c)
        });
        println!(
            "{:>13}KiB {:>12.2} {:>18.2} {:>12.2}",
            buf >> 10,
            bw,
            exposed,
            t_c
        );
    }
}
