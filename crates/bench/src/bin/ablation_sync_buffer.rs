//! Ablation: `ind_wr_buffer_size` — the cache synchronisation buffer.
//!
//! The paper fixes it at 512 KB "for simplicity"; this sweep shows why
//! the choice matters: the sync thread's per-chunk round trip bounds a
//! single stream, so small buffers throttle the background flush and
//! push the 8-aggregator configurations into exposed-sync territory.
//! `--json` for machine output.

use std::rc::Rc;

use e10_bench::{hints_for, json_mode, Case, Json, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::Workload;
use e10_workloads::{run_workload, RunConfig};

fn main() {
    let scale = Scale::from_env();
    let aggs = scale.aggregators()[0]; // the stressed low-aggregator case
    let cb = scale.cb_sizes()[0];
    let rows: Vec<(u64, f64, f64, f64)> = [17u32, 19, 21, 23]
        .into_iter()
        .map(|shift| {
            let buf = 1u64 << shift; // 128K .. 8M
            let (bw, exposed, t_c) = e10_simcore::run(async move {
                let w = Rc::new(scale.collperf());
                let mut spec = TestbedSpec::deep_er();
                spec.procs = w.procs();
                spec.nodes = scale.nodes();
                let tb = spec.build();
                let hints = hints_for(Case::Enabled, aggs, cb);
                hints.set("ind_wr_buffer_size", &buf.to_string());
                let mut cfg = RunConfig::paper(hints, "/gfs/abl_sync");
                cfg.files = 2;
                cfg.compute_delay = scale.compute_delay();
                let out = run_workload(&tb, w, &cfg).await;
                (out.gb_s(), out.phases[0].not_hidden, out.phases[0].t_c)
            });
            (buf, bw, exposed, t_c)
        })
        .collect();

    if json_mode() {
        let doc = Json::obj([
            ("figure", Json::str("ablation_sync_buffer")),
            ("scale", Json::str(scale.name())),
            ("aggregators", Json::U64(aggs as u64)),
            (
                "rows",
                Json::arr(rows.iter().map(|&(buf, bw, exposed, t_c)| {
                    Json::obj([
                        ("ind_wr_buffer_bytes", Json::U64(buf)),
                        ("gb_s", Json::F64(bw)),
                        ("exposed_sync_secs", Json::F64(exposed)),
                        ("t_c_secs", Json::F64(t_c)),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!(
        "Sync-buffer ablation, coll_perf, cache enabled, {} aggregators",
        aggs
    );
    println!(
        "{:>16} {:>12} {:>18} {:>12}",
        "ind_wr_buffer", "BW [GB/s]", "exposed sync [s]", "T_c [s]"
    );
    for (buf, bw, exposed, t_c) in rows {
        println!(
            "{:>13}KiB {:>12.2} {:>18.2} {:>12.2}",
            buf >> 10,
            bw,
            exposed,
            t_c
        );
    }
}
