//! Sensitivity study defending the DESIGN.md granularity substitution:
//! the real coll_perf writes 8-byte elements (KB-scale runs); we use a
//! configurable chunk (default 128 KiB) to keep 512-rank runs
//! tractable. This sweep re-runs the key Fig. 4 points at several
//! chunk granularities — if the substitution is sound, the bandwidths
//! must be insensitive to the choice.

use std::rc::Rc;

use e10_bench::{hints_for, Case, Scale};
use e10_romio::TestbedSpec;
use e10_workloads::{run_workload, CollPerf, RunConfig, Workload};

fn run_one(scale: Scale, chunk: u64, case: Case, aggs: usize) -> f64 {
    e10_simcore::run(async move {
        // Hold the block size at 64 MB/rank by trading side³ against
        // chunk: side = (64 MiB / chunk)^(1/3).
        let block = 64u64 << 20;
        let side = ((block / chunk) as f64).cbrt().round() as u64;
        assert_eq!(side * side * side * chunk, block, "chunk must cube-divide");
        let w = Rc::new(CollPerf {
            grid: [8, 8, 8],
            side,
            chunk,
        });
        let mut spec = TestbedSpec::deep_er();
        spec.procs = w.procs();
        spec.nodes = scale.nodes();
        let tb = spec.build();
        let mut cfg = RunConfig::paper(hints_for(case, aggs, 4 << 20), "/gfs/sens");
        cfg.files = 2;
        cfg.compute_delay = scale.compute_delay();
        cfg.verify = case.verifiable();
        run_workload(&tb, w, &cfg).await.gb_s()
    })
}

fn main() {
    let scale = Scale::from_env();
    // Chunks that cube-divide 64 MiB: side ∈ {16, 8, 4} → 16 KiB,
    // 128 KiB, 1 MiB.
    let chunks: &[(u64, &str)] = &[(16 << 10, "16K"), (128 << 10, "128K"), (1 << 20, "1M")];
    let points = [
        ("disabled 64_4M", Case::Disabled, 64usize),
        ("enabled 64_4M", Case::Enabled, 64),
        ("enabled 8_4M", Case::Enabled, 8),
    ];
    let rows: Vec<(&str, Vec<(u64, f64)>)> = points
        .into_iter()
        .map(|(label, case, aggs)| {
            let bws = chunks
                .iter()
                .map(|&(chunk, _)| (chunk, run_one(scale, chunk, case, aggs)))
                .collect();
            (label, bws)
        })
        .collect();

    if e10_bench::json_mode() {
        use e10_bench::Json;
        let doc = Json::obj([
            ("figure", Json::str("sensitivity_granularity")),
            ("scale", Json::str(scale.name())),
            (
                "rows",
                Json::arr(rows.iter().map(|(label, bws)| {
                    Json::obj([
                        ("point", Json::str(*label)),
                        (
                            "chunks",
                            Json::arr(bws.iter().map(|&(chunk, bw)| {
                                Json::obj([
                                    ("chunk_bytes", Json::U64(chunk)),
                                    ("gb_s", Json::F64(bw)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }

    println!("coll_perf granularity sensitivity (Fig. 4 anchor points, GB/s):");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "point", "16K chunks", "128K (used)", "1M chunks"
    );
    for (label, bws) in rows {
        print!("{label:<22}");
        for (_, bw) in bws {
            print!(" {bw:>10.2}");
        }
        println!();
    }
    println!(
        "\nMoving FINER than the 128 KiB used for the figures (toward the\n\
         real benchmark's KB-scale runs) leaves every point unchanged,\n\
         so the substitution does not drive the results; only much\n\
         coarser chunks would inflate the cached numbers by cutting\n\
         shuffle message counts."
    );
}
