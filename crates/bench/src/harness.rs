//! Wall-clock micro-benchmark harness with a criterion-shaped API.
//!
//! The offline build environment has no crates.io, so the real
//! `criterion` crate is unavailable; this module lets the bench targets
//! under `benches/` keep their structure (`Criterion`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) while
//! measuring with plain `std::time::Instant`. Statistics are
//! deliberately simple — median/min/max over `sample_size` samples —
//! which is plenty for spotting order-of-magnitude regressions in the
//! simulator's hot paths.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; accepted for API compatibility,
/// every batch is one iteration here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Setup output is cheap to hold.
    SmallInput,
    /// Setup output is large.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Collects samples for one benchmark function.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, one sample per call, `sample_size` samples
    /// (plus one untimed warm-up).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`], with an untimed per-sample setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(t0.elapsed());
        }
    }
}

/// Benchmark registry/runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark and print its timing line.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        let mut ds = b.durations;
        if ds.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        ds.sort();
        let median = ds[ds.len() / 2];
        println!(
            "{name:<44} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            median,
            ds[0],
            ds[ds.len() - 1],
            ds.len()
        );
    }
}

/// criterion-compatible group declaration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// criterion-compatible entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
