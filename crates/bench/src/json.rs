//! Minimal JSON emission and parsing for the bench binaries' `--json`
//! mode.
//!
//! The workspace builds offline (no serde); this is the small subset
//! the machine-readable outputs need: a value tree, a deterministic
//! renderer, and a parser so golden-figure tests can compare committed
//! artifacts numerically instead of as float strings. Object keys keep
//! insertion order so two runs of the same experiment produce
//! byte-identical documents; floats render through Rust's
//! shortest-round-trip `Display`, so a reader recovers the exact `f64`
//! the simulation produced.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Double; NaN/±inf render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse a JSON document. Integers without a fraction or exponent
    /// come back as [`Json::U64`] (or [`Json::I64`] when negative);
    /// everything else numeric as [`Json::F64`]. Trailing garbage
    /// after the top-level value is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, whatever variant carries it.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Structural equality with numeric tolerance: numbers are equal
    /// when `|a - b| <= rel_tol * max(1, |a|, |b|)` regardless of
    /// variant (`U64(3)` matches `F64(3.0)`), objects must hold the
    /// same key set (order-insensitively) with pairwise-equal values,
    /// and everything else compares exactly. This is what golden tests
    /// use instead of float string equality.
    pub fn approx_eq(&self, other: &Json, rel_tol: f64) -> bool {
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            return (a - b).abs() <= rel_tol * a.abs().max(b.abs()).max(1.0);
        }
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, rel_tol))
            }
            (Json::Obj(a), Json::Obj(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| other.get(k).is_some_and(|w| v.approx_eq(w, rel_tol)))
            }
            _ => false,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation, one key or element per line.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` for f64 is the shortest string that round-trips, but
    // omits any fraction for integral values; keep a `.0` so readers
    // that distinguish int/float types see a float.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((k, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pairs arrive as two \u escapes.
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    char::from_u32(0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00))
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape before offset {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched: take
                    // the whole char from the source str.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("short \\u escape at offset {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at offset {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !s.contains(['.', 'e', 'E']) {
            if s.starts_with('-') {
                if let Ok(n) = s.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = s.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        s.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{s}' at offset {start}"))
    }
}

/// Whether the binary was invoked with `--json`.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::obj([
            ("name", Json::str("fig4")),
            ("n", Json::U64(3)),
            ("neg", Json::I64(-2)),
            ("bw", Json::F64(1.25)),
            ("whole", Json::F64(2.0)),
            ("bad", Json::F64(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("row", Json::arr([Json::Null, Json::U64(7)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig4","n":3,"neg":-2,"bw":1.25,"whole":2.0,"bad":null,"ok":true,"row":[null,7]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.1, 1.0 / 3.0, 123456.789, 1e-12, -0.0] {
            let s = Json::F64(x).render();
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn parse_inverts_render() {
        let v = Json::obj([
            ("name", Json::str("fig4 \"x\"\n")),
            ("n", Json::U64(3)),
            ("neg", Json::I64(-2)),
            ("bw", Json::F64(1.0 / 3.0)),
            ("whole", Json::F64(2.0)),
            ("ok", Json::Bool(false)),
            (
                "row",
                Json::arr([Json::Null, Json::U64(7), Json::Str(String::new())]),
            ),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        // `2.0` re-parses as an F64 with the identical bits; everything
        // else round-trips variant-exactly.
        assert_eq!(back, v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""aA\n\t\"\\\/é😀°""#).unwrap(),
            Json::str("aA\n\t\"\\/é😀°")
        );
        assert_eq!(Json::parse(" -12 ").unwrap(), Json::I64(-12));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn approx_eq_tolerates_numeric_noise_only() {
        let a = Json::parse(r#"{"x":1.0,"y":[2,{"z":3.0}],"s":"v"}"#).unwrap();
        let b = Json::parse(r#"{"y":[2.0000000001,{"z":3}],"x":1,"s":"v"}"#).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        // Beyond tolerance, wrong string, missing key: all unequal.
        let far = Json::parse(r#"{"x":1.01,"y":[2,{"z":3.0}],"s":"v"}"#).unwrap();
        assert!(!a.approx_eq(&far, 1e-9));
        assert!(a.approx_eq(&far, 0.1));
        let diff = Json::parse(r#"{"x":1.0,"y":[2,{"z":3.0}],"s":"w"}"#).unwrap();
        assert!(!a.approx_eq(&diff, 1e-9));
        let short = Json::parse(r#"{"x":1.0,"y":[2,{"z":3.0}]}"#).unwrap();
        assert!(!a.approx_eq(&short, 1e-9));
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = Json::obj([
            ("a", Json::arr([Json::U64(1), Json::U64(2)])),
            ("b", Json::obj([("c", Json::Null)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": null\n  },\n  \"empty\": []\n}"
        );
    }
}
