//! Minimal JSON emission for the bench binaries' `--json` mode.
//!
//! The workspace builds offline (no serde); this is the small subset
//! the machine-readable outputs need: a value tree and a deterministic
//! renderer. Object keys keep insertion order so two runs of the same
//! experiment produce byte-identical documents; floats render through
//! Rust's shortest-round-trip `Display`, so a reader recovers the
//! exact `f64` the simulation produced.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Double; NaN/±inf render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation, one key or element per line.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` for f64 is the shortest string that round-trips, but
    // omits any fraction for integral values; keep a `.0` so readers
    // that distinguish int/float types see a float.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Whether the binary was invoked with `--json`.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::obj([
            ("name", Json::str("fig4")),
            ("n", Json::U64(3)),
            ("neg", Json::I64(-2)),
            ("bw", Json::F64(1.25)),
            ("whole", Json::F64(2.0)),
            ("bad", Json::F64(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("row", Json::arr([Json::Null, Json::U64(7)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig4","n":3,"neg":-2,"bw":1.25,"whole":2.0,"bad":null,"ok":true,"row":[null,7]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.1, 1.0 / 3.0, 123456.789, 1e-12, -0.0] {
            let s = Json::F64(x).render();
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = Json::obj([
            ("a", Json::arr([Json::U64(1), Json::U64(2)])),
            ("b", Json::obj([("c", Json::Null)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": null\n  },\n  \"empty\": []\n}"
        );
    }
}
