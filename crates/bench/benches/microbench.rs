//! Micro-benchmarks of the simulator's hot paths: DES event
//! throughput, extent-map updates, datatype flattening and window
//! queries, file-domain math and the fair-share allocator — the pieces
//! a 512-rank two-phase run stresses millions of times.

use e10_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use e10_mpisim::{FileView, FlatType};
use e10_romio::{FdStrategy, FileDomains};
use e10_simcore::resource::water_fill;
use e10_simcore::{run, sleep, spawn, SimDuration};
use e10_storesim::{ExtentMap, Source};

fn bench_des_events(c: &mut Criterion) {
    c.bench_function("simcore/100k_timer_events", |b| {
        b.iter(|| {
            run(async {
                for _ in 0..100_000u32 {
                    sleep(SimDuration::from_nanos(10)).await;
                }
            })
        })
    });
    c.bench_function("simcore/10k_task_spawn_join", |b| {
        b.iter(|| {
            run(async {
                let hs: Vec<_> = (0..10_000u64)
                    .map(|i| {
                        spawn(async move {
                            sleep(SimDuration::from_nanos(i % 97)).await;
                            i
                        })
                    })
                    .collect();
                let mut acc = 0u64;
                for h in hs {
                    acc = acc.wrapping_add(h.await);
                }
                black_box(acc)
            })
        })
    });
}

fn bench_extent_map(c: &mut Criterion) {
    c.bench_function("extent_map/10k_sequential_merging_inserts", |b| {
        b.iter(|| {
            let mut m = ExtentMap::new();
            for i in 0..10_000u64 {
                m.insert(i * 64, 64, Source::gen_at(1, i * 64));
            }
            black_box(m.extent_count())
        })
    });
    c.bench_function("extent_map/10k_strided_inserts", |b| {
        b.iter(|| {
            let mut m = ExtentMap::new();
            for i in 0..10_000u64 {
                m.insert(i * 128, 64, Source::gen_at(1, i * 128));
            }
            black_box(m.extent_count())
        })
    });
    c.bench_function("extent_map/lookup_after_10k", |b| {
        let mut m = ExtentMap::new();
        for i in 0..10_000u64 {
            m.insert(i * 128, 64, Source::gen_at(1, i * 128));
        }
        b.iter(|| black_box(m.lookup(300_000, 100_000).len()))
    });
}

fn bench_datatypes(c: &mut Criterion) {
    c.bench_function("datatype/subarray_flatten_64x64", |b| {
        b.iter(|| {
            let f =
                FlatType::subarray(black_box(&[256, 256, 256]), &[64, 64, 64], &[64, 128, 0], 8);
            black_box(f.runs().len())
        })
    });
    let f = FlatType::vector(65_536, 1024, 4096);
    let view = FileView::new(&f, 0);
    c.bench_function("datatype/window_query_65k_runs", |b| {
        b.iter(|| {
            black_box(
                view.pieces_in_window(black_box(120_000_000), black_box(124_000_000))
                    .len(),
            )
        })
    });
}

fn bench_fd_and_sharing(c: &mut Criterion) {
    c.bench_function("fd/partition_512_aggs_aligned", |b| {
        b.iter(|| {
            let fds = FileDomains::compute(
                black_box(0),
                black_box(32 << 30),
                512,
                FdStrategy::StripeAligned,
                4 << 20,
            );
            black_box(fds.max_size())
        })
    });
    let caps: Vec<Option<f64>> = (0..64)
        .map(|i| {
            if i % 3 == 0 {
                Some(1e6 + i as f64)
            } else {
                None
            }
        })
        .collect();
    c.bench_function("resource/water_fill_64_jobs", |b| {
        b.iter_batched(
            || caps.clone(),
            |caps| black_box(water_fill(1e9, &caps)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_collectives(c: &mut Criterion) {
    use e10_mpisim::{launch, CollBackend, WorldSpec};
    for (name, backend) in [
        ("algorithmic", CollBackend::Algorithmic),
        ("analytic", CollBackend::Analytic),
    ] {
        c.bench_function(&format!("mpi/alltoall_32_ranks_{name}"), |b| {
            b.iter(|| {
                run(async move {
                    let mut spec = WorldSpec::for_tests(32, 8);
                    spec.backend = backend;
                    launch(spec, |comm| async move {
                        let v: Vec<u64> = (0..comm.size() as u64).collect();
                        for _ in 0..4 {
                            black_box(comm.alltoall(v.clone(), 8).await);
                        }
                    })
                    .await
                })
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_des_events,
              bench_extent_map,
              bench_datatypes,
              bench_fd_and_sharing,
              bench_collectives
);
criterion_main!(benches);
