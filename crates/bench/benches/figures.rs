//! Figure-regeneration benches: one Criterion benchmark per paper
//! artifact (Figs. 4-10), each running a scaled-down instance of the
//! exact experiment pipeline the corresponding `fig*` binary runs at
//! full scale. `cargo bench` therefore exercises every experiment
//! end-to-end; the binaries produce the full 512-rank numbers for
//! EXPERIMENTS.md.

use e10_bench::harness::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use e10_bench::{run_point, Case, Scale};

fn tiny_collperf() -> e10_workloads::CollPerf {
    e10_workloads::CollPerf {
        grid: [2, 2, 2],
        side: 2,
        chunk: 8 << 10,
    }
}

fn tiny_flash() -> e10_workloads::FlashIo {
    e10_workloads::FlashIo {
        nprocs: 8,
        blocks_per_proc: 2,
        zones: 4,
        nvars: 4,
        file: e10_workloads::FlashFile::Checkpoint,
    }
}

fn tiny_ior() -> e10_workloads::Ior {
    e10_workloads::Ior {
        nprocs: 8,
        block_size: 64 << 10,
        transfer_size: 64 << 10,
        segments: 2,
    }
}

/// Scaled-down sweep point matching one figure's pipeline.
fn point(c: &mut Criterion, name: &str, case: Case, which: u8, include_last: bool) {
    c.bench_function(name, move |b| {
        b.iter(|| {
            let p = match which {
                0 => run_point(Scale::Quick, tiny_collperf, case, 2, 64 << 10, include_last),
                1 => run_point(Scale::Quick, tiny_flash, case, 2, 64 << 10, include_last),
                _ => run_point(Scale::Quick, tiny_ior, case, 2, 64 << 10, include_last),
            };
            black_box(p.outcome.bandwidth)
        })
    });
}

fn fig4(c: &mut Criterion) {
    point(c, "fig4/collperf_bw_disabled", Case::Disabled, 0, false);
    point(c, "fig4/collperf_bw_enabled", Case::Enabled, 0, false);
    point(
        c,
        "fig4/collperf_bw_theoretical",
        Case::Theoretical,
        0,
        false,
    );
}

fn fig5_6(c: &mut Criterion) {
    // The breakdown figures reuse the same runs; benching the enabled
    // and disabled pipelines covers both.
    point(c, "fig5/collperf_breakdown_cache", Case::Enabled, 0, false);
    point(
        c,
        "fig6/collperf_breakdown_nocache",
        Case::Disabled,
        0,
        false,
    );
}

fn fig7_8(c: &mut Criterion) {
    point(c, "fig7/flashio_bw_enabled", Case::Enabled, 1, false);
    point(c, "fig7/flashio_bw_disabled", Case::Disabled, 1, false);
    point(c, "fig8/flashio_breakdown_cache", Case::Enabled, 1, false);
}

fn fig9_10(c: &mut Criterion) {
    point(c, "fig9/ior_bw_enabled_lastsync", Case::Enabled, 2, true);
    point(c, "fig9/ior_bw_disabled_lastsync", Case::Disabled, 2, true);
    point(c, "fig10/ior_breakdown_cache", Case::Enabled, 2, true);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4, fig5_6, fig7_8, fig9_10
);
criterion_main!(benches);
