//! The parallel sweep engine's core guarantee: job count changes
//! wall-clock time only. Every simulation is constructed and run
//! entirely inside its worker thread and results are keyed by grid
//! index, so the figures must come out byte-identical whether the
//! sweep ran on one thread (`E10_JOBS=1`) or many (`E10_JOBS=8`).
//! The explicit-worker-count entry points are the same code path the
//! env var selects, minus the process-global env mutation that would
//! race with other tests.

use e10_bench::{
    format_bandwidth_figure, format_breakdown_figure, run_full_sweep_on, run_sweep_on, Case, Scale,
};

#[test]
fn fig4_output_is_byte_identical_at_1_and_8_jobs() {
    let scale = Scale::Test;
    let title = "Fig. 4 — coll_perf perceived bandwidth (aggregators_collbuf)";
    let sweep = |jobs| {
        let points = run_full_sweep_on(jobs, scale, move || scale.collperf(), false);
        format_bandwidth_figure(title, &points)
    };
    let sequential = sweep(1);
    let parallel = sweep(8);
    // Sanity: the figure actually contains the full grid.
    for combo in ["2_8K", "2_32K", "4_8K", "4_32K"] {
        assert!(sequential.contains(combo), "missing combo {combo}");
    }
    assert_eq!(sequential, parallel, "fig4 output depends on job count");
}

/// The node-agg collective path (gather pre-phase, merged windows,
/// traffic counters) must be bit-deterministic across worker counts:
/// a traced Test-scale grid run under `E10_JOBS=1` and `E10_JOBS=8`
/// equivalents yields identical sim times, bandwidths and counter
/// snapshots.
#[test]
fn node_agg_sweep_is_bit_identical_at_1_and_8_jobs() {
    use std::rc::Rc;

    use e10_bench::paper_base_hints;
    use e10_romio::{TestbedSpec, TraceMode};
    use e10_workloads::{run_workload, CollPerf, RunConfig, Workload};

    let scale = Scale::Test;
    let sweep = |jobs: usize| -> Vec<String> {
        let mut grid: Vec<e10_simcore::Job<String>> = Vec::new();
        for aggs in scale.aggregators() {
            for cb in scale.cb_sizes() {
                grid.push(Box::new(move || {
                    let outcome = e10_simcore::run(async move {
                        let workload = Rc::new(scale.workload::<CollPerf>());
                        let mut spec = TestbedSpec::deep_er();
                        spec.procs = workload.procs();
                        spec.nodes = scale.nodes();
                        let tb = spec.build();
                        let hints = paper_base_hints();
                        hints.set("cb_nodes", &aggs.to_string());
                        hints.set("cb_buffer_size", &cb.to_string());
                        hints.set("e10_two_phase", "node_agg");
                        let mut cfg = RunConfig::paper(hints, "/gfs/na_det");
                        cfg.files = scale.files();
                        cfg.compute_delay = scale.compute_delay();
                        cfg.trace.mode = TraceMode::Ring;
                        run_workload(&tb, workload, &cfg).await
                    });
                    format!(
                        "{aggs}_{cb}: wall={:016x} bw={:016x} counters={:?}",
                        outcome.wall_time.to_bits(),
                        outcome.bandwidth.to_bits(),
                        outcome.metrics.expect("traced run has metrics").counters,
                    )
                }));
            }
        }
        e10_simcore::pool::run_jobs_on(jobs, grid)
    };
    let sequential = sweep(1);
    let parallel = sweep(8);
    assert!(sequential
        .iter()
        .all(|s| s.contains("coll.node_agg.merged_reqs")));
    assert_eq!(
        sequential, parallel,
        "node_agg sweep outcome depends on job count"
    );
}

#[test]
fn breakdown_output_is_byte_identical_at_1_and_8_jobs() {
    let scale = Scale::Test;
    let sweep = |jobs| {
        let points = run_sweep_on(jobs, scale, move || scale.collperf(), Case::Enabled, false);
        format_breakdown_figure("breakdown", &points)
    };
    assert_eq!(sweep(1), sweep(8), "breakdown output depends on job count");
}
