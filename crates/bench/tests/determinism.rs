//! The parallel sweep engine's core guarantee: job count changes
//! wall-clock time only. Every simulation is constructed and run
//! entirely inside its worker thread and results are keyed by grid
//! index, so the figures must come out byte-identical whether the
//! sweep ran on one thread (`E10_JOBS=1`) or many (`E10_JOBS=8`).
//! The explicit-worker-count entry points are the same code path the
//! env var selects, minus the process-global env mutation that would
//! race with other tests.

use e10_bench::{
    format_bandwidth_figure, format_breakdown_figure, run_full_sweep_on, run_sweep_on, Case, Scale,
};

#[test]
fn fig4_output_is_byte_identical_at_1_and_8_jobs() {
    let scale = Scale::Test;
    let title = "Fig. 4 — coll_perf perceived bandwidth (aggregators_collbuf)";
    let sweep = |jobs| {
        let points = run_full_sweep_on(jobs, scale, move || scale.collperf(), false);
        format_bandwidth_figure(title, &points)
    };
    let sequential = sweep(1);
    let parallel = sweep(8);
    // Sanity: the figure actually contains the full grid.
    for combo in ["2_8K", "2_32K", "4_8K", "4_32K"] {
        assert!(sequential.contains(combo), "missing combo {combo}");
    }
    assert_eq!(sequential, parallel, "fig4 output depends on job count");
}

#[test]
fn breakdown_output_is_byte_identical_at_1_and_8_jobs() {
    let scale = Scale::Test;
    let sweep = |jobs| {
        let points = run_sweep_on(jobs, scale, move || scale.collperf(), Case::Enabled, false);
        format_breakdown_figure("breakdown", &points)
    };
    assert_eq!(sweep(1), sweep(8), "breakdown output depends on job count");
}
