//! MPI-IO hints: ROMIO's collective-I/O hints (Table I of the paper)
//! plus the proposed E10 extensions (Table II), with parsing,
//! validation and defaults.

use e10_mpisim::Info;

/// `romio_cb_write` / `romio_cb_read` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CbMode {
    /// Always use collective buffering.
    Enable,
    /// Never use collective buffering.
    Disable,
    /// Let ROMIO decide from the access pattern (the default).
    #[default]
    Automatic,
}

/// `e10_cache` values (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Cache layer off (default).
    #[default]
    Disable,
    /// Write collective data to the node-local cache.
    Enable,
    /// Like `Enable`, but written extents stay locked in the global
    /// file until their synchronisation completes.
    Coherent,
}

/// `e10_cache_flush_flag` values (Table II), plus the `flush_none`
/// measurement mode used to obtain the paper's "TBW Cache Enabled"
/// series (cache writes without any synchronisation to the global
/// file — an upper bound, not a consistency-preserving configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushFlag {
    /// Start synchronising each extent right after it is written.
    #[default]
    FlushImmediate,
    /// Queue extents and synchronise them when the file is closed.
    FlushOnClose,
    /// Never synchronise (theoretical-bandwidth measurement only).
    FlushNone,
}

/// Cache synchronisation scheduling policy (`e10_sync_policy`,
/// extension; §III names congestion awareness as a possible richer
/// policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Stream to the global file as fast as the path allows (default).
    #[default]
    Greedy,
    /// Back off while the storage servers are saturated by foreground
    /// traffic, yielding the bandwidth to whoever is actively waiting.
    Backoff,
}

/// File-domain partitioning strategy for the two-phase algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FdStrategy {
    /// Even byte split of the accessed range (classic UFS driver) —
    /// file domains may straddle stripe boundaries and contend on
    /// file-system locks.
    Even,
    /// Even split with boundaries aligned to `striping_unit` (the
    /// Lustre driver behaviour, and the BeeGFS driver developed in the
    /// course of the paper — its footnote 1). Default.
    #[default]
    StripeAligned,
}

/// All hints relevant to this implementation, resolved with defaults.
#[derive(Debug, Clone)]
pub struct RomioHints {
    /// `romio_cb_write` (Table I).
    pub cb_write: CbMode,
    /// `romio_cb_read` (Table I).
    pub cb_read: CbMode,
    /// `cb_buffer_size` in bytes (Table I; ROMIO default 16 MiB).
    pub cb_buffer_size: u64,
    /// `cb_nodes` (Table I; default = number of nodes).
    pub cb_nodes: Option<usize>,
    /// `striping_factor` (stripe count).
    pub striping_factor: Option<usize>,
    /// `striping_unit` in bytes.
    pub striping_unit: Option<u64>,
    /// `ind_wr_buffer_size` in bytes (pre-existing ROMIO hint reused as
    /// the cache synchronisation buffer size; default 512 KiB).
    pub ind_wr_buffer_size: u64,
    /// `e10_cache` (Table II).
    pub e10_cache: CacheMode,
    /// `e10_cache_path` (Table II; default `/scratch`).
    pub e10_cache_path: String,
    /// `e10_cache_flush_flag` (Table II).
    pub e10_cache_flush_flag: FlushFlag,
    /// `e10_cache_discard_flag` (Table II; `enable` removes the cache
    /// file after close).
    pub e10_cache_discard_flag: bool,
    /// `e10_fd_partition` (this implementation): file-domain strategy.
    pub fd_strategy: FdStrategy,
    /// `romio_ds_write`: data sieving for independent writes (ROMIO
    /// default: disable, because of the locking it requires).
    pub ds_write: CbMode,
    /// `e10_cache_read` (extension; the paper's stated future work):
    /// serve collective reads from the aggregator's local cache when
    /// the requested extent is fully cached there.
    pub e10_cache_read: bool,
    /// `cb_config_list` (subset of ROMIO's syntax): `*:N` caps the
    /// number of aggregators placed per node at `N`.
    pub cb_config_max_per_node: Option<usize>,
    /// `romio_no_indep_rw`: deferred open — only aggregators (and rank
    /// 0, which creates) open the global file, saving a metadata storm
    /// at scale.
    pub no_indep_rw: bool,
    /// `e10_cache_evict` (extension; §III's "more complex" space
    /// management): punch each extent out of the cache file as soon as
    /// it is synchronised, so the cache works as a streaming staging
    /// area and files larger than `/scratch` still fit.
    pub e10_cache_evict: bool,
    /// `e10_sync_policy` (extension): congestion awareness of the sync
    /// thread.
    pub e10_sync_policy: SyncPolicy,
}

impl Default for RomioHints {
    fn default() -> Self {
        RomioHints {
            cb_write: CbMode::Automatic,
            cb_read: CbMode::Automatic,
            cb_buffer_size: 16 << 20,
            cb_nodes: None,
            striping_factor: None,
            striping_unit: None,
            ind_wr_buffer_size: 512 << 10,
            e10_cache: CacheMode::Disable,
            e10_cache_path: "/scratch".to_string(),
            e10_cache_flush_flag: FlushFlag::FlushImmediate,
            e10_cache_discard_flag: false,
            fd_strategy: FdStrategy::StripeAligned,
            ds_write: CbMode::Disable,
            e10_cache_read: false,
            cb_config_max_per_node: None,
            no_indep_rw: false,
            e10_cache_evict: false,
            e10_sync_policy: SyncPolicy::Greedy,
        }
    }
}

/// A hint that was present but malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintError {
    /// Hint key.
    pub key: String,
    /// The rejected value.
    pub value: String,
    /// What would have been accepted.
    pub expected: &'static str,
}

impl std::fmt::Display for HintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid hint {}={:?} (expected {})",
            self.key, self.value, self.expected
        )
    }
}

impl std::error::Error for HintError {}

fn parse_size(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.chars().last() {
        Some('k') | Some('K') => (&v[..v.len() - 1], 1 << 10),
        Some('m') | Some('M') => (&v[..v.len() - 1], 1 << 20),
        Some('g') | Some('G') => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.trim().parse::<u64>().ok().map(|n| n * mult)
}

impl RomioHints {
    /// Parse an [`Info`] object, applying defaults for missing hints.
    /// Unknown keys are ignored (MPI semantics); present-but-invalid
    /// values are an error.
    pub fn parse(info: &Info) -> Result<RomioHints, HintError> {
        let mut h = RomioHints::default();
        for (key, value) in info.entries() {
            let err = |expected: &'static str| HintError {
                key: key.clone(),
                value: value.clone(),
                expected,
            };
            match key.as_str() {
                "romio_cb_write" | "romio_cb_read" => {
                    let mode = match value.as_str() {
                        "enable" => CbMode::Enable,
                        "disable" => CbMode::Disable,
                        "automatic" => CbMode::Automatic,
                        _ => return Err(err("enable|disable|automatic")),
                    };
                    if key == "romio_cb_write" {
                        h.cb_write = mode;
                    } else {
                        h.cb_read = mode;
                    }
                }
                "cb_buffer_size" => {
                    h.cb_buffer_size = parse_size(&value)
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("positive byte count"))?;
                }
                "cb_nodes" => {
                    h.cb_nodes = Some(
                        value
                            .trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("positive integer"))?,
                    );
                }
                "striping_factor" => {
                    h.striping_factor = Some(
                        value
                            .trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("positive integer"))?,
                    );
                }
                "striping_unit" => {
                    h.striping_unit = Some(
                        parse_size(&value)
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("positive byte count"))?,
                    );
                }
                "ind_wr_buffer_size" => {
                    h.ind_wr_buffer_size = parse_size(&value)
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("positive byte count"))?;
                }
                "e10_cache" => {
                    h.e10_cache = match value.as_str() {
                        "enable" => CacheMode::Enable,
                        "disable" => CacheMode::Disable,
                        "coherent" => CacheMode::Coherent,
                        _ => return Err(err("enable|disable|coherent")),
                    };
                }
                "e10_cache_path" => {
                    if value.is_empty() {
                        return Err(err("non-empty path"));
                    }
                    h.e10_cache_path = value.clone();
                }
                "e10_cache_flush_flag" => {
                    h.e10_cache_flush_flag = match value.as_str() {
                        "flush_immediate" => FlushFlag::FlushImmediate,
                        "flush_onclose" => FlushFlag::FlushOnClose,
                        "flush_none" => FlushFlag::FlushNone,
                        _ => return Err(err("flush_immediate|flush_onclose|flush_none")),
                    };
                }
                "e10_cache_discard_flag" => {
                    h.e10_cache_discard_flag = match value.as_str() {
                        "enable" => true,
                        "disable" => false,
                        _ => return Err(err("enable|disable")),
                    };
                }
                "cb_config_list" => {
                    // Accept ROMIO's most common form: "*:N".
                    let n = value
                        .strip_prefix("*:")
                        .and_then(|n| n.trim().parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("\"*:N\" with N > 0"))?;
                    h.cb_config_max_per_node = Some(n);
                }
                "romio_no_indep_rw" => {
                    h.no_indep_rw = match value.as_str() {
                        "true" | "enable" => true,
                        "false" | "disable" => false,
                        _ => return Err(err("true|false")),
                    };
                }
                "e10_cache_read" => {
                    h.e10_cache_read = match value.as_str() {
                        "enable" => true,
                        "disable" => false,
                        _ => return Err(err("enable|disable")),
                    };
                }
                "e10_sync_policy" => {
                    h.e10_sync_policy = match value.as_str() {
                        "greedy" => SyncPolicy::Greedy,
                        "backoff" => SyncPolicy::Backoff,
                        _ => return Err(err("greedy|backoff")),
                    };
                }
                "e10_cache_evict" => {
                    h.e10_cache_evict = match value.as_str() {
                        "enable" => true,
                        "disable" => false,
                        _ => return Err(err("enable|disable")),
                    };
                }
                "romio_ds_write" => {
                    h.ds_write = match value.as_str() {
                        "enable" => CbMode::Enable,
                        "disable" => CbMode::Disable,
                        "automatic" => CbMode::Automatic,
                        _ => return Err(err("enable|disable|automatic")),
                    };
                }
                "e10_fd_partition" => {
                    h.fd_strategy = match value.as_str() {
                        "even" => FdStrategy::Even,
                        "aligned" => FdStrategy::StripeAligned,
                        _ => return Err(err("even|aligned")),
                    };
                }
                _ => {} // unknown hints are silently ignored, as in MPI
            }
        }
        Ok(h)
    }

    /// Render the resolved hints as `(key, value)` pairs (used by the
    /// Table I / Table II regeneration binary and by introspection à la
    /// `MPI_File_get_info`).
    pub fn to_pairs(&self) -> Vec<(String, String)> {
        let cb = |m: CbMode| match m {
            CbMode::Enable => "enable",
            CbMode::Disable => "disable",
            CbMode::Automatic => "automatic",
        };
        let mut out = vec![
            ("romio_cb_write".into(), cb(self.cb_write).into()),
            ("romio_cb_read".into(), cb(self.cb_read).into()),
            ("cb_buffer_size".into(), self.cb_buffer_size.to_string()),
            (
                "ind_wr_buffer_size".into(),
                self.ind_wr_buffer_size.to_string(),
            ),
            (
                "e10_cache".into(),
                match self.e10_cache {
                    CacheMode::Disable => "disable",
                    CacheMode::Enable => "enable",
                    CacheMode::Coherent => "coherent",
                }
                .into(),
            ),
            ("e10_cache_path".into(), self.e10_cache_path.clone()),
            (
                "e10_cache_flush_flag".into(),
                match self.e10_cache_flush_flag {
                    FlushFlag::FlushImmediate => "flush_immediate",
                    FlushFlag::FlushOnClose => "flush_onclose",
                    FlushFlag::FlushNone => "flush_none",
                }
                .into(),
            ),
            (
                "e10_cache_discard_flag".into(),
                if self.e10_cache_discard_flag {
                    "enable"
                } else {
                    "disable"
                }
                .into(),
            ),
        ];
        if let Some(n) = self.cb_nodes {
            out.push(("cb_nodes".into(), n.to_string()));
        }
        if let Some(n) = self.striping_factor {
            out.push(("striping_factor".into(), n.to_string()));
        }
        if let Some(n) = self.striping_unit {
            out.push(("striping_unit".into(), n.to_string()));
        }
        out
    }

    /// True if any E10 cache behaviour is requested.
    pub fn cache_requested(&self) -> bool {
        self.e10_cache != CacheMode::Disable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let h = RomioHints::default();
        assert_eq!(h.cb_buffer_size, 16 << 20);
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
        assert_eq!(h.e10_cache, CacheMode::Disable);
        assert_eq!(h.e10_cache_flush_flag, FlushFlag::FlushImmediate);
        assert!(!h.e10_cache_discard_flag);
        assert_eq!(h.e10_cache_path, "/scratch");
    }

    #[test]
    fn parses_full_paper_configuration() {
        let info = Info::from_pairs([
            ("romio_cb_write", "enable"),
            ("cb_buffer_size", "4M"),
            ("cb_nodes", "16"),
            ("striping_unit", "4194304"),
            ("striping_factor", "4"),
            ("ind_wr_buffer_size", "512K"),
            ("e10_cache", "enable"),
            ("e10_cache_path", "/scratch/e10"),
            ("e10_cache_flush_flag", "flush_onclose"),
            ("e10_cache_discard_flag", "enable"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.cb_write, CbMode::Enable);
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.cb_nodes, Some(16));
        assert_eq!(h.striping_unit, Some(4 << 20));
        assert_eq!(h.striping_factor, Some(4));
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
        assert_eq!(h.e10_cache, CacheMode::Enable);
        assert_eq!(h.e10_cache_path, "/scratch/e10");
        assert_eq!(h.e10_cache_flush_flag, FlushFlag::FlushOnClose);
        assert!(h.e10_cache_discard_flag);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("512K"), Some(512 << 10));
        assert_eq!(parse_size("4m"), Some(4 << 20));
        assert_eq!(parse_size("2G"), Some(2 << 30));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn invalid_values_are_rejected_with_context() {
        let info = Info::from_pairs([("e10_cache", "maybe")]);
        let e = RomioHints::parse(&info).unwrap_err();
        assert_eq!(e.key, "e10_cache");
        assert!(e.to_string().contains("coherent"));

        for (k, v) in [
            ("cb_buffer_size", "0"),
            ("cb_nodes", "-3"),
            ("romio_cb_write", "yes"),
            ("e10_cache_flush_flag", "later"),
            ("e10_cache_discard_flag", "1"),
            ("e10_cache_path", ""),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
    }

    #[test]
    fn extension_hints_parse_and_validate() {
        let info = Info::from_pairs([
            ("e10_cache_read", "enable"),
            ("e10_cache_evict", "enable"),
            ("e10_sync_policy", "backoff"),
            ("cb_config_list", "*:2"),
            ("romio_no_indep_rw", "true"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert!(h.e10_cache_read);
        assert!(h.e10_cache_evict);
        assert_eq!(h.e10_sync_policy, SyncPolicy::Backoff);
        assert_eq!(h.cb_config_max_per_node, Some(2));
        assert!(h.no_indep_rw);
        for (k, v) in [
            ("e10_cache_read", "yes"),
            ("e10_cache_evict", "on"),
            ("e10_sync_policy", "polite"),
            ("cb_config_list", "2"),
            ("cb_config_list", "*:0"),
            ("romio_no_indep_rw", "1"),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
        // Defaults are all off.
        let d = RomioHints::default();
        assert!(!d.e10_cache_read && !d.e10_cache_evict && !d.no_indep_rw);
        assert_eq!(d.e10_sync_policy, SyncPolicy::Greedy);
        assert_eq!(d.cb_config_max_per_node, None);
    }

    #[test]
    fn unknown_hints_are_ignored() {
        let info = Info::from_pairs([("some_vendor_hint", "whatever")]);
        assert!(RomioHints::parse(&info).is_ok());
    }

    #[test]
    fn coherent_implies_cache_requested() {
        let info = Info::from_pairs([("e10_cache", "coherent")]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.e10_cache, CacheMode::Coherent);
        assert!(h.cache_requested());
        assert!(!RomioHints::default().cache_requested());
    }

    #[test]
    fn to_pairs_roundtrips_through_parse() {
        let info = Info::from_pairs([
            ("romio_cb_write", "enable"),
            ("cb_nodes", "8"),
            ("e10_cache", "coherent"),
            ("e10_cache_flush_flag", "flush_none"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        let info2 = Info::new();
        for (k, v) in h.to_pairs() {
            info2.set(&k, &v);
        }
        let h2 = RomioHints::parse(&info2).unwrap();
        assert_eq!(h2.cb_write, h.cb_write);
        assert_eq!(h2.cb_nodes, h.cb_nodes);
        assert_eq!(h2.e10_cache, h.e10_cache);
        assert_eq!(h2.e10_cache_flush_flag, h.e10_cache_flush_flag);
    }
}
