//! MPI-IO hints: ROMIO's collective-I/O hints (Table I of the paper)
//! plus the proposed E10 extensions (Table II), with parsing,
//! validation and defaults.
//!
//! Two ways in:
//!
//! * [`RomioHintsBuilder`] — the typed API. Each setter takes the
//!   enum/integer it controls and validates immediately; [`build`]
//!   returns every violation at once as [`HintErrors`].
//! * [`RomioHints::from_info`] — the MPI surface. A thin adapter that
//!   feeds each `(key, value)` string pair of an [`Info`] object
//!   through the builder's raw-string entry point.
//!
//! [`build`]: RomioHintsBuilder::build

use e10_mpisim::Info;

/// `romio_cb_write` / `romio_cb_read` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CbMode {
    /// Always use collective buffering.
    Enable,
    /// Never use collective buffering.
    Disable,
    /// Let ROMIO decide from the access pattern (the default).
    #[default]
    Automatic,
}

impl CbMode {
    fn parse(s: &str) -> Option<CbMode> {
        match s {
            "enable" => Some(CbMode::Enable),
            "disable" => Some(CbMode::Disable),
            "automatic" => Some(CbMode::Automatic),
            _ => None,
        }
    }

    /// The hint-string spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            CbMode::Enable => "enable",
            CbMode::Disable => "disable",
            CbMode::Automatic => "automatic",
        }
    }
}

/// `e10_cache` values (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Cache layer off (default).
    #[default]
    Disable,
    /// Write collective data to the node-local cache.
    Enable,
    /// Like `Enable`, but written extents stay locked in the global
    /// file until their synchronisation completes.
    Coherent,
}

impl CacheMode {
    fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "enable" => Some(CacheMode::Enable),
            "disable" => Some(CacheMode::Disable),
            "coherent" => Some(CacheMode::Coherent),
            _ => None,
        }
    }

    /// The hint-string spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheMode::Disable => "disable",
            CacheMode::Enable => "enable",
            CacheMode::Coherent => "coherent",
        }
    }
}

/// `e10_cache_class` values (extension): which node-local device class
/// backs the E10 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheClass {
    /// The paper's setup: the block SSD `/scratch` partition (default).
    #[default]
    Ssd,
    /// Byte-addressable NVM mount: asymmetric latency, byte-granular
    /// commands, channel-level concurrency. Small cache writes (at most
    /// `e10_nvm_threshold` bytes) take the byte-granular front-end,
    /// skipping the fallocate/page-cache staging path.
    Nvm,
    /// Two-tier cache: pieces at most `e10_nvm_threshold` bytes go to
    /// an NVM front file (capped by `e10_nvm_capacity`), everything
    /// else — and the overflow — to the SSD cache file.
    Hybrid,
}

impl CacheClass {
    fn parse(s: &str) -> Option<CacheClass> {
        match s {
            "ssd" => Some(CacheClass::Ssd),
            "nvm" => Some(CacheClass::Nvm),
            "hybrid" => Some(CacheClass::Hybrid),
            _ => None,
        }
    }

    /// The hint-string spelling of this class.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheClass::Ssd => "ssd",
            CacheClass::Nvm => "nvm",
            CacheClass::Hybrid => "hybrid",
        }
    }
}

/// `e10_cache_flush_flag` values (Table II), plus the `flush_none`
/// measurement mode used to obtain the paper's "TBW Cache Enabled"
/// series (cache writes without any synchronisation to the global
/// file — an upper bound, not a consistency-preserving configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushFlag {
    /// Start synchronising each extent right after it is written.
    #[default]
    FlushImmediate,
    /// Queue extents and synchronise them when the file is closed.
    FlushOnClose,
    /// Never synchronise (theoretical-bandwidth measurement only).
    FlushNone,
}

impl FlushFlag {
    fn parse(s: &str) -> Option<FlushFlag> {
        match s {
            "flush_immediate" => Some(FlushFlag::FlushImmediate),
            "flush_onclose" => Some(FlushFlag::FlushOnClose),
            "flush_none" => Some(FlushFlag::FlushNone),
            _ => None,
        }
    }

    /// The hint-string spelling of this flag.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlushFlag::FlushImmediate => "flush_immediate",
            FlushFlag::FlushOnClose => "flush_onclose",
            FlushFlag::FlushNone => "flush_none",
        }
    }
}

/// Cache synchronisation scheduling policy (`e10_sync_policy`,
/// extension; §III names congestion awareness as a possible richer
/// policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Stream to the global file as fast as the path allows (default).
    #[default]
    Greedy,
    /// Back off while the storage servers are saturated by foreground
    /// traffic, yielding the bandwidth to whoever is actively waiting.
    Backoff,
}

impl SyncPolicy {
    fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "greedy" => Some(SyncPolicy::Greedy),
            "backoff" => Some(SyncPolicy::Backoff),
            _ => None,
        }
    }

    /// The hint-string spelling of this policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            SyncPolicy::Greedy => "greedy",
            SyncPolicy::Backoff => "backoff",
        }
    }
}

/// `e10_two_phase` values: which collective-write algorithm
/// `MPI_File_write_all` runs. Replaces the per-variant boolean toggles
/// older revisions would have needed — one typed knob selects the
/// algorithm, and the dispatch in [`crate::collective`] switches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TwoPhaseAlgo {
    /// The original two-phase algorithm (del Rosario et al.): one
    /// exchange round buffering each aggregator's whole file domain.
    Stock,
    /// ROMIO's extended two-phase (`ADIOI_Exch_and_write`): rounds
    /// bounded by `cb_buffer_size`. Default.
    #[default]
    Extended,
    /// Intra-node request aggregation (Kang et al.): ranks sharing a
    /// node merge their requests at a node leader before the
    /// inter-node exchange, cutting shuffle messages by the
    /// ranks-per-node factor.
    NodeAgg,
}

impl TwoPhaseAlgo {
    fn parse(s: &str) -> Option<TwoPhaseAlgo> {
        match s {
            "stock" => Some(TwoPhaseAlgo::Stock),
            "extended" => Some(TwoPhaseAlgo::Extended),
            "node_agg" => Some(TwoPhaseAlgo::NodeAgg),
            _ => None,
        }
    }

    /// The hint-string spelling of this algorithm.
    pub fn as_str(&self) -> &'static str {
        match self {
            TwoPhaseAlgo::Stock => "stock",
            TwoPhaseAlgo::Extended => "extended",
            TwoPhaseAlgo::NodeAgg => "node_agg",
        }
    }
}

/// File-domain partitioning strategy for the two-phase algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FdStrategy {
    /// Even byte split of the accessed range (classic UFS driver) —
    /// file domains may straddle stripe boundaries and contend on
    /// file-system locks.
    Even,
    /// Even split with boundaries aligned to `striping_unit` (the
    /// Lustre driver behaviour, and the BeeGFS driver developed in the
    /// course of the paper — its footnote 1). Default.
    #[default]
    StripeAligned,
}

impl FdStrategy {
    fn parse(s: &str) -> Option<FdStrategy> {
        match s {
            "even" => Some(FdStrategy::Even),
            "aligned" => Some(FdStrategy::StripeAligned),
            _ => None,
        }
    }

    /// The hint-string spelling of this strategy.
    pub fn as_str(&self) -> &'static str {
        match self {
            FdStrategy::Even => "even",
            FdStrategy::StripeAligned => "aligned",
        }
    }
}

/// `e10_trace` values: where structured trace events go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing (default; the instrumented paths cost one branch).
    #[default]
    Off,
    /// Bounded in-memory ring, inspectable after the run.
    Ring,
    /// NDJSON stream under `e10_trace_path`.
    Jsonl,
}

impl TraceMode {
    fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "ring" => Some(TraceMode::Ring),
            "jsonl" => Some(TraceMode::Jsonl),
            _ => None,
        }
    }

    /// The hint-string spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Ring => "ring",
            TraceMode::Jsonl => "jsonl",
        }
    }
}

/// All hints relevant to this implementation, resolved with defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomioHints {
    /// `romio_cb_write` (Table I).
    pub cb_write: CbMode,
    /// `romio_cb_read` (Table I).
    pub cb_read: CbMode,
    /// `cb_buffer_size` in bytes (Table I; ROMIO default 16 MiB).
    pub cb_buffer_size: u64,
    /// `cb_nodes` (Table I; default = number of nodes).
    pub cb_nodes: Option<usize>,
    /// `striping_factor` (stripe count).
    pub striping_factor: Option<usize>,
    /// `striping_unit` in bytes.
    pub striping_unit: Option<u64>,
    /// `ind_wr_buffer_size` in bytes (pre-existing ROMIO hint reused as
    /// the cache synchronisation buffer size; default 512 KiB).
    pub ind_wr_buffer_size: u64,
    /// `e10_cache` (Table II).
    pub e10_cache: CacheMode,
    /// `e10_cache_path` (Table II; default `/scratch`).
    pub e10_cache_path: String,
    /// `e10_cache_flush_flag` (Table II).
    pub e10_cache_flush_flag: FlushFlag,
    /// `e10_cache_discard_flag` (Table II; `enable` removes the cache
    /// file after close).
    pub e10_cache_discard_flag: bool,
    /// `e10_fd_partition` (this implementation): file-domain strategy.
    pub fd_strategy: FdStrategy,
    /// `romio_ds_write`: data sieving for independent writes (ROMIO
    /// default: disable, because of the locking it requires).
    pub ds_write: CbMode,
    /// `e10_cache_read` (extension; the paper's stated future work):
    /// serve collective reads from the aggregator's local cache when
    /// the requested extent is fully cached there.
    pub e10_cache_read: bool,
    /// `cb_config_list` (subset of ROMIO's syntax): `*:N` caps the
    /// number of aggregators placed per node at `N`.
    pub cb_config_max_per_node: Option<usize>,
    /// `romio_no_indep_rw`: deferred open — only aggregators (and rank
    /// 0, which creates) open the global file, saving a metadata storm
    /// at scale.
    pub no_indep_rw: bool,
    /// `e10_cache_evict` (extension; §III's "more complex" space
    /// management): punch each extent out of the cache file as soon as
    /// it is synchronised, so the cache works as a streaming staging
    /// area and files larger than `/scratch` still fit.
    pub e10_cache_evict: bool,
    /// `e10_sync_policy` (extension): congestion awareness of the sync
    /// thread.
    pub e10_sync_policy: SyncPolicy,
    /// `e10_cache_journal` (extension): keep an append-only manifest
    /// journal next to the cache file so the cache can be recovered
    /// after a node crash (crash consistency for the staged data).
    pub e10_cache_journal: bool,
    /// `e10_cache_journal_path` (extension): explicit journal file
    /// path; default `None` places it at `<cache file>.jnl`.
    pub e10_cache_journal_path: Option<String>,
    /// `e10_integrity` (extension): end-to-end data integrity for the
    /// cache path. Each extent accepted into the cache is digested at
    /// write time; the sync thread verifies the cache-file bytes
    /// against the digest before pushing them to the global file, and
    /// cached reads verify before serving. Default off: with the hint
    /// disabled no digest is ever computed, so the fast path is
    /// byte-identical to previous releases.
    pub e10_integrity: bool,
    /// `e10_integrity_scrub_ms` (extension): interval, in simulated
    /// milliseconds, at which the sync thread opportunistically
    /// re-verifies resident cache extents between flush rounds.
    /// `0` (the default) disables scrubbing; ignored unless
    /// `e10_integrity` is enabled.
    pub e10_integrity_scrub_ms: u64,
    /// `e10_cache_hiwater` (extension): cache-volume occupancy, in
    /// percent, at which the per-node arbiter trips into pressure and
    /// stops admitting new extents. `0` (the default) disables
    /// watermark management entirely, leaving the single-tenant
    /// behaviour of the paper.
    pub e10_cache_hiwater: u64,
    /// `e10_cache_lowater` (extension): occupancy, in percent, the
    /// arbiter must drain to (by evicting fully-synced extents) before
    /// admitting again after a high-watermark trip. `0` means "same as
    /// hiwater" (no hysteresis). Must not exceed `e10_cache_hiwater`.
    pub e10_cache_lowater: u64,
    /// `e10_cache_class` (extension): device class backing the cache —
    /// `ssd` (default), `nvm`, or `hybrid`.
    pub e10_cache_class: CacheClass,
    /// `e10_nvm_capacity` (extension): byte budget of the NVM front
    /// tier in `hybrid` mode. `0` (the default) means "whatever the
    /// NVM mount holds" — the mount's own capacity is the only limit.
    /// Ignored for the pure classes.
    pub e10_nvm_capacity: u64,
    /// `e10_nvm_threshold` (extension): cache writes of at most this
    /// many bytes take the byte-granular NVM path (`nvm` class: direct
    /// device writes; `hybrid`: routed to the front tier). Default
    /// 1 MiB. `0` disables the byte-granular front entirely, making
    /// the nvm class operation-for-operation identical to ssd (the
    /// determinism anchor relies on this).
    pub e10_nvm_threshold: u64,
    /// `e10_cache_sync_depth` (extension): bound on the number of
    /// extents queued to the sync thread at once. A writer that would
    /// exceed it waits for a slot, so staging can never run unboundedly
    /// ahead of the global-file drain (bounded-memory steady state).
    /// `0` (the default) leaves the queue unbounded — the paper's
    /// original fire-and-forget behaviour.
    pub e10_cache_sync_depth: u64,
    /// `e10_two_phase` (extension): which collective-write algorithm
    /// runs — `stock`, `extended` (default) or `node_agg`.
    pub two_phase: TwoPhaseAlgo,
    /// `e10_coll_timeout` (extension): send/recv timeout, in simulated
    /// milliseconds, after which a rank participating in a collective
    /// declares its peer dead and enters the shrink/agree recovery
    /// protocol. `0` (the default) disables mid-collective crash
    /// tolerance entirely — a dead peer hangs the collective, exactly
    /// the pre-tolerance behaviour (the determinism anchor relies on
    /// this).
    pub e10_coll_timeout: u64,
    /// `e10_pfs_max_retries` (extension): client-side retries after a
    /// failed PFS I/O RPC before the operation surfaces a typed error.
    /// `None` (the default) uses the file system's own configuration.
    pub e10_pfs_max_retries: Option<u32>,
    /// `e10_pfs_retry_base_us` (extension): base client backoff, in
    /// simulated microseconds, after a failed PFS RPC (doubles per
    /// attempt, jitter-stretched). `None` (the default) uses the file
    /// system's own configuration.
    pub e10_pfs_retry_base_us: Option<u64>,
    /// `e10_trace` (extension): structured-trace destination.
    pub e10_trace: TraceMode,
    /// `e10_trace_path` (extension): directory for `jsonl` traces
    /// (default `results/traces`).
    pub e10_trace_path: String,
}

impl Default for RomioHints {
    fn default() -> Self {
        RomioHints {
            cb_write: CbMode::Automatic,
            cb_read: CbMode::Automatic,
            cb_buffer_size: 16 << 20,
            cb_nodes: None,
            striping_factor: None,
            striping_unit: None,
            ind_wr_buffer_size: 512 << 10,
            e10_cache: CacheMode::Disable,
            e10_cache_path: "/scratch".to_string(),
            e10_cache_flush_flag: FlushFlag::FlushImmediate,
            e10_cache_discard_flag: false,
            fd_strategy: FdStrategy::StripeAligned,
            ds_write: CbMode::Disable,
            e10_cache_read: false,
            cb_config_max_per_node: None,
            no_indep_rw: false,
            e10_cache_evict: false,
            e10_sync_policy: SyncPolicy::Greedy,
            e10_cache_journal: false,
            e10_cache_journal_path: None,
            e10_integrity: false,
            e10_integrity_scrub_ms: 0,
            e10_cache_hiwater: 0,
            e10_cache_lowater: 0,
            e10_cache_class: CacheClass::Ssd,
            e10_nvm_capacity: 0,
            e10_nvm_threshold: 1 << 20,
            e10_cache_sync_depth: 0,
            two_phase: TwoPhaseAlgo::Extended,
            e10_coll_timeout: 0,
            e10_pfs_max_retries: None,
            e10_pfs_retry_base_us: None,
            e10_trace: TraceMode::Off,
            e10_trace_path: "results/traces".to_string(),
        }
    }
}

/// A hint that was present but malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintError {
    /// Hint key.
    pub key: String,
    /// The rejected value.
    pub value: String,
    /// What would have been accepted.
    pub expected: &'static str,
}

impl std::fmt::Display for HintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid hint {}={:?} (expected {})",
            self.key, self.value, self.expected
        )
    }
}

impl std::error::Error for HintError {}

/// Every violation found while building a hint set — the builder keeps
/// going after the first bad value so a caller sees the whole list.
///
/// The first violation is a separate field, so an empty error set is
/// unrepresentable by construction: extracting the first error can
/// never fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintErrors {
    first: HintError,
    rest: Vec<HintError>,
}

impl HintErrors {
    /// Build from the first violation plus any further ones.
    pub fn new(first: HintError, rest: Vec<HintError>) -> Self {
        HintErrors { first, rest }
    }

    /// The first violation (MPI callers usually report just one).
    pub fn first(&self) -> &HintError {
        &self.first
    }

    /// Consume, keeping only the first violation.
    pub fn into_first(self) -> HintError {
        self.first
    }

    /// All violations, in the order they were recorded.
    pub fn iter(&self) -> impl Iterator<Item = &HintError> {
        std::iter::once(&self.first).chain(self.rest.iter())
    }

    /// Number of violations (always at least one).
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Always false — the type cannot hold zero violations.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Display for HintErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for HintErrors {}

impl IntoIterator for HintErrors {
    type Item = HintError;
    type IntoIter = std::iter::Chain<std::iter::Once<HintError>, std::vec::IntoIter<HintError>>;

    /// Every violation by value, first one included — `for e in errs`
    /// just works.
    fn into_iter(self) -> Self::IntoIter {
        std::iter::once(self.first).chain(self.rest)
    }
}

impl<'a> IntoIterator for &'a HintErrors {
    type Item = &'a HintError;
    type IntoIter =
        std::iter::Chain<std::iter::Once<&'a HintError>, std::slice::Iter<'a, HintError>>;

    fn into_iter(self) -> Self::IntoIter {
        std::iter::once(&self.first).chain(self.rest.iter())
    }
}

impl From<HintErrors> for HintError {
    fn from(e: HintErrors) -> HintError {
        e.into_first()
    }
}

fn parse_size(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.chars().last() {
        Some('k') | Some('K') => (&v[..v.len() - 1], 1 << 10),
        Some('m') | Some('M') => (&v[..v.len() - 1], 1 << 20),
        Some('g') | Some('G') => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.trim().parse::<u64>().ok().map(|n| n * mult)
}

/// Typed, validating construction of a [`RomioHints`] set.
///
/// Setters take the value in its natural type and record a
/// [`HintError`] instead of panicking or silently clamping; `build`
/// either returns the hints or every violation at once. String pairs
/// (the MPI `Info` surface) enter through [`set_str`].
///
/// [`set_str`]: RomioHintsBuilder::set_str
#[derive(Debug, Clone, Default)]
pub struct RomioHintsBuilder {
    hints: RomioHints,
    errors: Vec<HintError>,
}

impl RomioHintsBuilder {
    /// Start from the defaults of Tables I/II.
    pub fn new() -> Self {
        Self::default()
    }

    fn invalid(&mut self, key: &str, value: impl std::fmt::Display, expected: &'static str) {
        self.errors.push(HintError {
            key: key.to_string(),
            value: value.to_string(),
            expected,
        });
    }

    /// `romio_cb_write`.
    pub fn cb_write(mut self, mode: CbMode) -> Self {
        self.hints.cb_write = mode;
        self
    }

    /// `romio_cb_read`.
    pub fn cb_read(mut self, mode: CbMode) -> Self {
        self.hints.cb_read = mode;
        self
    }

    /// `cb_buffer_size` in bytes (must be positive).
    pub fn cb_buffer_size(mut self, bytes: u64) -> Self {
        if bytes == 0 {
            self.invalid("cb_buffer_size", bytes, "positive byte count");
        } else {
            self.hints.cb_buffer_size = bytes;
        }
        self
    }

    /// `cb_nodes` (must be positive).
    pub fn cb_nodes(mut self, n: usize) -> Self {
        if n == 0 {
            self.invalid("cb_nodes", n, "positive integer");
        } else {
            self.hints.cb_nodes = Some(n);
        }
        self
    }

    /// `striping_factor` (must be positive).
    pub fn striping_factor(mut self, n: usize) -> Self {
        if n == 0 {
            self.invalid("striping_factor", n, "positive integer");
        } else {
            self.hints.striping_factor = Some(n);
        }
        self
    }

    /// `striping_unit` in bytes (must be positive).
    pub fn striping_unit(mut self, bytes: u64) -> Self {
        if bytes == 0 {
            self.invalid("striping_unit", bytes, "positive byte count");
        } else {
            self.hints.striping_unit = Some(bytes);
        }
        self
    }

    /// `ind_wr_buffer_size` in bytes (must be positive).
    pub fn ind_wr_buffer_size(mut self, bytes: u64) -> Self {
        if bytes == 0 {
            self.invalid("ind_wr_buffer_size", bytes, "positive byte count");
        } else {
            self.hints.ind_wr_buffer_size = bytes;
        }
        self
    }

    /// `e10_cache`.
    pub fn e10_cache(mut self, mode: CacheMode) -> Self {
        self.hints.e10_cache = mode;
        self
    }

    /// `e10_cache_path` (must be non-empty).
    pub fn e10_cache_path(mut self, path: impl Into<String>) -> Self {
        let path = path.into();
        if path.is_empty() {
            self.invalid("e10_cache_path", path, "non-empty path");
        } else {
            self.hints.e10_cache_path = path;
        }
        self
    }

    /// `e10_cache_flush_flag`.
    pub fn e10_cache_flush_flag(mut self, flag: FlushFlag) -> Self {
        self.hints.e10_cache_flush_flag = flag;
        self
    }

    /// `e10_cache_discard_flag`.
    pub fn e10_cache_discard_flag(mut self, discard: bool) -> Self {
        self.hints.e10_cache_discard_flag = discard;
        self
    }

    /// `e10_fd_partition`.
    pub fn fd_strategy(mut self, s: FdStrategy) -> Self {
        self.hints.fd_strategy = s;
        self
    }

    /// `romio_ds_write`.
    pub fn ds_write(mut self, mode: CbMode) -> Self {
        self.hints.ds_write = mode;
        self
    }

    /// `e10_cache_read`.
    pub fn e10_cache_read(mut self, on: bool) -> Self {
        self.hints.e10_cache_read = on;
        self
    }

    /// `cb_config_list` as `*:N` (N must be positive).
    pub fn cb_config_max_per_node(mut self, n: usize) -> Self {
        if n == 0 {
            self.invalid("cb_config_list", format!("*:{n}"), "\"*:N\" with N > 0");
        } else {
            self.hints.cb_config_max_per_node = Some(n);
        }
        self
    }

    /// `romio_no_indep_rw`.
    pub fn no_indep_rw(mut self, on: bool) -> Self {
        self.hints.no_indep_rw = on;
        self
    }

    /// `e10_cache_evict`.
    pub fn e10_cache_evict(mut self, on: bool) -> Self {
        self.hints.e10_cache_evict = on;
        self
    }

    /// `e10_sync_policy`.
    pub fn e10_sync_policy(mut self, p: SyncPolicy) -> Self {
        self.hints.e10_sync_policy = p;
        self
    }

    /// `e10_cache_journal`.
    pub fn e10_cache_journal(mut self, on: bool) -> Self {
        self.hints.e10_cache_journal = on;
        self
    }

    /// `e10_cache_journal_path` (must be non-empty).
    pub fn e10_cache_journal_path(mut self, path: impl Into<String>) -> Self {
        let path = path.into();
        if path.is_empty() {
            self.invalid("e10_cache_journal_path", path, "non-empty path");
        } else {
            self.hints.e10_cache_journal_path = Some(path);
        }
        self
    }

    /// `e10_integrity`.
    pub fn e10_integrity(mut self, on: bool) -> Self {
        self.hints.e10_integrity = on;
        self
    }

    /// `e10_integrity_scrub_ms` (`0` disables scrubbing).
    pub fn e10_integrity_scrub_ms(mut self, ms: u64) -> Self {
        self.hints.e10_integrity_scrub_ms = ms;
        self
    }

    /// `e10_cache_hiwater` in percent (`0` disables watermarks).
    pub fn e10_cache_hiwater(mut self, pct: u64) -> Self {
        if pct > 100 {
            self.invalid("e10_cache_hiwater", pct, "percentage 0..=100");
        } else {
            self.hints.e10_cache_hiwater = pct;
        }
        self
    }

    /// `e10_cache_lowater` in percent (`0` means "same as hiwater").
    pub fn e10_cache_lowater(mut self, pct: u64) -> Self {
        if pct > 100 {
            self.invalid("e10_cache_lowater", pct, "percentage 0..=100");
        } else {
            self.hints.e10_cache_lowater = pct;
        }
        self
    }

    /// `e10_cache_class`.
    pub fn e10_cache_class(mut self, class: CacheClass) -> Self {
        self.hints.e10_cache_class = class;
        self
    }

    /// `e10_nvm_capacity` in bytes (`0` means "the whole NVM mount").
    pub fn e10_nvm_capacity(mut self, bytes: u64) -> Self {
        self.hints.e10_nvm_capacity = bytes;
        self
    }

    /// `e10_nvm_threshold` in bytes (`0` disables the byte-granular
    /// front-end).
    pub fn e10_nvm_threshold(mut self, bytes: u64) -> Self {
        self.hints.e10_nvm_threshold = bytes;
        self
    }

    /// `e10_cache_sync_depth` (`0` leaves the sync queue unbounded).
    pub fn e10_cache_sync_depth(mut self, depth: u64) -> Self {
        self.hints.e10_cache_sync_depth = depth;
        self
    }

    /// `e10_two_phase`.
    pub fn e10_two_phase(mut self, algo: TwoPhaseAlgo) -> Self {
        self.hints.two_phase = algo;
        self
    }

    /// `e10_coll_timeout` in milliseconds (`0` disables crash
    /// tolerance).
    pub fn e10_coll_timeout(mut self, ms: u64) -> Self {
        self.hints.e10_coll_timeout = ms;
        self
    }

    /// `e10_pfs_max_retries` (retries after the initial attempt).
    pub fn e10_pfs_max_retries(mut self, retries: u32) -> Self {
        self.hints.e10_pfs_max_retries = Some(retries);
        self
    }

    /// `e10_pfs_retry_base_us` in microseconds (must be positive — a
    /// zero base would collapse the exponential backoff).
    pub fn e10_pfs_retry_base_us(mut self, us: u64) -> Self {
        if us == 0 {
            self.invalid("e10_pfs_retry_base_us", us, "positive integer microseconds");
        } else {
            self.hints.e10_pfs_retry_base_us = Some(us);
        }
        self
    }

    /// `e10_trace`.
    pub fn e10_trace(mut self, mode: TraceMode) -> Self {
        self.hints.e10_trace = mode;
        self
    }

    /// `e10_trace_path` (must be non-empty).
    pub fn e10_trace_path(mut self, path: impl Into<String>) -> Self {
        let path = path.into();
        if path.is_empty() {
            self.invalid("e10_trace_path", path, "non-empty path");
        } else {
            self.hints.e10_trace_path = path;
        }
        self
    }

    /// The raw-string entry point used by [`RomioHints::from_info`]:
    /// parse one `(key, value)` hint pair. Unknown keys are ignored
    /// (MPI semantics); present-but-invalid values are recorded.
    pub fn set_str(mut self, key: &str, value: &str) -> Self {
        macro_rules! or_invalid {
            ($opt:expr, $expected:literal, $setter:ident) => {
                match $opt {
                    Some(v) => return self.$setter(v),
                    None => {
                        self.invalid(key, value, $expected);
                        return self;
                    }
                }
            };
        }
        match key {
            "romio_cb_write" => {
                or_invalid!(CbMode::parse(value), "enable|disable|automatic", cb_write)
            }
            "romio_cb_read" => {
                or_invalid!(CbMode::parse(value), "enable|disable|automatic", cb_read)
            }
            "romio_ds_write" => {
                or_invalid!(CbMode::parse(value), "enable|disable|automatic", ds_write)
            }
            "cb_buffer_size" => or_invalid!(
                parse_size(value).filter(|&n| n > 0),
                "positive byte count",
                cb_buffer_size
            ),
            "cb_nodes" => or_invalid!(
                value.trim().parse::<usize>().ok().filter(|&n| n > 0),
                "positive integer",
                cb_nodes
            ),
            "striping_factor" => or_invalid!(
                value.trim().parse::<usize>().ok().filter(|&n| n > 0),
                "positive integer",
                striping_factor
            ),
            "striping_unit" => or_invalid!(
                parse_size(value).filter(|&n| n > 0),
                "positive byte count",
                striping_unit
            ),
            "ind_wr_buffer_size" => or_invalid!(
                parse_size(value).filter(|&n| n > 0),
                "positive byte count",
                ind_wr_buffer_size
            ),
            "e10_cache" => {
                or_invalid!(
                    CacheMode::parse(value),
                    "enable|disable|coherent",
                    e10_cache
                )
            }
            "e10_cache_path" => or_invalid!(
                Some(value).filter(|v| !v.is_empty()),
                "non-empty path",
                e10_cache_path
            ),
            "e10_cache_flush_flag" => or_invalid!(
                FlushFlag::parse(value),
                "flush_immediate|flush_onclose|flush_none",
                e10_cache_flush_flag
            ),
            "e10_cache_discard_flag" => or_invalid!(
                parse_enable_disable(value),
                "enable|disable",
                e10_cache_discard_flag
            ),
            "cb_config_list" => or_invalid!(
                value
                    .strip_prefix("*:")
                    .and_then(|n| n.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0),
                "\"*:N\" with N > 0",
                cb_config_max_per_node
            ),
            "romio_no_indep_rw" => or_invalid!(
                match value {
                    "true" | "enable" => Some(true),
                    "false" | "disable" => Some(false),
                    _ => None,
                },
                "true|false",
                no_indep_rw
            ),
            "e10_cache_read" => {
                or_invalid!(
                    parse_enable_disable(value),
                    "enable|disable",
                    e10_cache_read
                )
            }
            "e10_cache_evict" => or_invalid!(
                parse_enable_disable(value),
                "enable|disable",
                e10_cache_evict
            ),
            "e10_sync_policy" => {
                or_invalid!(SyncPolicy::parse(value), "greedy|backoff", e10_sync_policy)
            }
            "e10_cache_journal" => or_invalid!(
                parse_enable_disable(value),
                "enable|disable",
                e10_cache_journal
            ),
            "e10_cache_journal_path" => or_invalid!(
                Some(value).filter(|v| !v.is_empty()),
                "non-empty path",
                e10_cache_journal_path
            ),
            "e10_fd_partition" => {
                or_invalid!(FdStrategy::parse(value), "even|aligned", fd_strategy)
            }
            "e10_integrity" => {
                or_invalid!(parse_enable_disable(value), "enable|disable", e10_integrity)
            }
            "e10_integrity_scrub_ms" => or_invalid!(
                value.trim().parse::<u64>().ok(),
                "non-negative integer milliseconds",
                e10_integrity_scrub_ms
            ),
            "e10_cache_hiwater" => or_invalid!(
                value.trim().parse::<u64>().ok().filter(|&n| n <= 100),
                "percentage 0..=100",
                e10_cache_hiwater
            ),
            "e10_cache_lowater" => or_invalid!(
                value.trim().parse::<u64>().ok().filter(|&n| n <= 100),
                "percentage 0..=100",
                e10_cache_lowater
            ),
            "e10_two_phase" => or_invalid!(
                TwoPhaseAlgo::parse(value),
                "stock|extended|node_agg",
                e10_two_phase
            ),
            "e10_cache_class" => {
                or_invalid!(CacheClass::parse(value), "ssd|nvm|hybrid", e10_cache_class)
            }
            "e10_nvm_capacity" => or_invalid!(
                parse_size(value),
                "byte count (k/m/g suffixes allowed)",
                e10_nvm_capacity
            ),
            "e10_nvm_threshold" => or_invalid!(
                parse_size(value),
                "byte count (k/m/g suffixes allowed)",
                e10_nvm_threshold
            ),
            "e10_cache_sync_depth" => or_invalid!(
                value.parse::<u64>().ok(),
                "non-negative extent count",
                e10_cache_sync_depth
            ),
            "e10_coll_timeout" => or_invalid!(
                value.trim().parse::<u64>().ok(),
                "non-negative integer milliseconds",
                e10_coll_timeout
            ),
            "e10_pfs_max_retries" => or_invalid!(
                value.trim().parse::<u32>().ok(),
                "non-negative retry count",
                e10_pfs_max_retries
            ),
            "e10_pfs_retry_base_us" => or_invalid!(
                value.trim().parse::<u64>().ok().filter(|&n| n > 0),
                "positive integer microseconds",
                e10_pfs_retry_base_us
            ),
            "e10_trace" => or_invalid!(TraceMode::parse(value), "off|ring|jsonl", e10_trace),
            "e10_trace_path" => or_invalid!(
                Some(value).filter(|v| !v.is_empty()),
                "non-empty path",
                e10_trace_path
            ),
            _ => {} // unknown hints are silently ignored, as in MPI
        }
        self
    }

    /// Finish: the hints, or every violation recorded along the way.
    pub fn build(mut self) -> Result<RomioHints, HintErrors> {
        // Cross-field check: a low watermark above the high watermark
        // would make the hysteresis band negative. Only meaningful once
        // both are set; `0` keeps its sentinel meaning.
        if self.hints.e10_cache_lowater > 0
            && self.hints.e10_cache_hiwater > 0
            && self.hints.e10_cache_lowater > self.hints.e10_cache_hiwater
        {
            let v = self.hints.e10_cache_lowater;
            self.invalid("e10_cache_lowater", v, "at most e10_cache_hiwater");
        }
        if self.errors.is_empty() {
            Ok(self.hints)
        } else {
            let first = self.errors.remove(0);
            Err(HintErrors::new(first, self.errors))
        }
    }

    /// Like [`build`], but non-consuming: the builder stays usable, so
    /// a caller can report every violation at once and keep layering
    /// hints (or retry) on the same builder.
    ///
    /// [`build`]: RomioHintsBuilder::build
    pub fn try_build(&self) -> Result<RomioHints, HintErrors> {
        self.clone().build()
    }
}

fn parse_enable_disable(s: &str) -> Option<bool> {
    match s {
        "enable" => Some(true),
        "disable" => Some(false),
        _ => None,
    }
}

impl RomioHints {
    /// A fresh [`RomioHintsBuilder`] at the Table I/II defaults.
    pub fn builder() -> RomioHintsBuilder {
        RomioHintsBuilder::new()
    }

    /// Resolve an [`Info`] object: thin adapter over the builder.
    /// Unknown keys are ignored (MPI semantics); every
    /// present-but-invalid value is reported.
    pub fn from_info(info: &Info) -> Result<RomioHints, HintErrors> {
        let mut b = RomioHints::builder();
        for (key, value) in info.entries() {
            b = b.set_str(&key, &value);
        }
        b.build()
    }

    /// Compatibility wrapper around [`from_info`] reporting the first
    /// violation only.
    ///
    /// [`from_info`]: RomioHints::from_info
    pub fn parse(info: &Info) -> Result<RomioHints, HintError> {
        RomioHints::from_info(info).map_err(HintError::from)
    }

    /// Render the resolved hints as `(key, value)` pairs (used by the
    /// Table I / Table II regeneration binary and by introspection à la
    /// `MPI_File_get_info`). Every hint this implementation reads is
    /// listed, so [`from_info`] on the output reproduces `self`.
    ///
    /// [`from_info`]: RomioHints::from_info
    pub fn to_pairs(&self) -> Vec<(String, String)> {
        let onoff = |b: bool| if b { "enable" } else { "disable" };
        let mut out = vec![
            ("romio_cb_write".into(), self.cb_write.as_str().into()),
            ("romio_cb_read".into(), self.cb_read.as_str().into()),
            ("cb_buffer_size".into(), self.cb_buffer_size.to_string()),
            (
                "ind_wr_buffer_size".into(),
                self.ind_wr_buffer_size.to_string(),
            ),
            ("e10_cache".into(), self.e10_cache.as_str().into()),
            ("e10_cache_path".into(), self.e10_cache_path.clone()),
            (
                "e10_cache_flush_flag".into(),
                self.e10_cache_flush_flag.as_str().into(),
            ),
            (
                "e10_cache_discard_flag".into(),
                onoff(self.e10_cache_discard_flag).into(),
            ),
        ];
        if let Some(n) = self.cb_nodes {
            out.push(("cb_nodes".into(), n.to_string()));
        }
        if let Some(n) = self.striping_factor {
            out.push(("striping_factor".into(), n.to_string()));
        }
        if let Some(n) = self.striping_unit {
            out.push(("striping_unit".into(), n.to_string()));
        }
        out.push(("romio_ds_write".into(), self.ds_write.as_str().into()));
        out.push(("e10_fd_partition".into(), self.fd_strategy.as_str().into()));
        out.push(("e10_cache_read".into(), onoff(self.e10_cache_read).into()));
        out.push(("e10_cache_evict".into(), onoff(self.e10_cache_evict).into()));
        out.push((
            "e10_sync_policy".into(),
            self.e10_sync_policy.as_str().into(),
        ));
        out.push((
            "e10_cache_journal".into(),
            onoff(self.e10_cache_journal).into(),
        ));
        if let Some(p) = &self.e10_cache_journal_path {
            out.push(("e10_cache_journal_path".into(), p.clone()));
        }
        if let Some(n) = self.cb_config_max_per_node {
            out.push(("cb_config_list".into(), format!("*:{n}")));
        }
        out.push((
            "romio_no_indep_rw".into(),
            if self.no_indep_rw { "true" } else { "false" }.into(),
        ));
        out.push(("e10_integrity".into(), onoff(self.e10_integrity).into()));
        out.push((
            "e10_integrity_scrub_ms".into(),
            self.e10_integrity_scrub_ms.to_string(),
        ));
        out.push((
            "e10_cache_hiwater".into(),
            self.e10_cache_hiwater.to_string(),
        ));
        out.push((
            "e10_cache_lowater".into(),
            self.e10_cache_lowater.to_string(),
        ));
        out.push(("e10_two_phase".into(), self.two_phase.as_str().into()));
        out.push((
            "e10_cache_class".into(),
            self.e10_cache_class.as_str().into(),
        ));
        out.push(("e10_nvm_capacity".into(), self.e10_nvm_capacity.to_string()));
        out.push((
            "e10_nvm_threshold".into(),
            self.e10_nvm_threshold.to_string(),
        ));
        out.push((
            "e10_cache_sync_depth".into(),
            self.e10_cache_sync_depth.to_string(),
        ));
        out.push(("e10_coll_timeout".into(), self.e10_coll_timeout.to_string()));
        if let Some(n) = self.e10_pfs_max_retries {
            out.push(("e10_pfs_max_retries".into(), n.to_string()));
        }
        if let Some(n) = self.e10_pfs_retry_base_us {
            out.push(("e10_pfs_retry_base_us".into(), n.to_string()));
        }
        out.push(("e10_trace".into(), self.e10_trace.as_str().into()));
        out.push(("e10_trace_path".into(), self.e10_trace_path.clone()));
        out
    }

    /// Render as an [`Info`] object (`MPI_File_get_info`). The inverse
    /// of [`from_info`] for every hint.
    ///
    /// [`from_info`]: RomioHints::from_info
    pub fn to_info(&self) -> Info {
        let info = Info::new();
        for (k, v) in self.to_pairs() {
            info.set(&k, &v);
        }
        info
    }

    /// True if any E10 cache behaviour is requested.
    pub fn cache_requested(&self) -> bool {
        self.e10_cache != CacheMode::Disable
    }

    /// The effective watermark pair `(hiwater, lowater)` in percent,
    /// or `None` when watermark management is disabled
    /// (`e10_cache_hiwater = 0`). A zero low watermark resolves to the
    /// high watermark (admission resumes as soon as occupancy falls
    /// below the trip point — no hysteresis band).
    pub fn watermarks(&self) -> Option<(u64, u64)> {
        if self.e10_cache_hiwater == 0 {
            return None;
        }
        let lo = if self.e10_cache_lowater == 0 {
            self.e10_cache_hiwater
        } else {
            self.e10_cache_lowater
        };
        Some((self.e10_cache_hiwater, lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let h = RomioHints::default();
        assert_eq!(h.cb_buffer_size, 16 << 20);
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
        assert_eq!(h.e10_cache, CacheMode::Disable);
        assert_eq!(h.e10_cache_flush_flag, FlushFlag::FlushImmediate);
        assert!(!h.e10_cache_discard_flag);
        assert_eq!(h.e10_cache_path, "/scratch");
        assert_eq!(h.e10_trace, TraceMode::Off);
        assert_eq!(h.e10_trace_path, "results/traces");
        assert!(!h.e10_integrity);
        assert_eq!(h.e10_integrity_scrub_ms, 0);
    }

    #[test]
    fn parses_full_paper_configuration() {
        let info = Info::from_pairs([
            ("romio_cb_write", "enable"),
            ("cb_buffer_size", "4M"),
            ("cb_nodes", "16"),
            ("striping_unit", "4194304"),
            ("striping_factor", "4"),
            ("ind_wr_buffer_size", "512K"),
            ("e10_cache", "enable"),
            ("e10_cache_path", "/scratch/e10"),
            ("e10_cache_flush_flag", "flush_onclose"),
            ("e10_cache_discard_flag", "enable"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.cb_write, CbMode::Enable);
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert_eq!(h.cb_nodes, Some(16));
        assert_eq!(h.striping_unit, Some(4 << 20));
        assert_eq!(h.striping_factor, Some(4));
        assert_eq!(h.ind_wr_buffer_size, 512 << 10);
        assert_eq!(h.e10_cache, CacheMode::Enable);
        assert_eq!(h.e10_cache_path, "/scratch/e10");
        assert_eq!(h.e10_cache_flush_flag, FlushFlag::FlushOnClose);
        assert!(h.e10_cache_discard_flag);
    }

    #[test]
    fn builder_typed_setters_match_string_parsing() {
        let typed = RomioHints::builder()
            .cb_write(CbMode::Enable)
            .cb_buffer_size(4 << 20)
            .cb_nodes(16)
            .striping_unit(4 << 20)
            .striping_factor(4)
            .ind_wr_buffer_size(512 << 10)
            .e10_cache(CacheMode::Coherent)
            .e10_cache_path("/scratch/e10")
            .e10_cache_flush_flag(FlushFlag::FlushOnClose)
            .e10_cache_discard_flag(true)
            .e10_trace(TraceMode::Ring)
            .build()
            .unwrap();
        let parsed = RomioHints::from_info(&Info::from_pairs([
            ("romio_cb_write", "enable"),
            ("cb_buffer_size", "4M"),
            ("cb_nodes", "16"),
            ("striping_unit", "4M"),
            ("striping_factor", "4"),
            ("ind_wr_buffer_size", "512K"),
            ("e10_cache", "coherent"),
            ("e10_cache_path", "/scratch/e10"),
            ("e10_cache_flush_flag", "flush_onclose"),
            ("e10_cache_discard_flag", "enable"),
            ("e10_trace", "ring"),
        ]))
        .unwrap();
        assert_eq!(typed.to_pairs(), parsed.to_pairs());
    }

    #[test]
    fn builder_collects_every_violation() {
        let err = RomioHints::builder()
            .cb_buffer_size(0)
            .cb_nodes(0)
            .e10_cache_path("")
            .build()
            .unwrap_err();
        assert_eq!(err.len(), 3);
        assert!(!err.is_empty());
        assert_eq!(err.first().key, "cb_buffer_size");
        let keys: Vec<&str> = err.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, ["cb_buffer_size", "cb_nodes", "e10_cache_path"]);
        // Display joins all of them.
        let msg = err.to_string();
        assert!(msg.contains("cb_nodes") && msg.contains("e10_cache_path"));
    }

    #[test]
    fn from_info_reports_all_bad_values() {
        let info = Info::from_pairs([("cb_buffer_size", "0"), ("e10_cache", "maybe")]);
        let err = RomioHints::from_info(&info).unwrap_err();
        assert_eq!(err.len(), 2);
        // `parse` keeps the old single-error surface.
        let first = RomioHints::parse(&info).unwrap_err();
        assert_eq!(&first, err.first());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("512K"), Some(512 << 10));
        assert_eq!(parse_size("4m"), Some(4 << 20));
        assert_eq!(parse_size("2G"), Some(2 << 30));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn invalid_values_are_rejected_with_context() {
        let info = Info::from_pairs([("e10_cache", "maybe")]);
        let e = RomioHints::parse(&info).unwrap_err();
        assert_eq!(e.key, "e10_cache");
        assert!(e.to_string().contains("coherent"));

        for (k, v) in [
            ("cb_buffer_size", "0"),
            ("cb_nodes", "-3"),
            ("romio_cb_write", "yes"),
            ("e10_cache_flush_flag", "later"),
            ("e10_cache_discard_flag", "1"),
            ("e10_cache_path", ""),
            ("e10_trace", "maybe"),
            ("e10_trace_path", ""),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
    }

    #[test]
    fn extension_hints_parse_and_validate() {
        let info = Info::from_pairs([
            ("e10_cache_read", "enable"),
            ("e10_cache_evict", "enable"),
            ("e10_sync_policy", "backoff"),
            ("cb_config_list", "*:2"),
            ("romio_no_indep_rw", "true"),
            ("e10_trace", "jsonl"),
            ("e10_trace_path", "results/traces/run1"),
            ("e10_cache_journal", "enable"),
            ("e10_cache_journal_path", "/scratch/manifest.jnl"),
            ("e10_integrity", "enable"),
            ("e10_integrity_scrub_ms", "250"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert!(h.e10_integrity);
        assert_eq!(h.e10_integrity_scrub_ms, 250);
        assert!(h.e10_cache_read);
        assert!(h.e10_cache_evict);
        assert_eq!(h.e10_sync_policy, SyncPolicy::Backoff);
        assert_eq!(h.cb_config_max_per_node, Some(2));
        assert!(h.no_indep_rw);
        assert_eq!(h.e10_trace, TraceMode::Jsonl);
        assert_eq!(h.e10_trace_path, "results/traces/run1");
        assert!(h.e10_cache_journal);
        assert_eq!(
            h.e10_cache_journal_path.as_deref(),
            Some("/scratch/manifest.jnl")
        );
        for (k, v) in [
            ("e10_cache_read", "yes"),
            ("e10_cache_evict", "on"),
            ("e10_sync_policy", "polite"),
            ("cb_config_list", "2"),
            ("cb_config_list", "*:0"),
            ("romio_no_indep_rw", "1"),
            ("e10_cache_journal", "on"),
            ("e10_cache_journal_path", ""),
            ("e10_integrity", "yes"),
            ("e10_integrity_scrub_ms", "-1"),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
        // Defaults are all off.
        let d = RomioHints::default();
        assert!(!d.e10_cache_read && !d.e10_cache_evict && !d.no_indep_rw);
        assert_eq!(d.e10_sync_policy, SyncPolicy::Greedy);
        assert_eq!(d.cb_config_max_per_node, None);
        assert!(!d.e10_cache_journal);
        assert_eq!(d.e10_cache_journal_path, None);
    }

    #[test]
    fn degraded_mode_hints_parse_validate_and_default_off() {
        let info = Info::from_pairs([
            ("e10_coll_timeout", "500"),
            ("e10_pfs_max_retries", "2"),
            ("e10_pfs_retry_base_us", "750"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.e10_coll_timeout, 500);
        assert_eq!(h.e10_pfs_max_retries, Some(2));
        assert_eq!(h.e10_pfs_retry_base_us, Some(750));

        for (k, v) in [
            ("e10_coll_timeout", "soon"),
            ("e10_coll_timeout", "-1"),
            ("e10_pfs_max_retries", "-1"),
            ("e10_pfs_max_retries", "many"),
            ("e10_pfs_retry_base_us", "0"),
            ("e10_pfs_retry_base_us", "2ms"),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
        // The typed zero-base rejection matches the string path.
        assert!(RomioHints::builder()
            .e10_pfs_retry_base_us(0)
            .build()
            .is_err());

        // Defaults: tolerance off, file-system retry policy untouched.
        let d = RomioHints::default();
        assert_eq!(d.e10_coll_timeout, 0);
        assert_eq!(d.e10_pfs_max_retries, None);
        assert_eq!(d.e10_pfs_retry_base_us, None);
    }

    #[test]
    fn watermark_hints_parse_validate_and_resolve() {
        let info = Info::from_pairs([("e10_cache_hiwater", "90"), ("e10_cache_lowater", "70")]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.e10_cache_hiwater, 90);
        assert_eq!(h.e10_cache_lowater, 70);
        assert_eq!(h.watermarks(), Some((90, 70)));

        // Defaults: watermark management off.
        let d = RomioHints::default();
        assert_eq!((d.e10_cache_hiwater, d.e10_cache_lowater), (0, 0));
        assert_eq!(d.watermarks(), None);

        // Zero lowater resolves to the hiwater (no hysteresis band).
        let h = RomioHints::builder().e10_cache_hiwater(80).build().unwrap();
        assert_eq!(h.watermarks(), Some((80, 80)));

        // Out-of-range and inverted pairs are rejected with context.
        for (k, v) in [
            ("e10_cache_hiwater", "101"),
            ("e10_cache_hiwater", "-1"),
            ("e10_cache_lowater", "200"),
            ("e10_cache_hiwater", "lots"),
        ] {
            let info = Info::from_pairs([(k, v)]);
            assert!(RomioHints::parse(&info).is_err(), "{k}={v} must fail");
        }
        let err = RomioHints::builder()
            .e10_cache_hiwater(60)
            .e10_cache_lowater(80)
            .build()
            .unwrap_err();
        assert_eq!(err.first().key, "e10_cache_lowater");
        assert!(err.first().to_string().contains("at most"));
        // The same inversion through the string surface.
        let info = Info::from_pairs([("e10_cache_hiwater", "60"), ("e10_cache_lowater", "80")]);
        assert!(RomioHints::from_info(&info).is_err());
    }

    #[test]
    fn two_phase_algo_parses_and_roundtrips() {
        assert_eq!(RomioHints::default().two_phase, TwoPhaseAlgo::Extended);
        for (s, algo) in [
            ("stock", TwoPhaseAlgo::Stock),
            ("extended", TwoPhaseAlgo::Extended),
            ("node_agg", TwoPhaseAlgo::NodeAgg),
        ] {
            let info = Info::from_pairs([("e10_two_phase", s)]);
            let h = RomioHints::parse(&info).unwrap();
            assert_eq!(h.two_phase, algo);
            assert_eq!(algo.as_str(), s);
            // The typed setter and the string surface agree.
            let typed = RomioHints::builder().e10_two_phase(algo).build().unwrap();
            assert_eq!(typed.to_pairs(), h.to_pairs());
            // And `to_info` round-trips the algorithm.
            let h2 = RomioHints::from_info(&h.to_info()).unwrap();
            assert_eq!(h2.two_phase, algo);
        }
        for bad in ["", "nodeagg", "two_phase", "enable"] {
            let info = Info::from_pairs([("e10_two_phase", bad)]);
            let e = RomioHints::from_info(&info).unwrap_err();
            assert_eq!(e.first().key, "e10_two_phase");
            assert!(e.first().to_string().contains("node_agg"));
        }
    }

    #[test]
    fn cache_class_parses_and_roundtrips() {
        assert_eq!(RomioHints::default().e10_cache_class, CacheClass::Ssd);
        assert_eq!(RomioHints::default().e10_nvm_capacity, 0);
        assert_eq!(RomioHints::default().e10_nvm_threshold, 1 << 20);
        for (s, class) in [
            ("ssd", CacheClass::Ssd),
            ("nvm", CacheClass::Nvm),
            ("hybrid", CacheClass::Hybrid),
        ] {
            let info = Info::from_pairs([("e10_cache_class", s)]);
            let h = RomioHints::parse(&info).unwrap();
            assert_eq!(h.e10_cache_class, class);
            assert_eq!(class.as_str(), s);
            let typed = RomioHints::builder()
                .e10_cache_class(class)
                .build()
                .unwrap();
            assert_eq!(typed.to_pairs(), h.to_pairs());
            let h2 = RomioHints::from_info(&h.to_info()).unwrap();
            assert_eq!(h2, h);
        }
        for bad in ["", "NVM", "optane", "enable"] {
            let info = Info::from_pairs([("e10_cache_class", bad)]);
            let e = RomioHints::from_info(&info).unwrap_err();
            assert_eq!(e.first().key, "e10_cache_class");
            assert!(e.first().to_string().contains("hybrid"));
        }
    }

    #[test]
    fn nvm_size_hints_parse_with_suffixes() {
        let info = Info::from_pairs([
            ("e10_cache_class", "hybrid"),
            ("e10_nvm_capacity", "2g"),
            ("e10_nvm_threshold", "256K"),
        ]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.e10_cache_class, CacheClass::Hybrid);
        assert_eq!(h.e10_nvm_capacity, 2 << 30);
        assert_eq!(h.e10_nvm_threshold, 256 << 10);
        assert_eq!(RomioHints::from_info(&h.to_info()).unwrap(), h);
        // Threshold 0 (the anchor-test setting) is legal and sticky.
        let info = Info::from_pairs([("e10_nvm_threshold", "0")]);
        assert_eq!(RomioHints::parse(&info).unwrap().e10_nvm_threshold, 0);
        for (k, bad) in [
            ("e10_nvm_capacity", "lots"),
            ("e10_nvm_capacity", "-1"),
            ("e10_nvm_threshold", "4q"),
        ] {
            let info = Info::from_pairs([(k, bad)]);
            let e = RomioHints::from_info(&info).unwrap_err();
            assert_eq!(e.first().key, k);
        }
    }

    #[test]
    fn hint_errors_into_iterator_yields_every_violation() {
        let err = RomioHints::builder()
            .cb_buffer_size(0)
            .cb_nodes(0)
            .build()
            .unwrap_err();
        // By reference.
        let keys: Vec<&str> = (&err).into_iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, ["cb_buffer_size", "cb_nodes"]);
        // By value (and `for` loops work).
        let mut n = 0;
        for e in err {
            assert!(!e.key.is_empty());
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn try_build_leaves_the_builder_usable() {
        let b = RomioHints::builder().cb_nodes(0);
        let err = b.try_build().unwrap_err();
        assert_eq!(err.len(), 1);
        // The builder is still alive: layering more hints accumulates.
        let err2 = b.cb_buffer_size(0).try_build().unwrap_err();
        assert_eq!(err2.len(), 2);
        // And a clean builder try_builds Ok repeatedly.
        let ok = RomioHints::builder().cb_nodes(4);
        assert!(ok.try_build().is_ok());
        assert_eq!(ok.try_build().unwrap().cb_nodes, Some(4));
    }

    #[test]
    fn unknown_hints_are_ignored() {
        let info = Info::from_pairs([("some_vendor_hint", "whatever")]);
        assert!(RomioHints::parse(&info).is_ok());
    }

    #[test]
    fn coherent_implies_cache_requested() {
        let info = Info::from_pairs([("e10_cache", "coherent")]);
        let h = RomioHints::parse(&info).unwrap();
        assert_eq!(h.e10_cache, CacheMode::Coherent);
        assert!(h.cache_requested());
        assert!(!RomioHints::default().cache_requested());
    }

    #[test]
    fn to_info_roundtrips_every_hint() {
        let h = RomioHints::builder()
            .cb_write(CbMode::Enable)
            .cb_nodes(8)
            .e10_cache(CacheMode::Coherent)
            .e10_cache_flush_flag(FlushFlag::FlushNone)
            .cb_config_max_per_node(2)
            .no_indep_rw(true)
            .e10_cache_evict(true)
            .e10_sync_policy(SyncPolicy::Backoff)
            .e10_trace(TraceMode::Jsonl)
            .e10_trace_path("results/traces/x")
            .e10_cache_journal(true)
            .e10_cache_journal_path("/scratch/j.jnl")
            .e10_cache_hiwater(85)
            .e10_cache_lowater(65)
            .e10_cache_class(CacheClass::Hybrid)
            .e10_nvm_capacity(1 << 30)
            .e10_nvm_threshold(64 << 10)
            .build()
            .unwrap();
        let h2 = RomioHints::from_info(&h.to_info()).unwrap();
        assert_eq!(h2, h);
        assert_eq!(h2.to_pairs(), h.to_pairs());
    }
}
